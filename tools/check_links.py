#!/usr/bin/env python3
"""Docs link checker: every intra-repo reference must resolve.

Pure stdlib, like ``check_format.py`` — runs identically in the dev
container and in CI.  Scans ``README.md`` and ``docs/*.md`` for

* relative markdown links ``[text](path)`` and ``[text](path#anchor)`` —
  the path must exist in the repo, and an anchor into a markdown file
  must match a heading's GitHub-style slug;
* in-page anchors ``[text](#anchor)`` — same slug check, same file;
* module cross-references ``[[repro.some.module]]`` — the dotted path
  must resolve under ``src/`` to a module file or a package directory.

External links (``http://``, ``https://``, ``mailto:``) are skipped —
this checker is about the repo staying self-consistent, not the
internet.  Exit status 0 when everything resolves, 1 with one line per
broken reference otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — but not images' inner brackets or reference defs.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: ``[[dotted.module.path]]``
_MODREF_RE = re.compile(r"\[\[([A-Za-z_][A-Za-z0-9_.]*)\]\]")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug: lowercase, drop punctuation, spaces → dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    out = []
    for ch in text.lower():
        if ch.isalnum() or ch in "-_ ":
            out.append(ch)
    return "".join(out).replace(" ", "-")


def _anchors(markdown_path: Path) -> set:
    anchors = set()
    in_fence = False
    for line in markdown_path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match:
            anchors.add(_slugify(match.group(2)))
    return anchors


def _module_target(dotted: str) -> Path | None:
    """Resolve ``repro.x.y`` to the file/package it names, or None."""
    relative = Path("src", *dotted.split("."))
    as_module = REPO_ROOT / relative.with_suffix(".py")
    if as_module.is_file():
        return as_module
    as_package = REPO_ROOT / relative / "__init__.py"
    if as_package.is_file():
        return as_package
    return None


def check_file(path: Path) -> list[str]:
    problems = []
    text = path.read_text(encoding="utf-8")
    display = path.relative_to(REPO_ROOT)

    in_fence = False
    for number, raw in enumerate(text.splitlines(), start=1):
        if raw.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        # Inline code spans talk *about* syntax; don't check inside them.
        line = re.sub(r"`[^`]*`", "", raw)
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL):
                continue
            base, _, fragment = target.partition("#")
            resolved = (
                path if not base else (path.parent / base).resolve()
            )
            if not resolved.exists():
                problems.append(
                    f"{display}:{number}: broken link target {target!r}"
                )
                continue
            if fragment and resolved.suffix == ".md":
                if fragment not in _anchors(resolved):
                    problems.append(
                        f"{display}:{number}: no heading for anchor "
                        f"{target!r}"
                    )
        for match in _MODREF_RE.finditer(line):
            dotted = match.group(1)
            if _module_target(dotted) is None:
                problems.append(
                    f"{display}:{number}: module cross-reference "
                    f"[[{dotted}]] resolves to nothing under src/"
                )
    return problems


def main(argv=None) -> int:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    problems = []
    for path in files:
        if path.exists():
            problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    checked = ", ".join(str(f.relative_to(REPO_ROOT)) for f in files)
    if problems:
        print(f"check_links: {len(problems)} broken reference(s) in {checked}")
        return 1
    print(f"check_links: ok ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
