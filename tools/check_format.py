#!/usr/bin/env python3
"""Stdlib formatting-hygiene gate: the checks we can verify everywhere.

``ruff format --check`` stays advisory in CI because the one-shot reformat
has never been runnable in the development environment (no ruff, no
network) — see the lint job.  This checker is the verified subset: pure
stdlib, deterministic, and enforced both locally and as a blocking CI
step.  It checks every tracked Python file for:

* no tab characters (indentation or otherwise);
* no trailing whitespace;
* LF line endings (no CR);
* a single trailing newline at end of file;
* no lines over the hard readability cap (``MAX_LINE`` columns; URLs,
  ``# noqa``-style pragma lines, and ``# reprolint: allow(...)`` pragma
  lines — whose mandatory reasons don't wrap — exempt).

Usage::

    python tools/check_format.py            # check src/ tests/ benchmarks/ tools/
    python tools/check_format.py PATH...    # check specific files/dirs
"""

from __future__ import annotations

import sys
from pathlib import Path

DEFAULT_ROOTS = ("src", "tests", "benchmarks", "tools")
MAX_LINE = 100


def python_files(roots: list[str]) -> list[Path]:
    files: list[Path] = []
    for root in roots:
        path = Path(root)
        if path.is_file() and path.suffix == ".py":
            files.append(path)
        elif path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
    return files


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    try:
        blob = path.read_bytes()
    except OSError as error:
        return [f"{path}: unreadable ({error})"]
    if not blob:
        return []
    if b"\r" in blob:
        problems.append(f"{path}: CR line endings (expected LF)")
    if not blob.endswith(b"\n"):
        problems.append(f"{path}: missing trailing newline")
    elif blob.endswith(b"\n\n"):
        problems.append(f"{path}: multiple trailing newlines")
    text = blob.decode("utf-8", errors="replace")
    for number, line in enumerate(text.split("\n"), start=1):
        if "\t" in line:
            problems.append(f"{path}:{number}: tab character")
        if line != line.rstrip():
            problems.append(f"{path}:{number}: trailing whitespace")
        exempt = "http" in line or "noqa" in line or "reprolint:" in line
        if len(line) > MAX_LINE and not exempt:
            problems.append(
                f"{path}:{number}: line is {len(line)} columns (max {MAX_LINE})"
            )
    return problems


def main(argv: list[str]) -> int:
    roots = argv or [r for r in DEFAULT_ROOTS if Path(r).exists()]
    files = python_files(roots)
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    print(
        f"check_format: {len(files)} file(s), {len(problems)} problem(s)",
        file=sys.stderr,
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
