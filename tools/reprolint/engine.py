"""The reprolint engine: pragmas, per-file runs, tree runs, reports.

Suppression model — ``# reprolint: allow(CODE[, CODE...]) -- reason``:

* the pragma must share the physical line of the diagnostic it silences
  (AST nodes report their first line; put the pragma there);
* the ``-- reason`` is mandatory — a suppression nobody can audit is a
  violation of its own;
* a pragma that silences nothing is an error (stale suppressions rot);
* unknown rule codes in a pragma are errors;
* RL-PRAGMA findings themselves cannot be suppressed.

All pragma hygiene errors are reported under ``RL-PRAGMA``.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

from reprolint.base import Diagnostic, FileContext, Pragma
from reprolint.rules import ALL_RULES, RULE_CODES

#: Repo root = tools/reprolint/engine.py -> two levels up from tools/.
REPO_ROOT = Path(__file__).resolve().parent.parent.parent

DEFAULT_ROOTS = ("src", "tests", "benchmarks", "tools")

_PRAGMA = re.compile(
    r"^#\s*reprolint:\s*allow\(([^)]*)\)\s*(?:--\s*(.*\S))?\s*$"
)
_PRAGMA_LIKE = re.compile(r"^#\s*reprolint\b")


def parse_pragmas(ctx: FileContext) -> tuple[list[Pragma], list[Diagnostic]]:
    """Valid pragmas plus RL-PRAGMA diagnostics for malformed ones."""
    pragmas: list[Pragma] = []
    problems: list[Diagnostic] = []

    def problem(line: int, col: int, message: str) -> None:
        problems.append(Diagnostic(ctx.path, line, col, "RL-PRAGMA", message))

    for comment in ctx.comments:
        if not _PRAGMA_LIKE.match(comment.text):
            continue
        match = _PRAGMA.match(comment.text)
        if match is None:
            problem(
                comment.line,
                comment.col,
                "malformed reprolint pragma — expected "
                "'# reprolint: allow(RULE) -- reason'",
            )
            continue
        codes = tuple(
            code.strip() for code in match.group(1).split(",") if code.strip()
        )
        reason = (match.group(2) or "").strip()
        bad = [code for code in codes if code not in RULE_CODES]
        if not codes:
            problem(comment.line, comment.col, "pragma allows no rule codes")
            continue
        if bad:
            problem(
                comment.line,
                comment.col,
                f"pragma names unknown rule code(s) {', '.join(bad)} "
                f"(known: {', '.join(RULE_CODES)})",
            )
            continue
        if "RL-PRAGMA" in codes:
            problem(
                comment.line,
                comment.col,
                "RL-PRAGMA cannot be suppressed — fix the pragma instead",
            )
            continue
        if not reason:
            problem(
                comment.line,
                comment.col,
                "pragma missing its mandatory '-- reason'",
            )
            continue
        pragmas.append(Pragma(comment.line, codes, reason))
    return pragmas, problems


def lint_source(text: str, path: str) -> list[Diagnostic]:
    """Lint one source blob under a (possibly virtual) repo-relative path."""
    try:
        ctx = FileContext(path, text)
    except SyntaxError as error:
        return [
            Diagnostic(
                path,
                error.lineno or 1,
                (error.offset or 1) - 1,
                "RL-SYNTAX",
                f"file does not parse: {error.msg}",
            )
        ]
    raw: list[Diagnostic] = []
    for rule in ALL_RULES:
        if rule.applies_to(path):
            raw.extend(rule.check(ctx))
    pragmas, problems = parse_pragmas(ctx)
    by_line: dict[int, list[Pragma]] = {}
    for pragma in pragmas:
        by_line.setdefault(pragma.line, []).append(pragma)
    suppressible = {
        rule.code for rule in ALL_RULES if rule.suppressible
    }
    kept: list[Diagnostic] = []
    for diagnostic in raw:
        suppressed = False
        if diagnostic.code in suppressible:
            for pragma in by_line.get(diagnostic.line, ()):
                if diagnostic.code in pragma.codes:
                    pragma.used.add(diagnostic.code)
                    suppressed = True
        if not suppressed:
            kept.append(diagnostic)
    for pragma in pragmas:
        for code in pragma.codes:
            if code not in pragma.used:
                problems.append(
                    Diagnostic(
                        path,
                        pragma.line,
                        0,
                        "RL-PRAGMA",
                        f"unused suppression: no {code} diagnostic on this "
                        "line — remove the pragma",
                    )
                )
    return sorted(kept + problems)


def _relative(path: Path) -> str:
    try:
        return path.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return path.as_posix()


def python_files(roots: list[str]) -> list[Path]:
    files: list[Path] = []
    for root in roots:
        path = Path(root)
        if path.is_file() and path.suffix == ".py":
            files.append(path)
        elif path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
    return files


def lint_paths(roots: list[str]) -> tuple[list[Diagnostic], int]:
    """Lint every ``.py`` under ``roots``; (diagnostics, files seen)."""
    diagnostics: list[Diagnostic] = []
    files = python_files(roots)
    for file in files:
        try:
            text = file.read_text(encoding="utf-8")
        except OSError as error:
            diagnostics.append(
                Diagnostic(
                    _relative(file), 1, 0, "RL-SYNTAX", f"unreadable: {error}"
                )
            )
            continue
        diagnostics.extend(lint_source(text, _relative(file)))
    return diagnostics, len(files)


def write_json_report(
    diagnostics: list[Diagnostic], files: int, target: Path
) -> None:
    counts: dict[str, int] = {}
    for diagnostic in diagnostics:
        counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
    report = {
        "tool": "reprolint",
        "version": 1,
        "files": files,
        "diagnostics": [d.as_dict() for d in sorted(diagnostics)],
        "counts_by_rule": dict(sorted(counts.items())),
    }
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")


def main(argv: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based invariant linter for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files/directories to lint (default: {' '.join(DEFAULT_ROOTS)})",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write a JSON diagnostics report"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}: {rule.rationale}")
        return 0

    roots = args.paths or [r for r in DEFAULT_ROOTS if Path(r).exists()]
    diagnostics, files = lint_paths(roots)
    for diagnostic in sorted(diagnostics):
        print(diagnostic.render())
    if args.json:
        write_json_report(diagnostics, files, Path(args.json))
    print(
        f"reprolint: {files} file(s), {len(diagnostics)} diagnostic(s)",
        file=sys.stderr,
    )
    return 1 if diagnostics else 0
