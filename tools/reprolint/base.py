"""Core types shared by the reprolint engine and its rules.

Everything here is pure stdlib (``ast`` + ``tokenize``), mirroring the
policy of :mod:`tools.check_format`: the linter must run identically in the
network-less development container and in CI.

A rule is a class with a ``code`` (``RL-*``), a one-line ``rationale``, a
path predicate (:meth:`Rule.applies_to`), and a :meth:`Rule.check` that
yields :class:`Diagnostic` objects for one parsed file.  Rules never read
the filesystem — they see one :class:`FileContext` at a time, which carries
the *repo-relative* path (all scoping is by that path), the source text,
the parsed tree, a lazily built child→parent map, and the comment tokens.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: where, which rule, and what is wrong."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass
class Comment:
    """One ``#`` comment token (string checks must not match docstrings)."""

    line: int
    col: int
    text: str


class FileContext:
    """One file's parsed state, shared by every rule.

    ``path`` is the repo-relative POSIX path (e.g. ``src/repro/cli.py``);
    rules scope themselves by matching against it, so virtual paths work in
    tests exactly like real ones.
    """

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self.tree = ast.parse(text)
        self._parents: dict[ast.AST, ast.AST] | None = None
        self._comments: list[Comment] | None = None

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        if self._parents is None:
            self._parents = {
                child: parent
                for parent in ast.walk(self.tree)
                for child in ast.iter_child_nodes(parent)
            }
        return self._parents

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The chain of enclosing nodes, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    @property
    def comments(self) -> list[Comment]:
        """All ``#`` comment tokens (tokenize-level, so docstrings and
        string literals that merely *mention* pragmas never match)."""
        if self._comments is None:
            found: list[Comment] = []
            try:
                tokens = tokenize.generate_tokens(
                    io.StringIO(self.text).readline
                )
                for token in tokens:
                    if token.type == tokenize.COMMENT:
                        found.append(
                            Comment(token.start[0], token.start[1], token.string)
                        )
            except (tokenize.TokenError, IndentationError):
                pass
            self._comments = found
        return self._comments


class Rule:
    """Base class: subclass, set the class attributes, implement check()."""

    #: Diagnostic code, ``RL-<NAME>``.
    code: str = ""
    #: One-line rationale shown by ``run.py --list-rules`` and the README.
    rationale: str = ""
    #: When False, valid ``# reprolint: allow(...)`` pragmas cannot silence
    #: this rule (used by RL-PRAGMA itself: fix the pragma, don't stack
    #: suppressions).
    suppressible: bool = True

    def applies_to(self, path: str) -> bool:  # pragma: no cover - overridden
        return True

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def diag(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            ctx.path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            self.code,
            message,
        )


@dataclass
class Pragma:
    """One parsed ``# reprolint: allow(CODE, ...) -- reason`` comment."""

    line: int
    codes: tuple[str, ...]
    reason: str
    #: Codes that actually suppressed a diagnostic (filled by the engine;
    #: a valid pragma whose codes never fire is itself an error).
    used: set = field(default_factory=set)


def call_name(node: ast.AST) -> str | None:
    """The bare function name of a Call node (``f(...)`` or ``o.f(...)``)."""
    if not isinstance(node, ast.Call):
        return None
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def import_roots(node: ast.AST) -> list[tuple[str, ast.AST]]:
    """Top-level module names imported by an Import/ImportFrom node."""
    roots: list[tuple[str, ast.AST]] = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            roots.append((alias.name.partition(".")[0], node))
    elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
        roots.append((node.module.partition(".")[0], node))
    return roots
