"""RL-COUNTER — the scoped-work-counter rule.

Work accounting is contextvar-scoped (``scoped_work_counter``): pooled
shard tasks, delta terms, and benchmark arms each run under their own
counter and the parent absorbs the totals.  The module-level
``work_counter`` proxy exists only for the historical tuple-engine API; a
hot path that reads or resets it observes (and races with) *whatever scope
happens to be current* — totals silently double-count or vanish under the
pool.  Inside ``src/repro/`` nothing may touch the proxy except the module
that defines it and the package ``__init__`` that re-exports it.
"""

from __future__ import annotations

import ast
from typing import Iterable

from reprolint.base import Diagnostic, FileContext, Rule

ALLOWED_FILES = (
    "src/repro/relational/operators.py",
    "src/repro/relational/__init__.py",
)


class CounterRule(Rule):
    code = "RL-COUNTER"
    rationale = (
        "src/repro hot paths must use scoped_work_counter; the module-level "
        "work_counter proxy is compat-only (defined/re-exported in "
        "relational/operators.py and relational/__init__.py)"
    )

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/repro/") and path not in ALLOWED_FILES

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "work_counter":
                        yield self.diag(
                            ctx,
                            node,
                            "import of the module-level work_counter proxy — "
                            "use scoped_work_counter",
                        )
            elif isinstance(node, ast.Name) and node.id == "work_counter":
                yield self.diag(
                    ctx,
                    node,
                    "reference to the module-level work_counter proxy — "
                    "use scoped_work_counter",
                )
            elif isinstance(node, ast.Attribute) and node.attr == "work_counter":
                yield self.diag(
                    ctx,
                    node,
                    "attribute access to the module-level work_counter proxy "
                    "— use scoped_work_counter",
                )
