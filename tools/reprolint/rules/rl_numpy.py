"""RL-NUMPY — the stdlib-only base-install guarantee.

numpy (and scipy) ship as the optional ``fast`` / ``lp`` extras; the base
install must import cleanly without them.  Any ``import numpy`` or
``import scipy`` outside the two vectorized-backend modules must therefore
be *function-scoped* (deferred until a caller opted into the backend) or
guarded by ``try/except ImportError`` at module level.  An unguarded
module-level import anywhere else breaks ``pip install repro-panda`` on a
machine without the extras — exactly the regression this rule blocks.
"""

from __future__ import annotations

import ast
from typing import Iterable

from reprolint.base import Diagnostic, FileContext, Rule, import_roots

#: The vectorized backend is the one subsystem allowed to assume numpy at
#: module level: it is only ever imported lazily, behind
#: ``relational/backend.py``'s availability probe.
ALLOWED_FILES = (
    "src/repro/relational/vectorized.py",
    "src/repro/relational/backend.py",
)

OPTIONAL_MODULES = ("numpy", "scipy")

_GUARD_EXCEPTIONS = ("ImportError", "ModuleNotFoundError", "Exception")


def _handler_catches_import_error(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:  # bare except
        return True
    names = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for name in names:
        if isinstance(name, ast.Name) and name.id in _GUARD_EXCEPTIONS:
            return True
    return False


class NumpyScopeRule(Rule):
    code = "RL-NUMPY"
    rationale = (
        "base install is stdlib-only: numpy/scipy imports outside "
        "relational/{vectorized,backend}.py must be function-scoped or "
        "try/except ImportError guarded"
    )

    def applies_to(self, path: str) -> bool:
        return path not in ALLOWED_FILES

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            for root, import_node in import_roots(node):
                if root not in OPTIONAL_MODULES:
                    continue
                if self._guarded(ctx, import_node):
                    continue
                yield self.diag(
                    ctx,
                    import_node,
                    f"module-level unguarded '{root}' import — the base "
                    "install is stdlib-only; move it into the function "
                    "that needs it or guard with try/except ImportError",
                )

    @staticmethod
    def _guarded(ctx: FileContext, node: ast.AST) -> bool:
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return True
            if isinstance(ancestor, ast.Try) and any(
                _handler_catches_import_error(h) for h in ancestor.handlers
            ):
                return True
            if isinstance(ancestor, ast.If):
                # `if TYPE_CHECKING:` blocks never execute at runtime.
                test = ancestor.test
                if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
                    return True
                if (
                    isinstance(test, ast.Attribute)
                    and test.attr == "TYPE_CHECKING"
                ):
                    return True
        return False
