"""RL-EXACT — the exactness contract of the proof/witness modules.

Every witness and proof-sequence path must be ``fractions.Fraction`` end to
end (ROADMAP "Exactness contract"): the bounds are the paper's product, and
a float sneaking into a dual value or a proof step silently turns an exact
degree-aware bound into an approximation — the worst regression class this
repo has.  Inside the scoped modules this rule flags:

* ``float(...)`` calls;
* float literals used in arithmetic or comparisons;
* ``math.*`` uses and ``from math import``s of anything but the exact
  integer functions (``gcd``/``lcm``/``isqrt``/``comb``/``perm``/
  ``factorial``/``floor``/``ceil``/``prod``) — everything else in ``math``
  computes in C doubles;
* true division with a numeric-literal operand (``x / 2`` is exact only if
  ``x`` is already a Fraction; ``Fraction(x, 2)`` is exact always).

Presentation boundaries — the ``2^x`` float renderings of an exact bound on
result dataclasses — are genuine exceptions and carry per-line
``# reprolint: allow(RL-EXACT) -- ...`` pragmas instead of weakening the
rule's scope.
"""

from __future__ import annotations

import ast
from typing import Iterable

from reprolint.base import Diagnostic, FileContext, Rule

SCOPE_PREFIXES = ("src/repro/flows/", "src/repro/bounds/")
SCOPE_FILES = ("src/repro/core/panda.py", "src/repro/lp/simplex.py")

#: Parent node types in which a float literal counts as "arithmetic".
_ARITHMETIC_PARENTS = (ast.BinOp, ast.UnaryOp, ast.Compare, ast.AugAssign)

#: math functions that are exact integer (or Fraction-safe) arithmetic.
_EXACT_MATH = (
    "gcd", "lcm", "isqrt", "comb", "perm", "factorial", "floor", "ceil", "prod",
)


def _is_number(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and type(node.value) in (int, float)


class ExactRule(Rule):
    code = "RL-EXACT"
    rationale = (
        "proof/witness paths are Fraction end to end; no float(), float "
        "literals in arithmetic, math.*, or literal-operand true division "
        "in flows/, core/panda.py, lp/simplex.py, bounds/"
    )

    def applies_to(self, path: str) -> bool:
        return path.startswith(SCOPE_PREFIXES) or path in SCOPE_FILES

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id == "float":
                    yield self.diag(
                        ctx, node, "float() call in an exact-arithmetic module"
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.partition(".")[0] == "math":
                    for alias in node.names:
                        if alias.name not in _EXACT_MATH:
                            yield self.diag(
                                ctx,
                                node,
                                f"from math import {alias.name} in an "
                                "exact-arithmetic module (computes in C "
                                "doubles)",
                            )
            elif isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "math"
                    and node.attr not in _EXACT_MATH
                ):
                    yield self.diag(
                        ctx,
                        node,
                        f"math.{node.attr} in an exact-arithmetic module "
                        "(computes in C doubles)",
                    )
            elif isinstance(node, ast.Constant) and type(node.value) is float:
                if isinstance(ctx.parent(node), _ARITHMETIC_PARENTS):
                    yield self.diag(
                        ctx,
                        node,
                        f"float literal {node.value!r} in arithmetic "
                        "(use Fraction)",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                if _is_number(node.left) or _is_number(node.right):
                    yield self.diag(
                        ctx,
                        node,
                        "true division with a numeric-literal operand "
                        "(int/int is lossy; use Fraction)",
                    )
