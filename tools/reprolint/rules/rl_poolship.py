"""RL-POOLSHIP — the process-boundary shipping contract of the pool.

``parallel/pool.py`` tasks cross a ``multiprocessing`` pickle boundary.
Two invariants keep that boundary cheap and correct:

* the submitted callable must be a **module-level function** (a name
  importable by the worker) — lambdas and nested functions do not pickle,
  and bound methods drag their whole ``self`` (engine, planner, resident
  relations) onto the wire;
* task payloads must not embed ``Dictionary``/``ColumnSet`` objects —
  relations are *resident* (content-digest addressed, shipped once); a
  payload carrying a dictionary or a column set re-ships database-sized
  state with every task.  Only digests, file references, raw buffers, and
  row ranges travel per task.

The rule watches every ``<pool>.map(...)`` / ``<pool>.apply_async(...)``
call site in ``src/repro/`` (receivers whose name mentions ``pool``) and
checks both the callable and the payload expressions.  ``parallel/pool.py``
itself — the boundary implementation — is exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable

from reprolint.base import Diagnostic, FileContext, Rule

ALLOWED_FILES = ("src/repro/parallel/pool.py",)

_SUBMIT_METHODS = ("map", "apply_async", "apply", "imap", "starmap")
_HEAVY_TYPES = ("Dictionary", "ColumnSet")


def _receiver_mentions_pool(func: ast.Attribute) -> bool:
    node = func.value
    names: list[str] = []
    while isinstance(node, ast.Attribute):
        names.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        names.append(node.id)
    return any("pool" in name.lower() for name in names)


def _importable_names(tree: ast.Module) -> set[str]:
    """Names that resolve to picklable-by-name callables.

    Top-level ``def``/``class``/assignments, plus *every* import alias —
    a function-scoped ``from repro.parallel.pool import run_shard_task``
    still names a module-level function the worker can re-import.
    """
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).partition(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


class PoolShipRule(Rule):
    code = "RL-POOLSHIP"
    rationale = (
        "pool task callables must be module-level functions and payloads "
        "must ship digests/buffers/row ranges — never Dictionary/ColumnSet "
        "objects"
    )

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/repro/") and path not in ALLOWED_FILES

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        module_names = None
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SUBMIT_METHODS
                and _receiver_mentions_pool(node.func)
            ):
                continue
            if module_names is None:
                module_names = _importable_names(ctx.tree)
            if node.args:
                yield from self._check_callable(ctx, node.args[0], module_names)
            for payload in list(node.args[1:]) + [k.value for k in node.keywords]:
                yield from self._check_payload(ctx, payload)

    def _check_callable(
        self, ctx: FileContext, func: ast.AST, module_names: set[str]
    ) -> Iterable[Diagnostic]:
        if isinstance(func, ast.Lambda):
            yield self.diag(
                ctx,
                func,
                "lambda submitted to the pool — task callables must be "
                "module-level functions (picklable by name)",
            )
        elif isinstance(func, ast.Attribute):
            yield self.diag(
                ctx,
                func,
                f"bound method/attribute '{func.attr}' submitted to the "
                "pool — it pickles its whole receiver; use a module-level "
                "function",
            )
        elif isinstance(func, ast.Name) and func.id not in module_names:
            yield self.diag(
                ctx,
                func,
                f"'{func.id}' is not a module-level function or imported "
                "name in this module — pool callables must be importable "
                "by the worker",
            )

    def _check_payload(
        self, ctx: FileContext, payload: ast.AST
    ) -> Iterable[Diagnostic]:
        for sub in ast.walk(payload):
            if isinstance(sub, ast.Name) and sub.id in _HEAVY_TYPES:
                yield self.diag(
                    ctx,
                    sub,
                    f"task payload embeds a {sub.id} — ship digests, file "
                    "refs, buffers, or row ranges across the process "
                    "boundary instead",
                )
            elif (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "column_set"
            ):
                yield self.diag(
                    ctx,
                    sub,
                    "task payload embeds a ColumnSet (.column_set(...)) — "
                    "ship digests, file refs, buffers, or row ranges "
                    "instead",
                )
