"""RL-PRAGMA — suppression hygiene (noqa codes; see also the engine).

A bare ``# noqa`` silences *every* ruff rule on its line forever — the
reviewer can no longer tell which violation was intended, and new
violations sneak in under the old blanket.  Every ``noqa`` must carry an
explicit code (``# noqa: E731``).

The companion checks on reprolint's own pragmas — ``allow(...)`` without a
reason, unknown rule codes, and pragmas that suppress nothing — live in
the engine (they need the post-suppression picture) but are reported under
this same code.  RL-PRAGMA is itself unsuppressible: fix the pragma rather
than stacking suppressions.
"""

from __future__ import annotations

import re
from typing import Iterable

from reprolint.base import Diagnostic, FileContext, Rule

_NOQA_ANY = re.compile(r"#\s*noqa\b", re.IGNORECASE)
_NOQA_CODED = re.compile(r"#\s*noqa\s*:\s*[A-Z][A-Z0-9]*\d", re.IGNORECASE)


class PragmaRule(Rule):
    code = "RL-PRAGMA"
    rationale = (
        "suppressions must be auditable: every # noqa carries an explicit "
        "code, every reprolint allow(...) carries a reason and suppresses "
        "something"
    )
    suppressible = False

    def applies_to(self, path: str) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for comment in ctx.comments:
            if not _NOQA_ANY.search(comment.text):
                continue
            if _NOQA_CODED.search(comment.text):
                continue
            yield Diagnostic(
                ctx.path,
                comment.line,
                comment.col,
                self.code,
                "bare '# noqa' — name the rule being silenced "
                "(e.g. '# noqa: E731')",
            )
