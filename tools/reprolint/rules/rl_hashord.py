"""RL-HASHORD — the determinism contract (the PR 4 bug class).

Canonical sorted code rows and plan signatures must not depend on
``PYTHONHASHSEED``.  Iterating a ``set``/``frozenset`` into anything
order-sensitive, sorting by ``hash``/``id``, or seeding an RNG from
``hash()`` all produce per-process orderings that *look* deterministic in
one run and silently differ in the next — PR 4 had to hunt down exactly
such a bug (``hash()``-seeded test data) the hard way.

Two check families, with different scopes:

* **set-order consumption** — in the modules whose outputs feed canonical
  rows or signatures (``relational/``, ``planner/``, ``parallel/``,
  ``incremental/``, ``faq/``): a syntactic set expression (set literal,
  set comprehension, ``set(...)``/``frozenset(...)`` call) consumed by an
  order-*sensitive* consumer — ``for`` iteration, list/generator/dict
  comprehensions, ``list()``/``tuple()``/``enumerate()``/``iter()``/
  ``reversed()``/``zip()``/``str.join()``.  ``sorted(set(...))``,
  ``len``/``min``/``max``/``sum``/``any``/``all`` and membership tests are
  order-insensitive and pass.
* **hash/id ordering and seeding** — everywhere: ``key=hash`` / ``key=id``
  (or a key lambda calling them) in ``sorted``/``min``/``max``/``.sort``,
  and ``hash()`` inside ``random.seed(...)`` / ``Random(...)`` arguments
  (use ``zlib.crc32`` — see ``tests/_helpers.stable_seed``).
"""

from __future__ import annotations

import ast
from typing import Iterable

from reprolint.base import Diagnostic, FileContext, Rule, call_name

SET_SCOPE_PREFIXES = (
    "src/repro/relational/",
    "src/repro/planner/",
    "src/repro/parallel/",
    "src/repro/incremental/",
    "src/repro/serving/",
    "src/repro/faq/",
    "src/repro/datalog/",
)

#: Calls whose first argument's iteration order lands in the result.
_ORDER_SENSITIVE_FIRST_ARG = ("list", "tuple", "enumerate", "iter", "reversed")
_SORTERS = ("sorted", "min", "max", "sort")


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _contains_call_to(node: ast.AST, names: tuple[str, ...]) -> ast.AST | None:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id in names
        ):
            return sub
    return None


class HashOrderRule(Rule):
    code = "RL-HASHORD"
    rationale = (
        "no hash-order leaks into canonical rows/signatures: set iteration "
        "into order-sensitive consumers (canonical-output modules), "
        "hash()/id() sort keys, or hash()-seeded RNGs"
    )

    def applies_to(self, path: str) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        check_sets = ctx.path.startswith(SET_SCOPE_PREFIXES)
        for node in ast.walk(ctx.tree):
            if check_sets:
                yield from self._set_consumption(ctx, node)
            yield from self._hash_keys(ctx, node)

    def _set_consumption(
        self, ctx: FileContext, node: ast.AST
    ) -> Iterable[Diagnostic]:
        unordered = (
            "iterates a set in hash order — sort it (or restructure) "
            "before the order can reach canonical output"
        )
        if isinstance(node, ast.For) and _is_set_expr(node.iter):
            yield self.diag(ctx, node.iter, f"for-loop {unordered}")
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for generator in node.generators:
                if _is_set_expr(generator.iter):
                    yield self.diag(ctx, generator.iter, f"comprehension {unordered}")
        elif isinstance(node, ast.Call):
            name = call_name(node)
            if (
                name in _ORDER_SENSITIVE_FIRST_ARG
                and isinstance(node.func, ast.Name)
                and node.args
                and _is_set_expr(node.args[0])
            ):
                yield self.diag(
                    ctx,
                    node,
                    f"{name}() materializes a set in hash order — "
                    "wrap in sorted(...)",
                )
            elif name == "zip" and isinstance(node.func, ast.Name):
                for arg in node.args:
                    if _is_set_expr(arg):
                        yield self.diag(
                            ctx, arg, "zip() consumes a set in hash order"
                        )
            elif name == "join" and isinstance(node.func, ast.Attribute):
                for arg in node.args:
                    if _is_set_expr(arg):
                        yield self.diag(
                            ctx, arg, "str.join() consumes a set in hash order"
                        )

    def _hash_keys(self, ctx: FileContext, node: ast.AST) -> Iterable[Diagnostic]:
        if not isinstance(node, ast.Call):
            return
        name = call_name(node)
        if name in _SORTERS:
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                value = keyword.value
                if isinstance(value, ast.Name) and value.id in ("hash", "id"):
                    yield self.diag(
                        ctx,
                        value,
                        f"key={value.id} orders by a per-process value — "
                        "sort by content instead",
                    )
                elif isinstance(value, ast.Lambda):
                    bad = _contains_call_to(value, ("hash", "id"))
                    if bad is not None:
                        yield self.diag(
                            ctx,
                            bad,
                            "sort key calls hash()/id() — per-process "
                            "ordering; sort by content instead",
                        )
        elif name in ("seed", "Random"):
            for arg in list(node.args) + [k.value for k in node.keywords]:
                bad = _contains_call_to(arg, ("hash",))
                if bad is not None:
                    yield self.diag(
                        ctx,
                        bad,
                        "RNG seeded from hash() varies per process under "
                        "PYTHONHASHSEED — use zlib.crc32 "
                        "(tests/_helpers.stable_seed)",
                    )
