"""The rule registry: every shipped rule, instantiated once.

Adding a rule = adding a module here with a :class:`~reprolint.base.Rule`
subclass and listing it in :data:`ALL_RULES` (see ``tools/reprolint/
README.md`` for the checklist, including the mandatory fixture tests in
``tests/test_reprolint.py``).
"""

from __future__ import annotations

from reprolint.rules.rl_counter import CounterRule
from reprolint.rules.rl_exact import ExactRule
from reprolint.rules.rl_hashord import HashOrderRule
from reprolint.rules.rl_numpy import NumpyScopeRule
from reprolint.rules.rl_poolship import PoolShipRule
from reprolint.rules.rl_pragma import PragmaRule

ALL_RULES = (
    ExactRule(),
    NumpyScopeRule(),
    CounterRule(),
    HashOrderRule(),
    PoolShipRule(),
    PragmaRule(),
)

RULE_CODES = tuple(rule.code for rule in ALL_RULES)

__all__ = ["ALL_RULES", "RULE_CODES"]
