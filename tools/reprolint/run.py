#!/usr/bin/env python3
"""CLI entry point: ``python tools/reprolint/run.py [paths...] [--json P]``.

Exit status 0 iff the tree is clean.  Pure stdlib, like
``tools/check_format.py`` — runs identically in the network-less dev
container and as the blocking CI lint step.
"""

from __future__ import annotations

import sys
from pathlib import Path

if __package__ in (None, ""):
    # Running as a script: make the `reprolint` package importable.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from reprolint.engine import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
