"""reprolint — the repo-specific AST invariant linter.

Machine-checks the contracts the ROADMAP states in prose: exact-Fraction
proof paths (RL-EXACT), the stdlib-only base install (RL-NUMPY), scoped
work counters (RL-COUNTER), hash-order determinism (RL-HASHORD), the pool
shipping contract (RL-POOLSHIP), and suppression hygiene (RL-PRAGMA).

Run it from the repo root::

    python tools/reprolint/run.py src tests benchmarks tools

See ``tools/reprolint/README.md`` for the rule table, the pragma format,
and the how-to-add-a-rule checklist.
"""

from __future__ import annotations
