"""Concurrent serving: MVCC snapshot reads over the incremental engine.

Architecture layer 12 (see ``docs/architecture.md``).  The layers
below this one (engines, worker pool, IVM) assume one caller at
a time.  This package is the long-lived concurrent front end the "heavy
traffic" story needs:

* :mod:`~repro.serving.snapshot` — cross-relation snapshot **epochs**.
  One committed write batch = one epoch; readers pin an epoch and see an
  immutable, epoch-consistent view of every relation plus the maintained
  query result, all zero-copy references into the log-structured
  :class:`~repro.incremental.delta.VersionedRelation` store.
* :mod:`~repro.serving.server` — the request broker: a single writer
  thread funnels write batches through the IVM path and publishes epochs;
  a reader thread pool serves snapshot-pinned reads concurrently.
* :mod:`~repro.serving.admission` — backpressure: bounded write queue,
  bounded in-flight reads, shed-with-``retry_after`` on overload, and
  per-request latency / snapshot-epoch-spread metrics.
* :mod:`~repro.serving.engine` — :class:`ServingEngine`, the
  QueryEngine-shaped facade (``execute`` to bind+serve, ``submit`` /
  ``read`` futures, ``checkpoint`` for persisted restarts).

**The snapshot/compaction liveness contract** (pinned throughout the
package and in :meth:`VersionedRelation.pin`): a version pinned by any
live snapshot stays answerable — bit-identical to a frozen copy of the
database at that version — until its last reader drops, across any number
of writer batches and compactions; and all log mutation, including the
pin/unpin bookkeeping that enforces this, happens on the single writer
thread.
"""

from repro.serving.admission import AdmissionController, MetricSeries
from repro.serving.engine import ServingEngine
from repro.serving.server import SnapshotServer, WriteReceipt
from repro.serving.snapshot import EpochState, Snapshot, SnapshotRegistry

__all__ = [
    "AdmissionController",
    "EpochState",
    "MetricSeries",
    "ServingEngine",
    "Snapshot",
    "SnapshotRegistry",
    "SnapshotServer",
    "WriteReceipt",
]
