"""Cross-relation snapshot epochs: MVCC read views for concurrent serving.

One committed write batch = one **epoch**.  At each epoch the writer thread
captures an :class:`EpochState` — the per-relation versions it pinned on the
:class:`~repro.incremental.delta.VersionedRelation` logs, the relation
objects those versions resolve to, and the maintained view — and publishes
it into the :class:`SnapshotRegistry`.  Readers :meth:`~SnapshotRegistry.pin`
the current epoch and get a :class:`Snapshot`: an immutable, epoch-consistent
view of every relation plus the maintained query result, all zero-copy
references into the log-structured store.

Snapshot/compaction liveness contract
-------------------------------------

* Every relation a snapshot can reach is an ordinary immutable
  :class:`~repro.relational.relation.Relation` whose columns, sorted orders,
  and tries satisfy the zero-copy contracts — a reader at epoch *e* sees
  exactly the rows a frozen copy of the database at *e* would hold, bit for
  bit, no matter how far the writer has advanced or compacted since.
* The writer pins each published version on its log
  (:meth:`VersionedRelation.pin`), and compaction retains pinned versions,
  so promoting a new base can never invalidate a live snapshot.  Pins are
  released only after the last reader of the epoch drops *and* only on the
  writer thread (the registry parks fully-released epochs until the writer
  drains them at the next publish or at close), keeping every log mutation
  single-threaded.
* Reader threads never touch mutable state: a :class:`Snapshot` is built
  from references captured at publish time.  The lazy caches they may
  populate on shared relations (column transposes, tries, sorted orders)
  are idempotent — concurrent duplicate computation is benign under the
  GIL and every thread observes an equivalent value.
"""

from __future__ import annotations

import threading

from repro.core.query_plans import PlanResult
from repro.exceptions import ServingError
from repro.relational.database import Database
from repro.relational.relation import Relation

__all__ = ["EpochState", "Snapshot", "SnapshotRegistry"]


class EpochState:
    """One published epoch: pinned versions + the relations they resolve to.

    Created by the writer thread at publish time; immutable afterwards
    except for the registry-guarded ``pins`` refcount.
    """

    __slots__ = ("epoch", "versions", "relations", "view", "boolean", "pins")

    def __init__(
        self,
        epoch: int,
        versions: dict[str, int],
        relations: dict[str, Relation],
        view: Relation,
        boolean: bool,
    ) -> None:
        self.epoch = epoch
        self.versions = versions
        self.relations = relations
        self.view = view
        self.boolean = boolean
        self.pins = 0

    def __repr__(self) -> str:
        return (
            f"EpochState(epoch={self.epoch}, versions={self.versions}, "
            f"pins={self.pins})"
        )


class Snapshot:
    """A pinned, immutable, epoch-consistent view of the served database.

    Valid from :meth:`SnapshotRegistry.pin` until :meth:`release` (also a
    context manager).  All accessors are safe from any thread: they only
    read references captured when the epoch was published.
    """

    __slots__ = ("epoch", "versions", "_registry", "_state", "_database",
                 "_released")

    def __init__(self, registry: "SnapshotRegistry", state: EpochState) -> None:
        self.epoch = state.epoch
        self.versions = state.versions
        self._registry = registry
        self._state = state
        self._database = None
        self._released = False

    @property
    def database(self) -> Database:
        """The pinned relations as a :class:`Database` (built on demand)."""
        if self._database is None:
            self._database = Database(
                [self._state.relations[name] for name in self._state.relations]
            )
        return self._database

    def relation(self, name: str) -> Relation:
        """One pinned base relation."""
        return self._state.relations[name]

    def result(self) -> PlanResult:
        """The maintained query result at this epoch (bit-identical to a
        from-scratch run over :attr:`database`)."""
        state = self._state
        return PlanResult(relation=state.view, boolean=state.boolean)

    def release(self) -> None:
        """Drop the pin (idempotent).  The underlying relations stay valid
        for as long as the caller holds references to them — release only
        lets the registry retire the epoch's log pins."""
        if not self._released:
            self._released = True
            self._registry._release(self._state)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"Snapshot(epoch={self.epoch}, versions={self.versions})"


class SnapshotRegistry:
    """Epoch bookkeeping between one writer and many readers.

    The writer :meth:`publish`\\ es each committed epoch and receives back
    the list of *retired* epochs — fully released, no longer current —
    whose log pins it must now drop (see the module docstring: all
    :class:`VersionedRelation` mutation stays on the writer thread).
    Readers :meth:`pin` the current epoch; the last :meth:`Snapshot.release`
    parks the epoch for the writer's next drain.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._current: EpochState | None = None
        # Published epochs whose log pins have not been dropped yet.
        self._live: dict[int, EpochState] = {}
        # Fully-released non-current epochs awaiting the writer's drain.
        self._released: list[EpochState] = []

    @property
    def current_epoch(self) -> int:
        """The newest published epoch (``-1`` before the first publish)."""
        with self._lock:
            return -1 if self._current is None else self._current.epoch

    def oldest_live_epoch(self) -> int:
        """The oldest epoch still holding log pins (``-1`` when none)."""
        with self._lock:
            return min(self._live) if self._live else -1

    def publish(self, state: EpochState) -> list[EpochState]:
        """Install ``state`` as current; return the epochs to unpin.

        Writer thread only.  The returned states' per-relation versions
        must be unpinned from their logs by the caller — the registry has
        already forgotten them.
        """
        with self._lock:
            previous = self._current
            self._current = state
            self._live[state.epoch] = state
            retired = self._released
            self._released = []
            if previous is not None and previous.pins == 0:
                retired.append(previous)
            for old in retired:
                self._live.pop(old.epoch, None)
            return retired

    def pin(self) -> Snapshot:
        """Pin the current epoch (any thread); raises before first publish."""
        with self._lock:
            state = self._current
            if state is None:
                raise ServingError(
                    "no epoch published — the server is not serving yet"
                )
            state.pins += 1
            return Snapshot(self, state)

    def _release(self, state: EpochState) -> None:
        with self._lock:
            state.pins -= 1
            if (
                state.pins == 0
                and state is not self._current
                and state.epoch in self._live
            ):
                self._released.append(state)

    def close(self) -> list[EpochState]:
        """Forget every epoch; return all of them for final unpinning.

        Outstanding :class:`Snapshot` objects stay readable (they hold
        plain references) but new pins are refused.
        """
        with self._lock:
            states = [self._live[epoch] for epoch in sorted(self._live)]
            self._live = {}
            self._released = []
            self._current = None
            return states
