"""Backpressure and per-request metrics for the serving front end.

Admission control keeps the broker's queues bounded: at most
``max_pending_writes`` write batches waiting for the writer thread and at
most ``max_inflight_reads`` admitted-but-unfinished reads.  A request over
either limit is **shed** with :class:`~repro.exceptions.OverloadError`
carrying ``retry_after`` — the client backs off and retries, so overload
degrades into pacing rather than unbounded queueing (the memory- and
latency-blowup mode of an unprotected server).

:class:`MetricSeries` records per-request samples (latencies, epoch
spreads) thread-safely and summarizes them as count/mean/p50/p99/max.
"""

from __future__ import annotations

import math
import threading

from repro.exceptions import OverloadError

__all__ = ["AdmissionController", "MetricSeries", "percentile"]


def percentile(samples, fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (0 when empty).

    ``fraction`` in ``[0, 1]``; rank ``ceil(fraction * n)`` per the
    classic nearest-rank definition, so ``percentile(s, 1.0)`` is the max.
    """
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    rank = min(len(ordered), max(1, math.ceil(fraction * len(ordered))))
    return ordered[rank - 1]


class MetricSeries:
    """A thread-safe series of numeric samples with percentile summaries."""

    __slots__ = ("_lock", "_samples")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._samples: list[float] = []

    def record(self, value: float) -> None:
        with self._lock:
            self._samples.append(value)

    def samples(self) -> list[float]:
        with self._lock:
            return list(self._samples)

    def summary(self) -> dict:
        """``{count, mean, p50, p99, max}`` over the samples so far."""
        samples = self.samples()
        if not samples:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0,
                    "max": 0.0}
        return {
            "count": len(samples),
            "mean": sum(samples) / len(samples),
            "p50": percentile(samples, 0.50),
            "p99": percentile(samples, 0.99),
            "max": max(samples),
        }


class AdmissionController:
    """Bounded write queue + reader cap, shed-with-retry-after on overload.

    The broker calls ``enter_*`` before admitting a request and the
    matching ``exit_*`` when the request finishes (success or failure);
    both are cheap counter updates under one lock.  Shed requests are
    counted and raised as :class:`OverloadError` — they never enter a
    queue, so a saturated server's memory footprint stays flat.
    """

    def __init__(
        self,
        max_pending_writes: int = 256,
        max_inflight_reads: int = 64,
        retry_after: float = 0.05,
    ) -> None:
        self.max_pending_writes = max(1, max_pending_writes)
        self.max_inflight_reads = max(1, max_inflight_reads)
        self.retry_after = retry_after
        self._lock = threading.Lock()
        self._pending_writes = 0
        self._inflight_reads = 0
        self._writes_admitted = 0
        self._writes_shed = 0
        self._reads_admitted = 0
        self._reads_shed = 0

    # -- write path --------------------------------------------------------------

    def enter_write_queue(self) -> None:
        """Admit one write into the (bounded) queue, or shed it."""
        with self._lock:
            if self._pending_writes >= self.max_pending_writes:
                self._writes_shed += 1
                raise OverloadError(
                    f"write queue full ({self.max_pending_writes} pending); "
                    f"retry in {self.retry_after}s",
                    retry_after=self.retry_after,
                )
            self._pending_writes += 1
            self._writes_admitted += 1

    def exit_write_queue(self) -> None:
        with self._lock:
            self._pending_writes -= 1

    # -- read path ---------------------------------------------------------------

    def enter_read(self) -> None:
        """Admit one read (bounded in-flight count), or shed it."""
        with self._lock:
            if self._inflight_reads >= self.max_inflight_reads:
                self._reads_shed += 1
                raise OverloadError(
                    f"read capacity full ({self.max_inflight_reads} in "
                    f"flight); retry in {self.retry_after}s",
                    retry_after=self.retry_after,
                )
            self._inflight_reads += 1
            self._reads_admitted += 1

    def exit_read(self) -> None:
        with self._lock:
            self._inflight_reads -= 1

    # -- introspection -----------------------------------------------------------

    def counters(self) -> dict:
        """Admission totals: admitted/shed per path plus current loads."""
        with self._lock:
            return {
                "writes_admitted": self._writes_admitted,
                "writes_shed": self._writes_shed,
                "reads_admitted": self._reads_admitted,
                "reads_shed": self._reads_shed,
                "pending_writes": self._pending_writes,
                "inflight_reads": self._inflight_reads,
            }
