"""The request broker: one writer thread, a pool of snapshot readers.

:class:`SnapshotServer` turns an :class:`IncrementalQueryEngine` into a
long-lived concurrent front end:

* **Writes** (:meth:`submit_write`) enqueue change batches onto a bounded
  queue consumed by the single writer thread, which funnels them through
  the IVM path (``insert``/``delete``/``refresh``), then publishes the new
  epoch into the :class:`~repro.serving.snapshot.SnapshotRegistry`.  The
  writer thread is the *only* thread that ever mutates the engine or its
  version logs — including pin/unpin bookkeeping for retired epochs — so
  the whole maintenance stack stays single-threaded underneath a
  concurrent facade.
* **Reads** (:meth:`submit_read`) run on a thread pool; each read pins the
  current epoch, evaluates against the immutable snapshot (the maintained
  view by default, or any caller-supplied function of the snapshot), and
  releases the pin.  Readers share nothing mutable with the writer beyond
  the registry's short critical sections, so read latency is decoupled
  from batch commit latency up to GIL interleaving.

Admission control (:class:`~repro.serving.admission.AdmissionController`)
sheds requests over the queue/in-flight bounds with ``retry_after``; every
admitted request records its latency, and every read records the
snapshot-epoch spread (current epoch minus pinned epoch) — the staleness
a concurrent reader actually observed.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.exceptions import ServingError
from repro.serving.admission import AdmissionController, MetricSeries
from repro.serving.snapshot import EpochState, Snapshot, SnapshotRegistry

__all__ = ["SnapshotServer", "WriteReceipt"]

_STOP = object()


@dataclass(frozen=True)
class WriteReceipt:
    """What a committed write batch resolved to."""

    epoch: int  #: the epoch the batch committed as (engine version)
    changed: bool  #: False when the batch validated to a net no-op
    latency: float  #: seconds from admission to commit


class SnapshotServer:
    """Thread-pool request broker over one incremental engine.

    Construct with a *bound, materialized* engine (the facade in
    :mod:`repro.serving.engine` handles that), then :meth:`start` with the
    materialization result to publish epoch 0 and spin up the threads.
    """

    def __init__(
        self,
        engine,
        driver: str = "generic",
        readers: int = 4,
        admission: AdmissionController | None = None,
    ) -> None:
        self.engine = engine
        self.driver = driver
        self.readers = max(1, readers)
        self.admission = (
            admission if admission is not None else AdmissionController()
        )
        self.registry = SnapshotRegistry()
        self.read_latency = MetricSeries()
        self.write_latency = MetricSeries()
        self.epoch_spread = MetricSeries()
        self.started_at: float | None = None
        self._queue: queue.Queue = queue.Queue()
        self._writer: threading.Thread | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._running = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self, initial_result) -> None:
        """Publish epoch 0 from ``initial_result`` and start the threads."""
        if self._running:
            raise ServingError("server is already running")
        # The initial publish runs on the caller's thread — the writer
        # thread does not exist yet, so single-threaded log access holds.
        self._publish(initial_result)
        self._pool = ThreadPoolExecutor(
            max_workers=self.readers, thread_name_prefix="repro-serve-read"
        )
        self._writer = threading.Thread(
            target=self._writer_loop, name="repro-serve-write", daemon=True
        )
        self._running = True
        self.started_at = time.perf_counter()
        self._writer.start()

    def close(self) -> None:
        """Drain the write queue, stop the threads, drop every epoch pin."""
        if not self._running:
            return
        self._running = False
        self._queue.put(_STOP)
        self._writer.join()
        self._pool.shutdown(wait=True)
        for state in self.registry.close():
            self._unpin(state)

    # -- requests ----------------------------------------------------------------

    def submit_write(
        self, changes: Mapping[str, tuple], timestamp: float | None = None
    ) -> Future:
        """Enqueue one write batch; resolves to a :class:`WriteReceipt`.

        ``changes`` maps relation names to ``(inserts, deletes)`` value-row
        sequences.  Sheds with :class:`OverloadError` when the queue is
        full; a batch that fails validation resolves the future with the
        :class:`~repro.exceptions.DeltaError` and leaves every view at the
        previous epoch (the engine discards the bad batch wholesale).
        """
        self._require_running()
        self.admission.enter_write_queue()
        future: Future = Future()
        submitted = time.perf_counter() if timestamp is None else timestamp
        self._queue.put(("write", changes, future, submitted))
        return future

    def submit_read(
        self, fn: Callable[[Snapshot], object] | None = None
    ) -> Future:
        """Admit one read onto the reader pool.

        The read pins the current epoch and evaluates ``fn(snapshot)``
        (default: the maintained view as a ``PlanResult``).  Sheds with
        :class:`OverloadError` when too many reads are in flight.
        """
        self._require_running()
        self.admission.enter_read()
        submitted = time.perf_counter()
        try:
            return self._pool.submit(self._run_read, fn, submitted)
        except BaseException:
            self.admission.exit_read()
            raise

    def submit_task(self, fn: Callable[[object], object]) -> Future:
        """Run ``fn(engine)`` on the writer thread, serialized with writes.

        The queue is FIFO, so a no-op task doubles as a write barrier;
        checkpointing uses this to see a quiescent engine.
        """
        self._require_running()
        future: Future = Future()
        self._queue.put(("task", fn, future, time.perf_counter()))
        return future

    def _require_running(self) -> None:
        if not self._running:
            raise ServingError(
                "server is not running — call execute()/start() first"
            )

    # -- reader side -------------------------------------------------------------

    def _run_read(self, fn, submitted: float):
        try:
            with self.registry.pin() as snapshot:
                value = snapshot.result() if fn is None else fn(snapshot)
            self.read_latency.record(time.perf_counter() - submitted)
            self.epoch_spread.record(
                self.registry.current_epoch - snapshot.epoch
            )
            return value
        finally:
            self.admission.exit_read()

    # -- writer side -------------------------------------------------------------

    def _writer_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                break
            kind, payload, future, submitted = item
            if not future.set_running_or_notify_cancel():
                if kind == "write":
                    self.admission.exit_write_queue()
                continue
            if kind == "task":
                try:
                    future.set_result(payload(self.engine))
                except BaseException as error:
                    future.set_exception(error)
                continue
            try:
                receipt = self._apply_write(payload, submitted)
            except BaseException as error:
                # Bad batch (DeltaError etc.): validation happens before
                # anything mutates, so nothing was applied — drop the
                # buffered changes and keep serving at the old epoch.
                self.engine.discard_pending()
                future.set_exception(error)
            else:
                future.set_result(receipt)
            finally:
                self.admission.exit_write_queue()

    def _apply_write(self, changes, submitted: float) -> WriteReceipt:
        engine = self.engine
        for name in sorted(changes):
            inserts, deletes = changes[name]
            if inserts:
                engine.insert(name, inserts)
            if deletes:
                engine.delete(name, deletes)
        before = engine.version
        result = engine.refresh(driver=self.driver)
        changed = engine.version != before
        if changed:
            self._publish(result)
        latency = time.perf_counter() - submitted
        self.write_latency.record(latency)
        return WriteReceipt(
            epoch=engine.version, changed=changed, latency=latency
        )

    def _publish(self, result) -> None:
        """Pin the engine's current versions and install them as an epoch.

        Writer thread only (or the caller's thread in :meth:`start`,
        before the writer exists).  Also drains the registry's retired
        epochs and drops their log pins — the deferred-unpin half of the
        compaction liveness contract.
        """
        engine = self.engine
        versions: dict[str, int] = {}
        relations: dict = {}
        for name in engine.relation_names:
            log = engine.relation_log(name)
            version = log.pin()
            versions[name] = version
            relations[name] = log.snapshot(version)
        state = EpochState(
            epoch=engine.version,
            versions=versions,
            relations=relations,
            view=result.relation,
            boolean=result.boolean,
        )
        for retired in self.registry.publish(state):
            self._unpin(retired)

    def _unpin(self, state: EpochState) -> None:
        engine = self.engine
        for name, version in state.versions.items():
            engine.relation_log(name).unpin(version)

    # -- introspection -----------------------------------------------------------

    def metrics(self) -> dict:
        """Latency/spread summaries, admission counters, epoch bounds."""
        elapsed = (
            0.0
            if self.started_at is None
            else time.perf_counter() - self.started_at
        )
        return {
            "current_epoch": self.registry.current_epoch,
            "oldest_live_epoch": self.registry.oldest_live_epoch(),
            "elapsed": elapsed,
            "read_latency": self.read_latency.summary(),
            "write_latency": self.write_latency.summary(),
            "epoch_spread": self.epoch_spread.summary(),
            "admission": self.admission.counters(),
        }
