""":class:`ServingEngine` — the QueryEngine-shaped concurrent facade.

The shape matches :class:`~repro.parallel.ParallelQueryEngine` and
:class:`~repro.incremental.IncrementalQueryEngine`: construct per query,
``execute(database)`` once to bind and materialize — which here also starts
the broker (one writer thread + a reader pool) — then drive it with
:meth:`submit` (write batches through the IVM path) and :meth:`read`
(snapshot-pinned concurrent reads), both returning futures.

Restartability: a database opened from a persisted directory
(:func:`~repro.relational.storage.open_database_dir`) serves straight off
its mmap-backed columns — compactions write new digest-named artifacts
through ``ColumnStore.ensure`` as they happen, and :meth:`checkpoint`
persists the current manifest/dictionaries so a later cold start resumes
from the served state.

Thread-safety notes (why this is sound under CPython):

* all engine/log mutation is confined to the writer thread (see
  :mod:`repro.serving.server`); readers only touch immutable snapshots;
* shared dictionaries are append-only, so readers decoding codes that
  existed at their pinned epoch never race the writer interning new
  values — :meth:`execute` force-hydrates lazy (mmap-backed) dictionaries
  up front so no reader triggers a first-touch load concurrently;
* lazy per-relation caches (column transposes, tries, sorted orders) are
  idempotent: concurrent duplicate computation is benign and every thread
  observes an equivalent value.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import Callable, Mapping

from repro.exceptions import ServingError
from repro.incremental.engine import IncrementalQueryEngine
from repro.serving.admission import AdmissionController
from repro.serving.server import SnapshotServer
from repro.serving.snapshot import Snapshot

__all__ = ["ServingEngine"]


class ServingEngine:
    """Concurrent MVCC serving over one maintained conjunctive query.

    Example:
        >>> engine = ServingEngine(triangle_query(), readers=4)  # doctest: +SKIP
        >>> engine.execute(database)              # bind, materialize, serve
        >>> done = engine.submit({"R": ([(7, 8)], [])})   # write batch
        >>> rows = engine.read().result().relation        # snapshot read
        >>> engine.close()
    """

    DRIVERS = IncrementalQueryEngine.DRIVERS

    def __init__(
        self,
        query,
        constraints=None,
        backend: str = "exact",
        planner=None,
        readers: int = 4,
        workers: int = 1,
        execution_backend: str | None = None,
        compact_ratio: float | None = None,
        compact_min: int | None = None,
        max_pending_writes: int = 256,
        max_inflight_reads: int | None = None,
        retry_after: float = 0.05,
    ) -> None:
        self._engine = IncrementalQueryEngine(
            query,
            constraints=constraints,
            backend=backend,
            planner=planner,
            workers=workers,
            compact_ratio=compact_ratio,
            compact_min=compact_min,
            execution_backend=execution_backend,
        )
        self.query = query
        self.readers = max(1, readers)
        # Default in-flight cap: a few requests queued per reader thread —
        # enough to keep the pool busy, bounded enough to shed a stampede.
        self._admission = AdmissionController(
            max_pending_writes=max_pending_writes,
            max_inflight_reads=(
                4 * self.readers
                if max_inflight_reads is None
                else max_inflight_reads
            ),
            retry_after=retry_after,
        )
        self._server: SnapshotServer | None = None

    # -- lifecycle ---------------------------------------------------------------

    def execute(self, database=None, driver: str = "generic"):
        """Bind + materialize, then start (or restart) the broker.

        Returns the epoch-0 ``PlanResult``.  Calling again re-binds and
        restarts serving (any in-flight requests on the old broker are
        drained first).
        """
        if self._server is not None:
            self._server.close()
            self._server = None
        result = self._engine.execute(database, driver=driver)
        self._hydrate_dictionaries()
        self._server = SnapshotServer(
            self._engine,
            driver=driver,
            readers=self.readers,
            admission=self._admission,
        )
        self._server.start(result)
        return result

    def _hydrate_dictionaries(self) -> None:
        """Force lazy (mmap-backed) dictionaries resident, single-threaded.

        ``LazyDictionary`` hydrates on first access; doing that on the
        caller's thread before any reader exists removes the one shared
        structure whose first touch is not an idempotent cache fill.
        """
        for relation in self._engine.database():
            for dictionary in relation.dictionaries:
                _ = dictionary.values  # property access hydrates

    def close(self) -> None:
        """Stop the broker (draining queued writes) and the engine."""
        if self._server is not None:
            self._server.close()
            self._server = None
        self._engine.close()

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_serving(self) -> SnapshotServer:
        if self._server is None:
            raise ServingError(
                "engine is not serving — call execute(database) first"
            )
        return self._server

    # -- requests ----------------------------------------------------------------

    def submit(self, changes: Mapping[str, tuple]) -> Future:
        """Submit one write batch ``{name: (inserts, deletes)}``.

        Resolves to a :class:`~repro.serving.server.WriteReceipt`; sheds
        with :class:`~repro.exceptions.OverloadError` under backpressure.
        """
        return self._require_serving().submit_write(changes)

    def read(self, fn: Callable[[Snapshot], object] | None = None) -> Future:
        """Submit one snapshot read (default: the maintained view).

        ``fn`` receives the pinned :class:`Snapshot` — run any query
        against ``snapshot.database``, it is epoch-consistent and
        immutable.  Sheds with :class:`OverloadError` at the in-flight cap.
        """
        return self._require_serving().submit_read(fn)

    def snapshot(self) -> Snapshot:
        """Pin the current epoch directly (caller manages release)."""
        return self._require_serving().registry.pin()

    def drain(self) -> None:
        """Barrier: block until every write submitted so far has committed."""
        self._require_serving().submit_task(_noop).result()

    def checkpoint(self, directory) -> None:
        """Persist the served database into ``directory``, quiescently.

        Runs on the writer thread behind every queued write, so the saved
        manifest reflects a committed epoch.  Compaction already wrote the
        column artifacts through ``ColumnStore.ensure`` when the database
        came from (or was saved to) that directory, making this mostly a
        manifest/dictionary rewrite.
        """
        from repro.relational.storage import save_database_dir

        server = self._require_serving()
        server.submit_task(
            lambda engine: save_database_dir(engine.database(), directory)
        ).result()

    # -- introspection -----------------------------------------------------------

    @property
    def current_epoch(self) -> int:
        return self._require_serving().registry.current_epoch

    @property
    def stats(self):
        """Maintenance counters (single-writer; read for reporting only)."""
        return self._engine.stats

    @property
    def cache_stats(self):
        return self._engine.cache_stats

    def database(self):
        """The writer's current database view (reporting only — concurrent
        readers must go through :meth:`read`/:meth:`snapshot`)."""
        return self._engine.database()

    def relation(self, name: str):
        return self._engine.relation(name)

    def metrics(self) -> dict:
        """Serving metrics: latency/spread summaries, admission counters,
        epoch bounds, elapsed serving time, and sustained batch rate."""
        server = self._require_serving()
        report = server.metrics()
        batches = self._engine.stats.batches
        elapsed = report["elapsed"]
        report["batches_applied"] = batches
        report["batches_per_sec"] = batches / elapsed if elapsed > 0 else 0.0
        return report


def _noop(engine) -> None:
    return None
