"""repro — a reproduction of Abo Khamis, Ngo & Suciu, PODS 2017 (PANDA).

Public API highlights (see README.md for the architecture):

* :mod:`repro.bounds` — AGM / polymatroid / entropic-outer size bounds;
* :mod:`repro.datalog` — conjunctive queries, disjunctive datalog rules,
  and recursive programs (:class:`~repro.datalog.DatalogEngine`);
* :func:`repro.core.panda.panda` — the PANDA algorithm (Algorithm 1);
* :mod:`repro.core.query_plans` — full/Boolean CQ evaluation at DAPB,
  da-fhtw, and da-subw runtimes (Corollaries 7.10/7.11/7.13, Theorem 1.9);
* :mod:`repro.widths` — tw / ghtw / fhtw / subw / adw and degree-aware widths;
* :mod:`repro.flows` — Shannon-flow inequalities and proof sequences;
* :mod:`repro.instances` — the paper's worst-case and group-system instances.
"""

from repro.bounds import agm_bound, log_size_bound
from repro.core.constraints import (
    ConstraintSet,
    DegreeConstraint,
    cardinality,
    functional_dependency,
)
from repro.core.hypergraph import Hypergraph
from repro.core.panda import PandaResult, panda
from repro.core.query_plans import (
    dafhtw_plan,
    dasubw_plan,
    panda_full_query,
    tree_decomposition_plan,
)
from repro.core.setfunctions import SetFunction
from repro.datalog import (
    Atom,
    ConjunctiveQuery,
    DatalogEngine,
    DatalogProgram,
    DatalogRule,
    DisjunctiveRule,
    parse_program,
    parse_query,
    parse_rule,
)
from repro.relational import Database, Relation

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "ConstraintSet",
    "Database",
    "DatalogEngine",
    "DatalogProgram",
    "DatalogRule",
    "DegreeConstraint",
    "DisjunctiveRule",
    "Hypergraph",
    "PandaResult",
    "Relation",
    "SetFunction",
    "agm_bound",
    "cardinality",
    "dafhtw_plan",
    "dasubw_plan",
    "functional_dependency",
    "log_size_bound",
    "panda",
    "panda_full_query",
    "parse_program",
    "parse_query",
    "parse_rule",
    "tree_decomposition_plan",
    "__version__",
]
