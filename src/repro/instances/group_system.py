"""Database instances from group systems (Definition 4.2, Lemma 4.3).

Chan–Yeung group systems turn any "group characterizable" entropy profile
into a database: given a finite group ``G`` with subgroups ``G_1 ... G_n``,
the relation ``R_F = {(g·G_i)_{i∈F} : g ∈ G}`` has

    deg_{R_Y}(Y | a_Z) = |G_Z| / |G_Y|           (Lemma 4.3),

and the uniform distribution over ``g`` induces the entropy
``h(A_S) = log |G| − log |G_S|`` with ``G_S = ∩_{i∈S} G_i``.

The paper uses gigantic permutation groups to prove asymptotic tightness of
the entropic bound (Lemma 4.4).  Those are not materializable; instead this
module implements *abelian* group systems — vector spaces ``F_p^k`` with
subspace subgroups — which realize every uniform/modular-style profile used
in the paper's concrete instances at laptop scale (and have exactly rational
entropies in units of ``log2 p``).  DESIGN.md records the substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import Iterable, Sequence

from repro.core.constraints import log2_fraction
from repro.core.setfunctions import SetFunction
from repro.exceptions import ReproError
from repro.relational.database import Database
from repro.relational.relation import Relation

__all__ = ["Subspace", "GroupSystem", "model_size_lower_bound"]


def _rref_mod_p(rows: list[list[int]], p: int) -> list[list[int]]:
    """Row-reduce a matrix over F_p; returns the non-zero rows in RREF."""
    matrix = [list(r) for r in rows]
    if not matrix:
        return []
    cols = len(matrix[0])
    pivot_row = 0
    for col in range(cols):
        pivot = next(
            (r for r in range(pivot_row, len(matrix)) if matrix[r][col] % p != 0),
            None,
        )
        if pivot is None:
            continue
        matrix[pivot_row], matrix[pivot] = matrix[pivot], matrix[pivot_row]
        inv = pow(matrix[pivot_row][col], p - 2, p) if p > 2 else matrix[pivot_row][col]
        matrix[pivot_row] = [(v * inv) % p for v in matrix[pivot_row]]
        for r in range(len(matrix)):
            if r != pivot_row and matrix[r][col] % p:
                factor = matrix[r][col]
                matrix[r] = [
                    (a - factor * b) % p
                    for a, b in zip(matrix[r], matrix[pivot_row])
                ]
        pivot_row += 1
        if pivot_row == len(matrix):
            break
    return [row for row in matrix[:pivot_row] if any(row)]


@dataclass(frozen=True)
class Subspace:
    """A subspace of ``F_p^k`` in reduced row-echelon basis form."""

    p: int
    k: int
    basis: tuple[tuple[int, ...], ...]

    @classmethod
    def span(cls, p: int, k: int, generators: Iterable[Sequence[int]]) -> "Subspace":
        rows = [_normalize(g, k, p) for g in generators]
        reduced = _rref_mod_p(rows, p)
        return cls(p, k, tuple(tuple(r) for r in reduced))

    @classmethod
    def kernel_of_functional(cls, p: int, k: int, coefficients: Sequence[int]) -> "Subspace":
        """The hyperplane ``{v : Σ c_i v_i = 0 (mod p)}``."""
        coeffs = _normalize(coefficients, k, p)
        pivot = next((i for i, c in enumerate(coeffs) if c), None)
        if pivot is None:
            return cls.full(p, k)
        generators = []
        inv = pow(coeffs[pivot], p - 2, p) if p > 2 else coeffs[pivot]
        for j in range(k):
            if j == pivot:
                continue
            vec = [0] * k
            vec[j] = 1
            vec[pivot] = (-coeffs[j] * inv) % p
            generators.append(vec)
        return cls.span(p, k, generators)

    @classmethod
    def coordinates(cls, p: int, k: int, zero_coords: Iterable[int]) -> "Subspace":
        """The subspace where the listed coordinates are 0 (others free)."""
        zero = set(zero_coords)
        generators = []
        for j in range(k):
            if j not in zero:
                vec = [0] * k
                vec[j] = 1
                generators.append(vec)
        return cls.span(p, k, generators)

    @classmethod
    def full(cls, p: int, k: int) -> "Subspace":
        return cls.coordinates(p, k, ())

    @property
    def dimension(self) -> int:
        return len(self.basis)

    def order(self) -> int:
        """``|subspace| = p^dim``."""
        return self.p**self.dimension

    def contains(self, vector: Sequence[int]) -> bool:
        return self.coset_representative(vector) == (0,) * self.k

    def coset_representative(self, vector: Sequence[int]) -> tuple[int, ...]:
        """The canonical representative of ``vector + subspace``.

        Eliminates the basis pivots from the vector; two vectors share a coset
        iff their representatives coincide.
        """
        v = list(_normalize(vector, self.k, self.p))
        for row in self.basis:
            pivot = next(i for i, c in enumerate(row) if c)
            if v[pivot]:
                factor = v[pivot]
                v = [(a - factor * b) % self.p for a, b in zip(v, row)]
        return tuple(v)

    def intersect(self, other: "Subspace") -> "Subspace":
        """Subspace intersection via the kernel-of-stacked-quotients trick.

        ``u ∈ U ∩ W`` iff ``u ∈ U`` and ``u``'s coset rep. modulo ``W`` is 0;
        computed by intersecting U's span with W through the Zassenhaus-style
        construction on the doubled space.
        """
        if (self.p, self.k) != (other.p, other.k):
            raise ReproError("cannot intersect subspaces of different ambient spaces")
        p, k = self.p, self.k
        # Zassenhaus: rows [u | u] for u in U, [w | 0] for w in W; the RREF
        # rows of the combined matrix with zero left half have right half
        # spanning U ∩ W.
        stacked = [list(u) + list(u) for u in self.basis]
        stacked += [list(w) + [0] * k for w in other.basis]
        reduced = _rref_mod_p(stacked, p)
        inter = [row[k:] for row in reduced if not any(row[:k])]
        return Subspace.span(p, k, inter)


def _normalize(vector: Sequence[int], k: int, p: int) -> list[int]:
    v = [int(x) % p for x in vector]
    if len(v) != k:
        raise ReproError(f"vector {vector} has length {len(v)}, expected {k}")
    return v


class GroupSystem:
    """An abelian group system ``(F_p^k; G_1, ..., G_n)`` over named variables."""

    def __init__(self, p: int, k: int, subgroups: dict[str, Subspace]) -> None:
        if p < 2:
            raise ReproError("p must be a prime >= 2")
        self.p = p
        self.k = k
        self.subgroups = dict(subgroups)
        for name, subspace in subgroups.items():
            if (subspace.p, subspace.k) != (p, k):
                raise ReproError(f"subgroup {name} lives in the wrong space")

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(sorted(self.subgroups))

    def group_order(self) -> int:
        return self.p**self.k

    def subgroup_of(self, subset: Iterable[str]) -> Subspace:
        """``G_S = ∩_{i∈S} G_i`` (``G_∅ = G``)."""
        result = Subspace.full(self.p, self.k)
        for name in subset:
            result = result.intersect(self.subgroups[name])
        return result

    # -- Definition 4.2: the database ---------------------------------------------------

    def relation(self, subset: Iterable[str], name: str | None = None) -> Relation:
        """``R_F = {(g·G_i)_{i∈F} : g ∈ G}`` with canonical coset values."""
        attrs = tuple(sorted(frozenset(subset)))
        rows = set()
        for g in product(range(self.p), repeat=self.k):
            rows.add(
                tuple(self.subgroups[a].coset_representative(g) for a in attrs)
            )
        return Relation(name or f"R_{''.join(attrs)}", attrs, rows)

    def database(self, edges: Iterable[Iterable[str]]) -> Database:
        """One relation per hyperedge (named ``R_<attrs>``, deduplicated)."""
        db = Database()
        seen: set[frozenset] = set()
        for edge in edges:
            key = frozenset(edge)
            if key in seen:
                continue
            seen.add(key)
            db.add(self.relation(key))
        return db

    # -- Lemma 4.3 and the entropy profile ------------------------------------------------

    def degree(self, y: Iterable[str], z: Iterable[str]) -> int:
        """``deg_{R_Y}(Y | a_Z) = |G_Z| / |G_Y|`` — exact, by Lemma 4.3."""
        g_z = self.subgroup_of(z)
        g_y = self.subgroup_of(y)
        return g_z.order() // g_y.order()

    def entropy(self) -> SetFunction:
        """``h(A_S) = (k − dim G_S) · log2 p`` — the system's entropic function."""
        log_p = log2_fraction(self.p)

        def h(subset: frozenset) -> Fraction:
            return (self.k - self.subgroup_of(subset).dimension) * log_p

        return SetFunction.from_callable(self.variables, h)


def model_size_lower_bound(
    system: GroupSystem, targets: Sequence[frozenset]
) -> Fraction:
    """The counting lower bound on ``|P(D)|`` from the Lemma 4.4 proof.

    Every tuple of the body join (= ``R_[n]``, size ``|G|/|G_[n]|``) must be
    covered by some target tuple, and a ``B``-tuple covers exactly
    ``|G_B|/|G_[n]|`` of them, hence

        max_B |T_B|  >=  |Q| / Σ_B (|G_B| / |G_[n]|).
    """
    full = frozenset(system.variables)
    g_full = system.subgroup_of(full).order()
    body = Fraction(system.group_order(), g_full)
    coverage = sum(
        Fraction(system.subgroup_of(b).order(), g_full) for b in targets
    )
    return body / coverage
