"""Query and instance families used across the paper.

* :func:`cycle_query` — the ``n``-cycle CQ (Examples 1.2, 1.10);
* :func:`path_rule` — the 3-path disjunctive rule of Example 1.4;
* :func:`four_cycle_boolean` — the "is there a 4-cycle?" query;
* :func:`bipartite_cycle` — Example 7.4's hypergraph: ``2k`` independent sets
  of ``m`` vertices, consecutive sets joined completely (unbounded fhtw/subw
  gap);
* :func:`zhang_yeung_query` / :func:`zhang_yeung_constraints` — the Theorem
  1.3 query (Eq. 49);
* :func:`lemma_4_5_rule` / :func:`lemma_4_5_constraints` — the 15-target
  disjunctive rule (Eq. 65) with uniform cardinality bounds;
* :func:`random_database` — uniform random binary relations for soak tests.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.constraints import (
    ConstraintSet,
    cardinality,
    functional_dependency,
)
from repro.core.hypergraph import Hypergraph
from repro.datalog.atoms import Atom
from repro.exceptions import QueryError
from repro.datalog.conjunctive import ConjunctiveQuery
from repro.datalog.rule import DisjunctiveRule
from repro.relational.database import Database
from repro.relational.relation import Relation

from itertools import product as _product

__all__ = [
    "loomis_whitney_query",
    "loomis_whitney_instance",
    "cycle_query",
    "cycle_edges",
    "path_rule",
    "four_cycle_boolean",
    "bipartite_cycle",
    "zhang_yeung_query",
    "lemma_4_5_rule",
    "lemma_4_5_constraints",
    "random_database",
    "skew_triangle",
    "triangle_query",
    "agm_tight_triangle",
]


def cycle_edges(length: int) -> list[tuple[str, str]]:
    """Edges of the ``length``-cycle over ``A1 ... A<length>``."""
    return [
        (f"A{i + 1}", f"A{(i + 1) % length + 1}") for i in range(length)
    ]


def cycle_query(length: int, boolean: bool = False) -> ConjunctiveQuery:
    """The ``length``-cycle conjunctive query (full by default)."""
    atoms = tuple(
        Atom(f"R{i + 1}{(i + 1) % length + 1}", edge)
        for i, edge in enumerate(cycle_edges(length))
    )
    if boolean:
        return ConjunctiveQuery.boolean(atoms, name=f"C{length}")
    return ConjunctiveQuery.full(atoms, name=f"C{length}")


def four_cycle_boolean() -> ConjunctiveQuery:
    """Example 1.10: does the graph contain a 4-cycle?"""
    return cycle_query(4, boolean=True)


def triangle_query(boolean: bool = False) -> ConjunctiveQuery:
    """The triangle query (the classic WCOJ separator)."""
    atoms = (
        Atom("R", ("A", "B")),
        Atom("S", ("B", "C")),
        Atom("T", ("A", "C")),
    )
    if boolean:
        return ConjunctiveQuery.boolean(atoms, name="triangle")
    return ConjunctiveQuery.full(atoms, name="triangle")


def skew_triangle(m: int) -> Database:
    """The skew triangle instance separating binary plans from WCOJ [43].

    Each relation is a "plus sign" ``{0}×[m] ∪ [m]×{0}`` of ~2m tuples; the
    triangle output is Θ(m), but the join of *any two* relations already has
    Θ(m²) tuples, so every binary join plan is quadratic while Generic Join
    stays near-linear.
    """
    plus = {(0, j) for j in range(m)} | {(i, 0) for i in range(m)}
    return Database(
        [
            Relation.from_pairs("R", "A", "B", plus),
            Relation.from_pairs("S", "B", "C", plus),
            Relation.from_pairs("T", "A", "C", plus),
        ]
    )


def agm_tight_triangle(n: int) -> Database:
    """The AGM-tight triangle instance: three K×K bicliques (K = √N)."""
    import math

    k = max(1, int(math.isqrt(n)))
    grid = [(i, j) for i in range(k) for j in range(k)]
    return Database(
        [
            Relation.from_pairs("R", "A", "B", grid),
            Relation.from_pairs("S", "B", "C", grid),
            Relation.from_pairs("T", "A", "C", grid),
        ]
    )


def path_rule() -> DisjunctiveRule:
    """Example 1.4: ``T123 ∨ T234 <- R12, R23, R34``."""
    return DisjunctiveRule(
        (frozenset(("A1", "A2", "A3")), frozenset(("A2", "A3", "A4"))),
        (
            Atom("R12", ("A1", "A2")),
            Atom("R23", ("A2", "A3")),
            Atom("R34", ("A3", "A4")),
        ),
        name="P_ex14",
    )


def bipartite_cycle(k: int, m: int) -> Hypergraph:
    """Example 7.4: ``2k`` independent sets of size ``m`` in a cycle of
    complete bipartite links.  ``fhtw >= 2m`` while ``subw <= m(2 − 1/k)``."""
    groups = [
        [f"V{g}_{i}" for i in range(m)] for g in range(2 * k)
    ]
    edges = []
    for g in range(2 * k):
        nxt = (g + 1) % (2 * k)
        for a in groups[g]:
            for b in groups[nxt]:
                edges.append((a, b))
    return Hypergraph.from_edges(edges)


def zhang_yeung_query(n: int) -> tuple[ConjunctiveQuery, ConstraintSet]:
    """Theorem 1.3's query (Eq. 49) with its constraints, parameterized by N.

    Cardinalities ``N³`` on the five binary atoms, ``N²`` on W(C), and the
    six keys of K: AB, AXY, BXY, AC, XC, YC (each an FD to all of ABXYC).
    """
    full = ("A", "B", "C", "X", "Y")
    atoms = (
        Atom("K", ("A", "B", "X", "Y", "C")),
        Atom("R", ("X", "Y")),
        Atom("S", ("A", "X")),
        Atom("T", ("A", "Y")),
        Atom("U", ("B", "X")),
        Atom("V", ("B", "Y")),
        Atom("W", ("C",)),
    )
    query = ConjunctiveQuery.full(atoms, name="ZY")
    constraints = ConstraintSet(
        [
            cardinality(("X", "Y"), n**3),
            cardinality(("A", "X"), n**3),
            cardinality(("A", "Y"), n**3),
            cardinality(("B", "X"), n**3),
            cardinality(("B", "Y"), n**3),
            cardinality(("C",), n**2),
            functional_dependency(("A", "B"), full),
            functional_dependency(("A", "X", "Y"), full),
            functional_dependency(("B", "X", "Y"), full),
            functional_dependency(("A", "C"), full),
            functional_dependency(("X", "C"), full),
            functional_dependency(("Y", "C"), full),
        ]
    )
    return query, constraints


def lemma_4_5_rule() -> DisjunctiveRule:
    """The 15-target disjunctive rule of Eq. (65) over 8 variables."""
    f = frozenset
    targets = (
        f(("A", "B")),
        f(("A", "X", "Y")),
        f(("B", "X", "Y")),
        f(("Ap", "Bp")),
        f(("Ap", "Xp", "Yp")),
        f(("Bp", "Xp", "Yp")),
        f(("Ap", "A")),
        f(("Xp", "A")),
        f(("Yp", "A")),
        f(("Ap", "X")),
        f(("Xp", "X")),
        f(("Yp", "X")),
        f(("Ap", "Y")),
        f(("Xp", "Y")),
        f(("Yp", "Y")),
    )
    body = (
        Atom("R1", ("X", "Y")),
        Atom("R2", ("A", "X")),
        Atom("R3", ("A", "Y")),
        Atom("R4", ("B", "X")),
        Atom("R5", ("B", "Y")),
        Atom("R6", ("Xp", "Yp")),
        Atom("R7", ("Ap", "Xp")),
        Atom("R8", ("Ap", "Yp")),
        Atom("R9", ("Bp", "Xp")),
        Atom("R10", ("Bp", "Yp")),
    )
    return DisjunctiveRule(targets, body, name="P_eq65")


def lemma_4_5_constraints(n: int) -> ConstraintSet:
    """Uniform cardinality bounds ``|R_i| <= N³`` for the Eq. (65) rule."""
    rule = lemma_4_5_rule()
    return ConstraintSet(
        cardinality(atom.variables, n**3) for atom in rule.body
    )


def random_database(
    schema: Sequence[tuple[str, tuple[str, ...]]],
    size: int,
    domain: int,
    seed: int = 0,
) -> Database:
    """Uniform random relations: ``size`` distinct tuples over ``[domain]``."""
    rng = random.Random(seed)
    relations = []
    for name, attrs in schema:
        rows: set[tuple] = set()
        capacity = domain ** len(attrs)
        target = min(size, capacity)
        while len(rows) < target:
            rows.add(tuple(rng.randrange(domain) for _ in attrs))
        relations.append(Relation(name, attrs, rows))
    return Database(relations)


def loomis_whitney_query(n: int, boolean: bool = False) -> ConjunctiveQuery:
    """The Loomis–Whitney query LW(n): ``n`` atoms of arity ``n − 1``.

    ``Q(A_1..A_n) <- /\\_i R_i(A_{[n] − {i}})`` — the classic family whose
    AGM bound ``N^{n/(n−1)}`` (every λ_F = 1/(n−1)) approaches linear as
    ``n`` grows; LW(3) is the triangle query up to renaming.
    """
    if n < 3:
        raise QueryError(f"Loomis-Whitney needs n >= 3, got {n}")
    variables = tuple(f"A{i}" for i in range(1, n + 1))
    atoms = tuple(
        Atom(f"R{i + 1}", tuple(v for j, v in enumerate(variables) if j != i))
        for i in range(n)
    )
    if boolean:
        return ConjunctiveQuery.boolean(atoms, name=f"LW{n}")
    return ConjunctiveQuery.full(atoms, name=f"LW{n}")


def loomis_whitney_instance(n: int, k: int) -> Database:
    """The AGM-tight LW(n) instance: every relation is the full grid ``[k]^{n−1}``.

    Relation sizes are ``N = k^{n−1}`` and the output is ``[k]^n`` — exactly
    ``N^{n/(n−1)}``, the AGM bound.
    """
    query = loomis_whitney_query(n)
    relations = []
    for atom in query.body:
        arity = len(atom.variables)
        rows = list(_product(range(k), repeat=arity))
        relations.append(Relation(atom.name, atom.variables, rows))
    return Database(relations)
