"""The worst-case instances of Appendix A and Example 1.10.

Three tightness instances for the 4-cycle query (Example 1.2) plus the
Example 1.10 instance on which every single tree decomposition pays ``N²``:

* ``instance_a``  — bound (a) ``|Q| <= N²`` is tight:
  ``R12 = R34 = [N]×[1]``, ``R23 = R41 = [1]×[N]``;
* ``instance_c``  — bound (c) ``|Q| <= N^{3/2}`` under the FDs
  ``A1 -> A2, A2 -> A1`` is asymptotically tight (``K = ⌊√N⌋``):
  ``R12 = {(i,i)}``, ``R23 = R34 = R41 = [K]×[K]``;
* ``instance_b``  — bound (b) ``|Q| <= D·N^{3/2}`` under degree bounds
  ``deg(A1A2|A1), deg(A1A2|A2) <= D`` is tight:
  like (c) but ``R12 = {(i,j) : (j−i) mod K < D}``.
"""

from __future__ import annotations

import math

from repro.core.constraints import (
    ConstraintSet,
    DegreeConstraint,
    cardinality,
    functional_dependency,
)
from repro.relational.database import Database
from repro.relational.relation import Relation

__all__ = [
    "four_cycle_edges",
    "instance_a",
    "instance_a_transposed",
    "instance_b",
    "instance_b_fullsize",
    "instance_c",
    "constraints_a",
    "constraints_b",
    "constraints_c",
]

#: The 4-cycle query's edges, in the paper's atom order.
four_cycle_edges = (
    ("A1", "A2"),
    ("A2", "A3"),
    ("A3", "A4"),
    ("A4", "A1"),
)


def _cycle_database(r12, r23, r34, r41) -> Database:
    return Database(
        [
            Relation.from_pairs("R12", "A1", "A2", r12),
            Relation.from_pairs("R23", "A2", "A3", r23),
            Relation.from_pairs("R34", "A3", "A4", r34),
            Relation.from_pairs("R41", "A4", "A1", r41),
        ]
    )


def instance_a(n: int) -> Database:
    """Bound (a) tight: output is exactly ``N²`` (all (i, 0, j, 0)).

    This is the Example 1.10 instance that forces the *first* tree
    decomposition (bags A1A2A3 / A1A3A4) to materialize ``N²`` tuples.
    """
    column = [(i, 0) for i in range(n)]
    row = [(0, i) for i in range(n)]
    return _cycle_database(column, row, column, row)


def instance_a_transposed(n: int) -> Database:
    """The mirror of :func:`instance_a`, adversarial for the *second*
    decomposition (bags A1A2A4 / A2A3A4) — "a similar worst-case instance
    exists for the tree on the right" (Example 1.10)."""
    column = [(i, 0) for i in range(n)]
    row = [(0, i) for i in range(n)]
    return _cycle_database(row, column, row, column)


def constraints_a(n: int) -> ConstraintSet:
    """Cardinality constraints ``|R| <= N`` on the four atoms."""
    return ConstraintSet(cardinality(edge, n) for edge in four_cycle_edges)


def instance_c(n: int) -> Database:
    """Bound (c) asymptotically tight: output is ``K³ ≈ N^{3/2}``."""
    k = int(math.isqrt(n))
    grid = [(i, j) for i in range(k) for j in range(k)]
    diagonal = [(i, i) for i in range(k)]
    return _cycle_database(diagonal, grid, grid, grid)


def constraints_c(n: int) -> ConstraintSet:
    """Cardinalities plus the FDs ``A1 -> A2`` and ``A2 -> A1``."""
    return constraints_a(n).with_constraints(
        [
            functional_dependency(("A1",), ("A2",)),
            functional_dependency(("A2",), ("A1",)),
        ]
    )


def instance_b(n: int, d: int) -> Database:
    """Bound (b) tight: like (c) but R12 is a width-``d`` circulant band."""
    k = int(math.isqrt(n))
    if d > k:
        raise ValueError(f"need D <= sqrt(N), got D={d} > K={k}")
    grid = [(i, j) for i in range(k) for j in range(k)]
    band = [(i, j) for i in range(k) for j in range(k) if (j - i) % k < d]
    return _cycle_database(band, grid, grid, grid)


def instance_b_fullsize(n: int, d: int) -> Database:
    """A degree-bounded ``R12`` whose *cardinality* is still ``N``.

    Unlike :func:`instance_b` (where ``|R12| = K*D`` already tells the
    cardinality-only bound everything), here ``R12`` is a width-``d``
    circulant band on ``[N/D]**2``: ``|R12| = N`` with both degrees ``<= D``.
    The degree constraints of Example 1.2(b) are then strictly stronger
    information than the cardinalities -- the bound drops from ``N**2``
    to ``D*N^{3/2}``.
    """
    if n % d:
        raise ValueError(f"need D | N, got N={n}, D={d}")
    m = n // d
    k = int(math.isqrt(n))
    band = [(i, j) for i in range(m) for j in range(m) if (j - i) % m < d]
    grid = [(i, j) for i in range(k) for j in range(k)]
    return _cycle_database(band, grid, grid, grid)


def constraints_b(n: int, d: int) -> ConstraintSet:
    """Cardinalities plus ``deg(A1A2|A1) <= D`` and ``deg(A1A2|A2) <= D``."""
    return constraints_a(n).with_constraints(
        [
            DegreeConstraint.make(("A1",), ("A1", "A2"), d),
            DegreeConstraint.make(("A2",), ("A1", "A2"), d),
        ]
    )
