"""Instance generators: Appendix A worst cases, group systems, query families.

Supporting module for every layer (see ``docs/architecture.md``): the
paper's worst-case constructions and parameterized query/database
families the tests and benchmarks draw from.  Generators take explicit
seeds/sizes, so generated instances are reproducible bit for bit.
"""

from repro.instances.appendix_a import (
    constraints_a,
    constraints_b,
    constraints_c,
    four_cycle_edges,
    instance_a,
    instance_a_transposed,
    instance_b,
    instance_b_fullsize,
    instance_c,
)
from repro.instances.families import (
    loomis_whitney_instance,
    loomis_whitney_query,
    agm_tight_triangle,
    bipartite_cycle,
    cycle_edges,
    cycle_query,
    four_cycle_boolean,
    lemma_4_5_constraints,
    lemma_4_5_rule,
    path_rule,
    random_database,
    skew_triangle,
    triangle_query,
    zhang_yeung_query,
)
from repro.instances.group_system import (
    GroupSystem,
    Subspace,
    model_size_lower_bound,
)

__all__ = [
    "loomis_whitney_instance",
    "loomis_whitney_query",
    "GroupSystem",
    "Subspace",
    "agm_tight_triangle",
    "bipartite_cycle",
    "constraints_a",
    "constraints_b",
    "constraints_c",
    "cycle_edges",
    "cycle_query",
    "four_cycle_boolean",
    "four_cycle_edges",
    "instance_a",
    "instance_a_transposed",
    "instance_b",
    "instance_b_fullsize",
    "instance_c",
    "lemma_4_5_constraints",
    "lemma_4_5_rule",
    "model_size_lower_bound",
    "path_rule",
    "random_database",
    "skew_triangle",
    "triangle_query",
    "zhang_yeung_query",
]
