"""Degree-aware width parameters (Definition 7.6).

    da-fhtw(Q)  = Minimaxwidth_{Γn ∩ H_DC}(Q)
    da-subw(Q)  = Maximinwidth_{Γn ∩ H_DC}(Q)
    eda-*(Q)    — the entropic versions, approximated from above by adding
                  Zhang–Yeung rows to the polymatroid LP (the exact values
                  are not computable; see §8 and DESIGN.md).

Unlike the classical widths these are *not* normalized: they live in log₂
units and carry the actual degree-constraint bounds (an FD contributes 0, a
size-N relation contributes log₂ N), per the discussion below Def. 7.6.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from repro.core.constraints import ConstraintSet, DegreeConstraint
from repro.bounds.polymatroid import LogConstraint
from repro.core.hypergraph import Hypergraph
from repro.decompositions.enumeration import tree_decompositions
from repro.decompositions.tree_decomposition import TreeDecomposition
from repro.widths.framework import maximin_width, minimax_width

__all__ = [
    "degree_aware_fhtw",
    "degree_aware_subw",
    "entropic_degree_aware_fhtw",
    "entropic_degree_aware_subw",
]


def _log_rows(
    constraints: ConstraintSet | Iterable[DegreeConstraint] | Iterable[LogConstraint],
) -> list[LogConstraint]:
    rows: list[LogConstraint] = []
    for constraint in constraints:
        if isinstance(constraint, LogConstraint):
            rows.append(constraint)
        else:
            rows.append(
                LogConstraint(
                    constraint.x_key,
                    constraint.y_key,
                    constraint.log_bound,
                    origin=constraint,
                )
            )
    return rows


def _tds(
    hypergraph: Hypergraph, decompositions: Sequence[TreeDecomposition] | None
) -> Sequence[TreeDecomposition]:
    if decompositions is not None:
        return decompositions
    return tree_decompositions(hypergraph)


def degree_aware_fhtw(
    hypergraph: Hypergraph,
    constraints,
    decompositions: Sequence[TreeDecomposition] | None = None,
    backend: str = "exact",
) -> Fraction:
    """``da-fhtw(Q)`` (Eq. 95), in log₂ units."""
    return minimax_width(
        hypergraph,
        _tds(hypergraph, decompositions),
        _log_rows(constraints),
        function_class="polymatroid",
        backend=backend,
    )


def degree_aware_subw(
    hypergraph: Hypergraph,
    constraints,
    decompositions: Sequence[TreeDecomposition] | None = None,
    backend: str = "exact",
) -> Fraction:
    """``da-subw(Q)`` (Eq. 96), in log₂ units."""
    return maximin_width(
        hypergraph,
        _tds(hypergraph, decompositions),
        _log_rows(constraints),
        function_class="polymatroid",
        backend=backend,
    )


def entropic_degree_aware_fhtw(
    hypergraph: Hypergraph,
    constraints,
    decompositions: Sequence[TreeDecomposition] | None = None,
    backend: str = "exact",
) -> Fraction:
    """ZY-tightened upper bound on ``eda-fhtw(Q)`` (Eq. 97)."""
    return minimax_width(
        hypergraph,
        _tds(hypergraph, decompositions),
        _log_rows(constraints),
        function_class="polymatroid+zy",
        backend=backend,
    )


def entropic_degree_aware_subw(
    hypergraph: Hypergraph,
    constraints,
    decompositions: Sequence[TreeDecomposition] | None = None,
    backend: str = "exact",
) -> Fraction:
    """ZY-tightened upper bound on ``eda-subw(Q)`` (Eq. 98)."""
    return maximin_width(
        hypergraph,
        _tds(hypergraph, decompositions),
        _log_rows(constraints),
        function_class="polymatroid+zy",
        backend=backend,
    )
