"""Classical width parameters: tw, ghtw, fhtw (Definition 2.7).

All three are *g-widths* (Adler, Def. 2.6) for different bag-cost functions
``g`` on the restricted hypergraph ``H_B``:

    treewidth                 g = s(B)  = |B| − 1
    generalized hypertree w.  g = ρ(B)  — integral edge cover number of H_B
    fractional hypertree w.   g = ρ*(B) — fractional edge cover number of H_B

Each is minimized over the canonical decomposition set ``TD(H)``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.bounds.edge_covers import (
    fractional_edge_cover_number,
    integral_edge_cover_log_bound,
)
from repro.core.hypergraph import Hypergraph
from repro.decompositions.enumeration import tree_decompositions
from repro.decompositions.tree_decomposition import TreeDecomposition

__all__ = ["treewidth", "generalized_hypertree_width", "fractional_hypertree_width"]


def _decompositions(
    hypergraph: Hypergraph,
    decompositions: Sequence[TreeDecomposition] | None,
) -> Sequence[TreeDecomposition]:
    if decompositions is not None:
        return decompositions
    return tree_decompositions(hypergraph)


def treewidth(
    hypergraph: Hypergraph,
    decompositions: Sequence[TreeDecomposition] | None = None,
) -> int:
    """``tw(H)``: the s-width, ``min_TD max_bag |bag| − 1``."""
    return min(
        td.max_bag_size() for td in _decompositions(hypergraph, decompositions)
    ) - 1


def generalized_hypertree_width(
    hypergraph: Hypergraph,
    decompositions: Sequence[TreeDecomposition] | None = None,
) -> Fraction:
    """``ghtw(H)``: the ρ-width (integral edge cover per restricted bag)."""
    best: Fraction | None = None
    vm = hypergraph.varmap
    cache: dict[int, Fraction] = {}
    for td in _decompositions(hypergraph, decompositions):
        worst = Fraction(0)
        for bag in td.bags:
            mask = vm.mask_of(bag)
            if mask not in cache:
                cache[mask] = integral_edge_cover_log_bound(
                    hypergraph.restrict_mask(mask), sizes=None
                )
            if cache[mask] > worst:
                worst = cache[mask]
        if best is None or worst < best:
            best = worst
    return best


def fractional_hypertree_width(
    hypergraph: Hypergraph,
    decompositions: Sequence[TreeDecomposition] | None = None,
    backend: str = "exact",
) -> Fraction:
    """``fhtw(H)``: the ρ*-width (fractional edge cover per restricted bag)."""
    best: Fraction | None = None
    vm = hypergraph.varmap
    cache: dict[int, Fraction] = {}
    for td in _decompositions(hypergraph, decompositions):
        worst = Fraction(0)
        for bag in td.bags:
            mask = vm.mask_of(bag)
            if mask not in cache:
                cache[mask] = fractional_edge_cover_number(
                    hypergraph.restrict_mask(mask), backend=backend
                )
            if cache[mask] > worst:
                worst = cache[mask]
        if best is None or worst < best:
            best = worst
    return best
