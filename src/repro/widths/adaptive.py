"""Adaptive width parameters: subw and adw (Definition 2.8, Marx [39, 40]).

    adw(H)  = max_{h ∈ ED ∩ Mn} min_TD max_bag h(bag)
    subw(H) = max_{h ∈ ED ∩ Γn} min_TD max_bag h(bag)

Both are maximin widths over *edge-dominated* function classes; the maximin
is computed through Lemma 7.12 selector images (one LP per image).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.bounds.polymatroid import edge_dominated_constraints
from repro.core.hypergraph import Hypergraph
from repro.decompositions.enumeration import tree_decompositions
from repro.decompositions.tree_decomposition import TreeDecomposition
from repro.widths.framework import maximin_width

__all__ = ["submodular_width", "adaptive_width"]


def submodular_width(
    hypergraph: Hypergraph,
    decompositions: Sequence[TreeDecomposition] | None = None,
    backend: str = "exact",
) -> Fraction:
    """``subw(H)`` (Eq. 37), exactly, via one maximin LP per selector image."""
    if decompositions is None:
        decompositions = tree_decompositions(hypergraph)
    return maximin_width(
        hypergraph,
        decompositions,
        edge_dominated_constraints(hypergraph),
        function_class="polymatroid",
        backend=backend,
    )


def adaptive_width(
    hypergraph: Hypergraph,
    decompositions: Sequence[TreeDecomposition] | None = None,
    backend: str = "exact",
) -> Fraction:
    """``adw(H)`` (Eq. 36): the modular (fractional-independent-set) variant."""
    if decompositions is None:
        decompositions = tree_decompositions(hypergraph)
    return maximin_width(
        hypergraph,
        decompositions,
        edge_dominated_constraints(hypergraph),
        function_class="modular",
        backend=backend,
    )
