"""Islands of tractability (Figure 4, §2.1.2).

Figure 4 stratifies query classes by which width parameter is bounded:

    bounded treewidth ⊂ bounded (g)htw ⊂ bounded fhtw   -> PTIME
    bounded fhtw ⊂ bounded subw                          -> FPT (Marx [40])
    unbounded subw                                       -> not FPT
                                                            (under ETH)

For a *single* hypergraph the interesting report is the vector of all width
values and which evaluation regime each one certifies; for a *family* of
hypergraphs (a recursively enumerable class in the paper), boundedness is
checked empirically along the family.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Sequence

from repro.core.hypergraph import Hypergraph
from repro.decompositions.enumeration import tree_decompositions
from repro.widths.adaptive import adaptive_width, submodular_width
from repro.widths.classical import (
    fractional_hypertree_width,
    generalized_hypertree_width,
    treewidth,
)

__all__ = ["WidthProfile", "width_profile", "family_growth"]


@dataclass(frozen=True)
class WidthProfile:
    """All Figure 4 width parameters of one hypergraph."""

    treewidth: int
    ghtw: Fraction
    fhtw: Fraction
    subw: Fraction
    adw: Fraction

    def as_dict(self) -> dict[str, Fraction]:
        return {
            "tw": Fraction(self.treewidth),
            "ghtw": Fraction(self.ghtw),
            "fhtw": self.fhtw,
            "subw": self.subw,
            "adw": self.adw,
        }

    def hierarchy_holds(self) -> bool:
        """Corollary 7.5: ``1 + tw >= ghtw >= fhtw >= subw >= adw``."""
        return (
            Fraction(self.treewidth + 1)
            >= Fraction(self.ghtw)
            >= self.fhtw
            >= self.subw
            >= self.adw
        )

    def evaluation_regime(self, budget: Fraction) -> str:
        """The cheapest Figure 4 evaluation strategy within a width budget.

        Args:
            budget: the exponent a user is willing to pay per bag.

        Returns:
            one of ``"acyclic"``, ``"tree-decomposition"``, ``"fractional"``,
            ``"adaptive"``, or ``"intractable"``.
        """
        if self.treewidth <= 1:
            return "acyclic"
        if Fraction(self.treewidth + 1) <= budget:
            return "tree-decomposition"
        if self.fhtw <= budget:
            return "fractional"
        if self.subw <= budget:
            return "adaptive"
        return "intractable"


def width_profile(
    hypergraph: Hypergraph,
    decompositions=None,
    backend: str = "exact",
) -> WidthProfile:
    """Compute every Figure 4 width parameter of a hypergraph."""
    if decompositions is None:
        decompositions = tree_decompositions(hypergraph)
    return WidthProfile(
        treewidth=treewidth(hypergraph, decompositions),
        ghtw=Fraction(generalized_hypertree_width(hypergraph, decompositions)),
        fhtw=fractional_hypertree_width(hypergraph, decompositions, backend=backend),
        subw=submodular_width(hypergraph, decompositions, backend=backend),
        adw=adaptive_width(hypergraph, decompositions, backend=backend),
    )


def family_growth(
    family: Callable[[int], Hypergraph],
    parameters: Sequence[int],
    width: str = "subw",
    backend: str = "scipy",
) -> list[tuple[int, Fraction]]:
    """Trace one width parameter along a hypergraph family.

    This is the empirical version of the paper's boundedness questions: a
    class sits inside a Figure 4 island iff the traced width stays flat.

    Args:
        family: parameter -> hypergraph (e.g. ``lambda m: bipartite_cycle(2, m)``).
        parameters: the parameter values to trace.
        width: one of ``"tw" | "ghtw" | "fhtw" | "subw" | "adw"``.
        backend: LP backend for the larger members.

    Returns:
        ``[(parameter, width value)]`` pairs.
    """
    out: list[tuple[int, Fraction]] = []
    for parameter in parameters:
        hypergraph = family(parameter)
        profile = width_profile(hypergraph, backend=backend)
        out.append((parameter, profile.as_dict()[width]))
    return out
