"""The minimax/maximin width framework (Definitions 2.6, 7.1; Prop. 7.3).

Every width parameter in the paper is one of two shapes over a class ``F`` of
set functions and a set of candidate tree decompositions:

    Minimaxwidth_F(Q) = min_{(T,χ)} max_t  max_{h∈F} h(χ(t))
    Maximinwidth_F(Q) = max_{h∈F} min_{(T,χ)} max_t  h(χ(t))
                      = max over selector images B of  max_{h∈F} min_{B∈B} h(B)
                                                        (Lemma 7.12)

with ``F`` built from a function class (Mn / Γn / SAn / Γn∩ZY) intersected
with constraint sets (VD / ED / H_CC / H_DC).  The two generic functions here
take the function class + log-constraints and reuse the LP machinery of
:mod:`repro.bounds.polymatroid`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from repro.bounds.polymatroid import LogConstraint, PolymatroidProgram
from repro.core.hypergraph import Hypergraph
from repro.decompositions.selectors import selector_images
from repro.decompositions.tree_decomposition import TreeDecomposition

__all__ = ["minimax_width", "maximin_width", "WidthReport"]


def minimax_width(
    hypergraph: Hypergraph,
    decompositions: Sequence[TreeDecomposition],
    log_constraints: Iterable[LogConstraint],
    function_class: str = "polymatroid",
    backend: str = "exact",
) -> Fraction:
    """``min_TD max_bag max_{h∈F∩H} h(bag)`` — the tree-decomposition-first cost.

    Bag LPs are cached per distinct bag across decompositions.
    """
    program = PolymatroidProgram(
        hypergraph.vertices, list(log_constraints), function_class
    )
    vm = hypergraph.varmap
    cache: dict[int, Fraction] = {}

    def bag_cost(bag: frozenset) -> Fraction:
        mask = vm.mask_of(bag)
        if mask not in cache:
            cache[mask] = program.maximize(bag, backend=backend).log_value
        return cache[mask]

    return min(
        max(bag_cost(bag) for bag in decomposition.bags)
        for decomposition in decompositions
    )


def maximin_width(
    hypergraph: Hypergraph,
    decompositions: Sequence[TreeDecomposition],
    log_constraints: Iterable[LogConstraint],
    function_class: str = "polymatroid",
    backend: str = "exact",
) -> Fraction:
    """``max_{h∈F∩H} min_TD max_bag h(bag)`` via Lemma 7.12 selector images.

    One maximin LP per ``⊆``-minimal selector image; the width is the max
    (dropping bags from an image can only raise its inner min, so the max
    over minimal images equals the max over all images).
    """
    program = PolymatroidProgram(
        hypergraph.vertices, list(log_constraints), function_class
    )
    best = Fraction(0)
    for image in selector_images(decompositions):
        value = program.maximize(sorted(image, key=sorted), backend=backend).log_value
        if value > best:
            best = value
    return best


class WidthReport(dict):
    """A labelled collection of width values (used by the Figure 9 bench)."""

    def as_rows(self) -> list[tuple[str, Fraction]]:
        return sorted(self.items())

    def __str__(self) -> str:
        return "\n".join(f"{name:>14}: {value}" for name, value in self.as_rows())
