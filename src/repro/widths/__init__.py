"""Width parameters: classical, adaptive, and degree-aware (§2.1.3, §7).

Architecture layer 3 (see ``docs/architecture.md``): tw / ghtw / fhtw /
subw / adw and the degree-aware variants, each with a witnessing
decomposition.  Contract: width values are exact ``Fraction``\\s computed
over mask-indexed cover enumerations with per-mask caches.
"""

from repro.widths.adaptive import adaptive_width, submodular_width
from repro.widths.classical import (
    fractional_hypertree_width,
    generalized_hypertree_width,
    treewidth,
)
from repro.widths.degree_aware import (
    degree_aware_fhtw,
    degree_aware_subw,
    entropic_degree_aware_fhtw,
    entropic_degree_aware_subw,
)
from repro.widths.framework import WidthReport, maximin_width, minimax_width
from repro.widths.tractability import WidthProfile, family_growth, width_profile

__all__ = [
    "WidthProfile",
    "WidthReport",
    "adaptive_width",
    "degree_aware_fhtw",
    "degree_aware_subw",
    "entropic_degree_aware_fhtw",
    "entropic_degree_aware_subw",
    "fractional_hypertree_width",
    "generalized_hypertree_width",
    "maximin_width",
    "minimax_width",
    "submodular_width",
    "treewidth",
    "family_growth",
    "width_profile",
]
