"""Width parameters restricted to free-connex decompositions (§8).

For proper CQs and FAQ-SS queries the paper's change to Definition 7.1 is
that ``min_{(T,χ)}`` ranges only over *free-connex* tree decompositions.
These wrappers instantiate the Definition 7.6 widths over that family:

    fc-da-fhtw(Q, F)  = Minimaxwidth over free-connex TDs,
    fc-da-subw(Q, F)  = Maximinwidth over free-connex TDs.

Restricting the min can only increase the widths — the 4-cycle with free
variables ``{A1, A3}`` has fc-da-subw = 2·logN against da-subw = 3/2·logN,
because only one of its two decompositions is free-connex and adaptivity is
lost (the E16 bench reports this).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from repro.core.hypergraph import Hypergraph
from repro.decompositions.tree_decomposition import TreeDecomposition
from repro.exceptions import DecompositionError
from repro.faq.freeconnex import free_connex_decompositions, is_free_connex
from repro.widths.degree_aware import degree_aware_fhtw, degree_aware_subw

__all__ = ["free_connex_dafhtw", "free_connex_dasubw"]


def _connex_tds(
    hypergraph: Hypergraph,
    free: Iterable[str],
    decompositions: Sequence[TreeDecomposition] | None,
) -> list[TreeDecomposition]:
    free = tuple(free)
    if decompositions is None:
        candidates = free_connex_decompositions(hypergraph, free)
    else:
        candidates = [td for td in decompositions if is_free_connex(td, free)]
    if not candidates:
        raise DecompositionError(
            f"no free-connex decomposition for free variables {sorted(free)}"
        )
    return candidates


def free_connex_dafhtw(
    hypergraph: Hypergraph,
    free: Iterable[str],
    constraints,
    decompositions: Sequence[TreeDecomposition] | None = None,
    backend: str = "exact",
) -> Fraction:
    """``da-fhtw`` over free-connex decompositions only (§8), in log₂ units."""
    return degree_aware_fhtw(
        hypergraph,
        constraints,
        decompositions=_connex_tds(hypergraph, free, decompositions),
        backend=backend,
    )


def free_connex_dasubw(
    hypergraph: Hypergraph,
    free: Iterable[str],
    constraints,
    decompositions: Sequence[TreeDecomposition] | None = None,
    backend: str = "exact",
) -> Fraction:
    """``da-subw`` over free-connex decompositions only (§8), in log₂ units."""
    return degree_aware_subw(
        hypergraph,
        constraints,
        decompositions=_connex_tds(hypergraph, free, decompositions),
        backend=backend,
    )
