"""FAQ evaluation over free-connex tree decompositions (§8).

The §8 recipe for proper conjunctive and FAQ-SS queries: pick a *free-connex*
tree decomposition, aggregate bound variables bottom-up below the connex
core (junction-tree message passing — each ⊕ happens at the top of the
variable's connected region, each ⊗ inside a bag), then evaluate the core —
an acyclic query mentioning only free variables — without any aggregation.
The per-node intermediates stay within the decomposition's bag sizes, which
is exactly the da-fhtw-over-free-connex-decompositions runtime the paper
states for FAQ-SS queries (end of §8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.decompositions.tree_decomposition import TreeDecomposition
from repro.exceptions import DecompositionError, QueryError
from repro.faq.annotated import AnnotatedRelation
from repro.faq.freeconnex import connex_core, free_connex_decompositions
from repro.faq.query import FAQQuery
from repro.relational.database import Database

__all__ = ["FaqPlanResult", "faq_decomposition_plan"]


@dataclass
class FaqPlanResult:
    """Output and trace of a decomposition-based FAQ evaluation.

    Attributes:
        result: the annotated output over the free variables.
        decomposition: the free-connex decomposition used.
        core: bag indices of its connex core.
        max_intermediate: largest annotated factor materialized.
        messages: number of junction-tree messages passed.
    """

    result: AnnotatedRelation
    decomposition: TreeDecomposition
    core: frozenset
    max_intermediate: int = 0
    messages: int = 0


def _pick_decomposition(
    query: FAQQuery, decomposition: TreeDecomposition | None
) -> tuple[TreeDecomposition, frozenset]:
    if decomposition is not None:
        core = connex_core(decomposition, query.free)
        if core is None:
            raise DecompositionError(
                f"decomposition {decomposition} is not free-connex for "
                f"free variables {sorted(query.free)}"
            )
        return decomposition, core
    candidates = free_connex_decompositions(query.hypergraph(), query.free)
    if not candidates:
        raise DecompositionError(
            f"no free-connex decomposition found for {query}"
        )
    best = min(candidates, key=lambda td: (td.max_bag_size(), len(td.bags)))
    return best, connex_core(best, query.free)


def faq_decomposition_plan(
    query: FAQQuery,
    database: Database,
    annotations: Mapping[str, Mapping[tuple, object]] | None = None,
    decomposition: TreeDecomposition | None = None,
) -> FaqPlanResult:
    """Evaluate an FAQ-SS query by message passing on a free-connex TD.

    Args:
        query: the FAQ query.
        database: input relations for the body atoms.
        annotations: optional per-relation tuple weights.
        decomposition: a free-connex decomposition to use; the smallest-bag
            candidate from bound-first elimination orders is chosen when
            omitted.

    Returns:
        A :class:`FaqPlanResult`; its ``result`` equals the brute-force
        ``query.evaluate_naive(...)``.

    Raises:
        DecompositionError: if the given (or no discoverable) decomposition
            is free-connex for the query's free variables.
    """
    td, core = _pick_decomposition(query, decomposition)
    bags = td.bags
    parent = td.junction_tree()
    plan = FaqPlanResult(
        result=None,  # type: ignore[arg-type] - set below
        decomposition=td,
        core=core,
    )

    # Re-root so that a core bag (when one exists) is the tree root: the
    # whole core is then an ancestor-closed region (it is connected), and
    # upward messages never cross it.
    root = next(iter(sorted(core))) if core else 0
    parent = _reroot(parent, root)

    # Assign every factor to one bag covering it.
    factors = query.bind(database, annotations)
    assigned: dict[int, list[AnnotatedRelation]] = {i: [] for i in range(len(bags))}
    for factor in factors:
        home = next(
            (i for i, bag in enumerate(bags) if factor.attributes <= bag), None
        )
        if home is None:
            raise QueryError(
                f"decomposition {td} does not cover factor {factor.name}"
            )
        assigned[home].append(factor)

    # Bottom-up message passing.  keep = χ(node) ∩ χ(parent): the running-
    # intersection property guarantees no free variable dies early (its
    # connected region always reaches the core through the parent).
    children: dict[int, list[int]] = {i: [] for i in range(len(bags))}
    for node, p in enumerate(parent):
        if p >= 0:
            children[p].append(node)

    order: list[int] = []

    def visit(node: int) -> None:
        for child in children[node]:
            visit(child)
        order.append(node)

    visit(root)

    inbox: dict[int, list[AnnotatedRelation]] = {i: [] for i in range(len(bags))}
    unit = AnnotatedRelation("1", (), query.semiring, {(): query.semiring.one})
    core_results: list[AnnotatedRelation] = []
    for node in order:
        parts = assigned[node] + inbox[node]
        product = unit
        for part in parts:
            product = product.multiply(part)
            plan.max_intermediate = max(plan.max_intermediate, len(product))
        if node in core or (not core and node == root):
            # Core bags are never aggregated; they join at the end.  The
            # coreless (scalar) case aggregates everything at the root.
            if not core and node == root:
                product = product.marginalize(query.free, name=query.name)
            core_results.append(product)
            continue
        target = bags[parent[node]] if parent[node] >= 0 else frozenset()
        keep = product.attributes & (target | frozenset(query.free))
        message = product.marginalize(keep, name=f"m[{node}->{parent[node]}]")
        plan.max_intermediate = max(plan.max_intermediate, len(message))
        plan.messages += 1
        if parent[node] >= 0:
            inbox[parent[node]].append(message)
        else:  # pragma: no cover - root is always core or scalar-root
            core_results.append(message)

    # Core phase: an acyclic join over free-only bags, no aggregation.
    output = core_results[0]
    for part in core_results[1:]:
        output = output.multiply(part)
        plan.max_intermediate = max(plan.max_intermediate, len(output))
    plan.result = output.marginalize(query.free, name=query.name)
    return plan


def _reroot(parent: list[int], new_root: int) -> list[int]:
    """Reverse the parent pointers along the path from ``new_root`` up."""
    out = list(parent)
    node = new_root
    previous = -1
    while node != -1:
        next_up = out[node]
        out[node] = previous
        previous = node
        node = next_up
    return out
