"""Commutative semirings for FAQ-SS queries (§8; [2], [5]).

A commutative semiring ``(D, ⊕, ⊗, 0, 1)`` supplies the aggregation (⊕) and
combination (⊗) operations of an aggregate query.  The four stock instances
cover the paper's motivating applications:

=============  =======================  ==================================
semiring       (⊕, ⊗)                   query it models
=============  =======================  ==================================
``BOOLEAN``    (or, and)                Boolean conjunctive query
``COUNTING``   (+, ×)                   ``COUNT(*)`` / ``SUM`` aggregates
``FRACTION``   (+, ×) over ``Fraction`` exact rational ``SUM`` aggregates
``MIN_PLUS``   (min, +)                 lightest matching assignment
``MAX_PRODUCT``(max, ×)                 maximum-likelihood inference (MAP)
=============  =======================  ==================================

``COUNTING`` and ``FRACTION`` additionally carry ``subtract`` — their ⊕ is a
group operation — which is what lets :mod:`repro.incremental` maintain FAQ
results under deletes by signed ⊕-folds instead of recomputation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterable

__all__ = [
    "Semiring",
    "BOOLEAN",
    "COUNTING",
    "FRACTION",
    "MIN_PLUS",
    "MAX_PRODUCT",
]


@dataclass(frozen=True)
class Semiring:
    """A commutative semiring ``(D, ⊕, ⊗, 0, 1)``.

    Attributes:
        name: display name.
        zero: the ⊕-identity (also ⊗-annihilating).
        one: the ⊗-identity.
        add: the aggregation ``⊕``.
        mul: the combination ``⊗``.
        idempotent_add: whether ``a ⊕ a = a`` (lets evaluators deduplicate).
        subtract: the inverse of ``⊕`` when the additive monoid is a group
            (``subtract(add(a, b), b) == a``); ``None`` for non-invertible
            ⊕ (min/max/or), where incremental maintenance must recompute
            instead of applying signed deltas.
    """

    name: str
    zero: object
    one: object
    add: Callable[[object, object], object]
    mul: Callable[[object, object], object]
    idempotent_add: bool = False
    subtract: Callable[[object, object], object] | None = None

    @property
    def invertible(self) -> bool:
        """Whether ⊕ has an inverse (the delta-maintenance precondition)."""
        return self.subtract is not None

    def negate(self, value: object) -> object:
        """``⊖value`` (the ⊕-inverse); raises for non-invertible ⊕."""
        if self.subtract is None:
            raise ValueError(f"{self.name}: ⊕ is not invertible")
        return self.subtract(self.zero, value)

    def sum(self, values: Iterable) -> object:
        """``⊕`` over an iterable (``zero`` when empty)."""
        total = self.zero
        for value in values:
            total = self.add(total, value)
        return total

    def product(self, values: Iterable) -> object:
        """``⊗`` over an iterable (``one`` when empty)."""
        total = self.one
        for value in values:
            total = self.mul(total, value)
        return total

    def check_axioms(self, samples: Iterable) -> None:
        """Assert the semiring axioms on a sample of domain values.

        Checks associativity and commutativity of both operations,
        identities, distributivity, and annihilation.  Raises
        :class:`ValueError` on the first violation — used by tests and by
        users defining custom semirings.
        """
        items = list(samples)
        for a in items:
            if self.add(a, self.zero) != a:
                raise ValueError(f"{self.name}: 0 is not a ⊕-identity on {a!r}")
            if self.mul(a, self.one) != a:
                raise ValueError(f"{self.name}: 1 is not a ⊗-identity on {a!r}")
            if self.mul(a, self.zero) != self.zero:
                raise ValueError(f"{self.name}: 0 does not annihilate {a!r}")
        for a in items:
            for b in items:
                if self.add(a, b) != self.add(b, a):
                    raise ValueError(f"{self.name}: ⊕ not commutative on {a!r},{b!r}")
                if self.mul(a, b) != self.mul(b, a):
                    raise ValueError(f"{self.name}: ⊗ not commutative on {a!r},{b!r}")
                for c in items:
                    if self.add(self.add(a, b), c) != self.add(a, self.add(b, c)):
                        raise ValueError(f"{self.name}: ⊕ not associative")
                    if self.mul(self.mul(a, b), c) != self.mul(a, self.mul(b, c)):
                        raise ValueError(f"{self.name}: ⊗ not associative")
                    lhs = self.mul(a, self.add(b, c))
                    rhs = self.add(self.mul(a, b), self.mul(a, c))
                    if lhs != rhs:
                        raise ValueError(f"{self.name}: ⊗ does not distribute over ⊕")

    def __str__(self) -> str:
        return self.name


BOOLEAN = Semiring(
    name="boolean",
    zero=False,
    one=True,
    add=lambda a, b: a or b,
    mul=lambda a, b: a and b,
    idempotent_add=True,
)

COUNTING = Semiring(
    name="counting",
    zero=0,
    one=1,
    add=lambda a, b: a + b,
    mul=lambda a, b: a * b,
    subtract=lambda a, b: a - b,
)

#: The counting ring over exact rationals: ``SUM`` aggregates of
#: ``Fraction``-weighted tuples, ⊕-invertible (so incrementally maintainable)
#: and exact end to end like every witness path in the repository.
FRACTION = Semiring(
    name="fraction",
    zero=Fraction(0),
    one=Fraction(1),
    add=lambda a, b: a + b,
    mul=lambda a, b: a * b,
    subtract=lambda a, b: a - b,
)

MIN_PLUS = Semiring(
    name="min-plus",
    zero=math.inf,
    one=0,
    add=min,
    mul=lambda a, b: a + b,
    idempotent_add=True,
)

MAX_PRODUCT = Semiring(
    name="max-product",
    zero=0.0,
    one=1.0,
    add=max,
    mul=lambda a, b: a * b,
    idempotent_add=True,
)
