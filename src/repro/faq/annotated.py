"""Semiring-annotated relations (K-relations) for FAQ evaluation (§8).

An :class:`AnnotatedRelation` is a finite map from tuples over a schema to
non-``zero`` semiring values — the "factors" of an FAQ query.  The two
FAQ-relevant operations are the ⊗-join (natural join whose matched
annotations multiply) and ⊕-marginalization (project away variables, adding
the annotations of collapsing tuples).  Over the Boolean semiring these
degrade to the ordinary join and projection, which the tests exploit as an
oracle bridge to the relational engine.

The storage mirrors the columnar relational engine: tuples are interned into
the shared per-attribute dictionaries
(:class:`~repro.relational.columns.Dictionary`) and the support is kept as a
map over *code* tuples.  The ⊗-join is a sort-merge over the shared-attribute
prefix of both operands' sorted code rows (the same sorted-trie layout the
join algorithms walk), and ⊕-marginalization folds annotation values over
the sorted runs of the kept-attribute projection.  Both only *reorder*
exact-domain aggregations — ``Fraction``/``int``/``bool``/``min``/``max``
annotations come out exactly equal to the historical hash-based evaluation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.exceptions import SchemaError
from repro.faq.semiring import Semiring
from repro.relational.columns import Dictionary, decode_row, merge_runs
from repro.relational.relation import Relation

__all__ = ["AnnotatedRelation"]


class AnnotatedRelation:
    """A finite map ``tuples over schema -> semiring values``.

    Attributes:
        name: display name.
        schema: ordered attribute names.
        semiring: the annotation domain.
    """

    __slots__ = ("name", "schema", "semiring", "_dicts", "_data", "_positions")

    def __init__(
        self,
        name: str,
        schema: Iterable[str],
        semiring: Semiring,
        annotations: Mapping[tuple, object] | Iterable[tuple] = (),
    ) -> None:
        self.name = name
        self.schema: tuple[str, ...] = tuple(schema)
        if len(set(self.schema)) != len(self.schema):
            raise SchemaError(f"duplicate attributes in schema {self.schema}")
        self.semiring = semiring
        self._positions = {attr: i for i, attr in enumerate(self.schema)}
        self._dicts: tuple[Dictionary, ...] = tuple(
            Dictionary.of(attr) for attr in self.schema
        )
        arity = len(self.schema)
        encoders = tuple(d.encode for d in self._dicts)
        data: dict[tuple[int, ...], object] = {}
        items = (
            annotations.items()
            if isinstance(annotations, Mapping)
            else ((tuple(row), semiring.one) for row in annotations)
        )
        for row, value in items:
            row = tuple(row)
            if len(row) != arity:
                raise SchemaError(
                    f"tuple {row} has arity {len(row)}, schema {self.schema} "
                    f"expects {arity}"
                )
            if value == semiring.zero:
                continue
            coded = tuple(enc(v) for enc, v in zip(encoders, row))
            if coded in data:
                value = semiring.add(data[coded], value)
                if value == semiring.zero:
                    del data[coded]
                    continue
            data[coded] = value
        self._data = data

    # -- constructors -------------------------------------------------------------

    @classmethod
    def _from_codes(
        cls,
        name: str,
        schema: tuple[str, ...],
        semiring: Semiring,
        data: dict,
    ) -> "AnnotatedRelation":
        """Internal fast path: adopt an already-encoded code->value map."""
        out = cls.__new__(cls)
        out.name = name
        out.schema = schema
        out.semiring = semiring
        out._positions = {attr: i for i, attr in enumerate(schema)}
        out._dicts = tuple(Dictionary.of(attr) for attr in schema)
        out._data = data
        return out

    @classmethod
    def from_relation(
        cls, relation: Relation, semiring: Semiring, weight=None
    ) -> "AnnotatedRelation":
        """Lift a set relation: every tuple annotated ``one`` (or ``weight(t)``).

        With the default unit weight the relation's code rows are adopted
        directly — lifting costs one dict build, no re-encoding.
        """
        if weight is None:
            one = semiring.one
            return cls._from_codes(
                relation.name,
                relation.schema,
                semiring,
                {row: one for row in relation.code_rows},
            )
        annotations = {row: weight(row) for row in relation}
        return cls(relation.name, relation.schema, semiring, annotations)

    # -- basic protocol -----------------------------------------------------------

    @property
    def attributes(self) -> frozenset:
        return frozenset(self.schema)

    def __len__(self) -> int:
        return len(self._data)

    def _decode(self, coded: tuple) -> tuple:
        return decode_row(self._dicts, coded)

    def __iter__(self) -> Iterator[tuple]:
        for coded in self._data:
            yield self._decode(coded)

    def items(self) -> list[tuple[tuple, object]]:
        """Decoded ``(tuple, value)`` pairs (adapter boundary)."""
        return [
            (self._decode(coded), value) for coded, value in self._data.items()
        ]

    def annotation(self, row: tuple) -> object:
        """The value of ``row`` (``zero`` for absent tuples)."""
        row = tuple(row)
        if len(row) != len(self.schema):
            return self.semiring.zero
        coded = []
        for d, value in zip(self._dicts, row):
            code = d.encode_existing(value)
            if code is None:
                return self.semiring.zero
            coded.append(code)
        return self._data.get(tuple(coded), self.semiring.zero)

    def __eq__(self, other: object) -> bool:
        """Value equality over the same attribute set (order-insensitive).

        Shared dictionaries make code equality coincide with value equality,
        so the comparison never decodes.
        """
        if not isinstance(other, AnnotatedRelation):
            return NotImplemented
        if self.attributes != other.attributes or len(self) != len(other):
            return False
        if self.schema == other.schema:
            return self._data == other._data
        positions = tuple(other._positions[a] for a in self.schema)
        realigned = {
            tuple(row[p] for p in positions): value
            for row, value in other._data.items()
        }
        return self._data == realigned

    def __hash__(self):  # pragma: no cover - mutable-map semantics
        raise TypeError("AnnotatedRelation is not hashable")

    def support(self) -> Relation:
        """The underlying set relation (tuples with non-zero annotation)."""
        return Relation.from_codes(
            self.name, self.schema, list(self._data.keys()), distinct=True
        )

    def scalar(self) -> object:
        """The value of a nullary (fully aggregated) result."""
        if self.schema:
            raise SchemaError(
                f"scalar() needs an empty schema, have {self.schema}"
            )
        return self._data.get((), self.semiring.zero)

    # -- FAQ operations -----------------------------------------------------------

    def multiply(
        self, other: "AnnotatedRelation", name: str | None = None
    ) -> "AnnotatedRelation":
        """The ⊗-join: match on shared attributes, multiply annotations.

        A sort-merge join on the shared-attribute prefix of both operands'
        sorted code rows; the output schema is ``self.schema`` followed by
        ``other``'s fresh attributes.
        """
        if self.semiring is not other.semiring:
            raise SchemaError(
                f"cannot join over different semirings "
                f"({self.semiring} vs {other.semiring})"
            )
        shared = [a for a in self.schema if a in other._positions]
        fresh = [a for a in other.schema if a not in self._positions]
        out_schema = self.schema + tuple(fresh)
        k = len(shared)
        left_perm = tuple(self._positions[a] for a in shared) + tuple(
            i for i, a in enumerate(self.schema) if a not in other._positions
        )
        right_perm = tuple(other._positions[a] for a in shared) + tuple(
            other._positions[a] for a in fresh
        )
        # Invert the left permutation so merged rows rebuild in schema order.
        left_inverse = [0] * len(self.schema)
        for sorted_pos, schema_pos in enumerate(left_perm):
            left_inverse[schema_pos] = sorted_pos

        # Sort on the permuted row only (never on annotation values, which
        # need not be orderable); permuted rows are distinct, so the key is
        # total.
        by_row = lambda pair: pair[0]  # noqa: E731
        left_rows = sorted(
            (
                (tuple(row[p] for p in left_perm), value)
                for row, value in self._data.items()
            ),
            key=by_row,
        )
        right_rows = sorted(
            (
                (tuple(row[p] for p in right_perm), value)
                for row, value in other._data.items()
            ),
            key=by_row,
        )
        mul = self.semiring.mul
        zero = self.semiring.zero
        out: dict[tuple, object] = {}
        for i, i_end, j, j_end in merge_runs(
            left_rows, right_rows, lambda pair: pair[0][:k]
        ):
            for a in range(i, i_end):
                row, value = left_rows[a]
                realigned = tuple(row[p] for p in left_inverse)
                for b in range(j, j_end):
                    match, match_value = right_rows[b]
                    product = mul(value, match_value)
                    if product != zero:
                        out[realigned + match[k:]] = product
        return AnnotatedRelation._from_codes(
            name or f"({self.name}⊗{other.name})",
            out_schema,
            self.semiring,
            out,
        )

    def combine(
        self, other: "AnnotatedRelation", name: str | None = None
    ) -> "AnnotatedRelation":
        """Pointwise ⊕ with ``other`` (same attribute set; schemas realigned).

        The signed-fold application step of incremental FAQ maintenance
        (:mod:`repro.incremental.ivm`): ``other`` is typically a delta whose
        annotations live in the ⊕-group (inserted mass positive, deleted
        mass ⊕-inverted), and combining folds it into this relation exactly
        — entries whose sum reaches ``zero`` drop out of the support, so a
        maintained result never carries phantom zero-annotated tuples.
        """
        if self.semiring is not other.semiring:
            raise SchemaError(
                f"cannot combine over different semirings "
                f"({self.semiring} vs {other.semiring})"
            )
        if self.attributes != other.attributes:
            raise SchemaError(
                f"combine needs equal attribute sets, got {self.schema} "
                f"vs {other.schema}"
            )
        positions = tuple(other._positions[a] for a in self.schema)
        identity = positions == tuple(range(len(self.schema)))
        add = self.semiring.add
        zero = self.semiring.zero
        out = dict(self._data)
        for row, value in other._data.items():
            if not identity:
                row = tuple(row[p] for p in positions)
            if row in out:
                value = add(out[row], value)
                if value == zero:
                    del out[row]
                    continue
            out[row] = value
        return AnnotatedRelation._from_codes(
            name or f"({self.name}⊕{other.name})",
            self.schema,
            self.semiring,
            out,
        )

    def marginalize(
        self, keep: Iterable[str], name: str | None = None
    ) -> "AnnotatedRelation":
        """⊕-out every attribute not in ``keep`` (the FAQ ``Σ`` operator).

        A fold over sorted runs: rows are sorted by their kept-attribute
        projection and each run's annotations are ⊕-combined in that order —
        exact for exact domains (``Fraction`` end to end), and the same
        result as hash-grouping for any commutative ⊕.
        """
        keep_set = frozenset(keep)
        if not keep_set <= self.attributes:
            raise SchemaError(
                f"cannot keep {sorted(keep_set)}: schema is {self.schema}"
            )
        out_schema = tuple(a for a in self.schema if a in keep_set)
        positions = tuple(self._positions[a] for a in out_schema)
        add = self.semiring.add
        zero = self.semiring.zero
        # Sort on the projected key only: collapsing rows tie on the key, and
        # annotation values (complex, provenance polynomials, ...) need not
        # be orderable.
        projected = sorted(
            (
                (tuple(row[p] for p in positions), value)
                for row, value in self._data.items()
            ),
            key=lambda pair: pair[0],
        )
        out: dict[tuple, object] = {}
        run_key: tuple | None = None
        run_value = zero
        for short, value in projected:
            if short != run_key:
                if run_key is not None and run_value != zero:
                    out[run_key] = run_value
                run_key = short
                run_value = value
            else:
                run_value = add(run_value, value)
        if run_key is not None and run_value != zero:
            out[run_key] = run_value
        return AnnotatedRelation._from_codes(
            name or f"Σ[{self.name}]", out_schema, self.semiring, out
        )

    def __str__(self) -> str:
        return (
            f"{self.name}({', '.join(self.schema)}) over {self.semiring}: "
            f"{len(self)} tuples"
        )
