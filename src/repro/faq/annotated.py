"""Semiring-annotated relations (K-relations) for FAQ evaluation (§8).

An :class:`AnnotatedRelation` is a finite map from tuples over a schema to
non-``zero`` semiring values — the "factors" of an FAQ query.  The two
FAQ-relevant operations are the ⊗-join (natural join whose matched
annotations multiply) and ⊕-marginalization (project away variables, adding
the annotations of collapsing tuples).  Over the Boolean semiring these
degrade to the ordinary join and projection, which the tests exploit as an
oracle bridge to the relational engine.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.exceptions import SchemaError
from repro.faq.semiring import Semiring
from repro.relational.relation import Relation

__all__ = ["AnnotatedRelation"]


class AnnotatedRelation:
    """A finite map ``tuples over schema -> semiring values``.

    Attributes:
        name: display name.
        schema: ordered attribute names.
        semiring: the annotation domain.
    """

    __slots__ = ("name", "schema", "semiring", "_data", "_positions")

    def __init__(
        self,
        name: str,
        schema: Iterable[str],
        semiring: Semiring,
        annotations: Mapping[tuple, object] | Iterable[tuple] = (),
    ) -> None:
        self.name = name
        self.schema: tuple[str, ...] = tuple(schema)
        if len(set(self.schema)) != len(self.schema):
            raise SchemaError(f"duplicate attributes in schema {self.schema}")
        self.semiring = semiring
        self._positions = {attr: i for i, attr in enumerate(self.schema)}
        arity = len(self.schema)
        data: dict[tuple, object] = {}
        items = (
            annotations.items()
            if isinstance(annotations, Mapping)
            else ((tuple(row), semiring.one) for row in annotations)
        )
        for row, value in items:
            row = tuple(row)
            if len(row) != arity:
                raise SchemaError(
                    f"tuple {row} has arity {len(row)}, schema {self.schema} "
                    f"expects {arity}"
                )
            if value == semiring.zero:
                continue
            if row in data:
                value = semiring.add(data[row], value)
                if value == semiring.zero:
                    del data[row]
                    continue
            data[row] = value
        self._data = data

    # -- constructors -------------------------------------------------------------

    @classmethod
    def from_relation(
        cls, relation: Relation, semiring: Semiring, weight=None
    ) -> "AnnotatedRelation":
        """Lift a set relation: every tuple annotated ``one`` (or ``weight(t)``)."""
        if weight is None:
            annotations = {row: semiring.one for row in relation}
        else:
            annotations = {row: weight(row) for row in relation}
        return cls(relation.name, relation.schema, semiring, annotations)

    # -- basic protocol -----------------------------------------------------------

    @property
    def attributes(self) -> frozenset:
        return frozenset(self.schema)

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._data)

    def items(self):
        return self._data.items()

    def annotation(self, row: tuple) -> object:
        """The value of ``row`` (``zero`` for absent tuples)."""
        return self._data.get(tuple(row), self.semiring.zero)

    def __eq__(self, other: object) -> bool:
        """Value equality over the same attribute set (order-insensitive)."""
        if not isinstance(other, AnnotatedRelation):
            return NotImplemented
        if self.attributes != other.attributes or len(self) != len(other):
            return False
        if self.schema == other.schema:
            return self._data == other._data
        positions = tuple(other._positions[a] for a in self.schema)
        realigned = {
            tuple(row[p] for p in positions): value
            for row, value in other._data.items()
        }
        return self._data == realigned

    def __hash__(self):  # pragma: no cover - mutable-map semantics
        raise TypeError("AnnotatedRelation is not hashable")

    def support(self) -> Relation:
        """The underlying set relation (tuples with non-zero annotation)."""
        return Relation(self.name, self.schema, self._data.keys())

    def scalar(self) -> object:
        """The value of a nullary (fully aggregated) result."""
        if self.schema:
            raise SchemaError(
                f"scalar() needs an empty schema, have {self.schema}"
            )
        return self._data.get((), self.semiring.zero)

    # -- FAQ operations -----------------------------------------------------------

    def multiply(
        self, other: "AnnotatedRelation", name: str | None = None
    ) -> "AnnotatedRelation":
        """The ⊗-join: match on shared attributes, multiply annotations.

        Hash join on the smaller operand's shared-key index; the output
        schema is ``self.schema`` followed by ``other``'s fresh attributes.
        """
        if self.semiring is not other.semiring:
            raise SchemaError(
                f"cannot join over different semirings "
                f"({self.semiring} vs {other.semiring})"
            )
        shared = [a for a in self.schema if a in other._positions]
        fresh = [a for a in other.schema if a not in self._positions]
        out_schema = self.schema + tuple(fresh)
        left_key = tuple(self._positions[a] for a in shared)
        right_key = tuple(other._positions[a] for a in shared)
        fresh_pos = tuple(other._positions[a] for a in fresh)

        index: dict[tuple, list[tuple[tuple, object]]] = {}
        for row, value in other._data.items():
            index.setdefault(tuple(row[p] for p in right_key), []).append(
                (row, value)
            )
        mul = self.semiring.mul
        out: dict[tuple, object] = {}
        for row, value in self._data.items():
            key = tuple(row[p] for p in left_key)
            for match, match_value in index.get(key, ()):
                out_row = row + tuple(match[p] for p in fresh_pos)
                out[out_row] = mul(value, match_value)
        return AnnotatedRelation(
            name or f"({self.name}⊗{other.name})",
            out_schema,
            self.semiring,
            out,
        )

    def marginalize(
        self, keep: Iterable[str], name: str | None = None
    ) -> "AnnotatedRelation":
        """⊕-out every attribute not in ``keep`` (the FAQ ``Σ`` operator)."""
        keep_set = frozenset(keep)
        if not keep_set <= self.attributes:
            raise SchemaError(
                f"cannot keep {sorted(keep_set)}: schema is {self.schema}"
            )
        out_schema = tuple(a for a in self.schema if a in keep_set)
        positions = tuple(self._positions[a] for a in out_schema)
        add = self.semiring.add
        zero = self.semiring.zero
        out: dict[tuple, object] = {}
        for row, value in self._data.items():
            short = tuple(row[p] for p in positions)
            if short in out:
                out[short] = add(out[short], value)
            else:
                out[short] = value
        out = {row: value for row, value in out.items() if value != zero}
        return AnnotatedRelation(
            name or f"Σ[{self.name}]", out_schema, self.semiring, out
        )

    def __str__(self) -> str:
        return (
            f"{self.name}({', '.join(self.schema)}) over {self.semiring}: "
            f"{len(self)} tuples"
        )
