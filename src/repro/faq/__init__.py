"""FAQ / aggregate queries over one semiring (§8, FAQ-SS [2, 5]).

Architecture layer 5 (see ``docs/architecture.md``), on the columnar
relational engine; contract: semiring results are exact and
bit-identical to hash-based evaluation — ⊕-folds only reorder exact
(``Fraction``/``int``/``bool``/min/max) aggregations.

The paper's results "extend straightforwardly to proper conjunctive queries
and to aggregate queries (in the sense of FAQ-queries over one semiring)";
this subpackage carries out that extension:

* :mod:`repro.faq.semiring` — commutative semirings and the stock instances
  (Boolean, counting, min-plus/tropical, max-product);
* :mod:`repro.faq.annotated` — semiring-annotated relations (K-relations)
  with ⊗-join and ⊕-marginalization;
* :mod:`repro.faq.query` — the FAQ-SS query ``φ(A_F) = ⊕_{A_{[n]−F}} ⊗_F
  R_F`` with a brute-force oracle;
* :mod:`repro.faq.freeconnex` — free-connex tree decompositions (the §8
  restriction of the Minimax/Maximin width minimization);
* :mod:`repro.faq.elimination` — InsideOut-style variable elimination;
* :mod:`repro.faq.plans` — the §8 da-fhtw evaluation: PANDA-computed bags on
  a free-connex decomposition, then message passing.
"""

from repro.faq.annotated import AnnotatedRelation
from repro.faq.elimination import EliminationResult, variable_elimination
from repro.faq.freeconnex import (
    connex_core,
    free_connex_decompositions,
    is_free_connex,
)
from repro.faq.plans import FaqPlanResult, faq_decomposition_plan
from repro.faq.query import FAQQuery
from repro.faq.widths import free_connex_dafhtw, free_connex_dasubw
from repro.faq.semiring import (
    BOOLEAN,
    COUNTING,
    FRACTION,
    MAX_PRODUCT,
    MIN_PLUS,
    Semiring,
)

__all__ = [
    "AnnotatedRelation",
    "BOOLEAN",
    "COUNTING",
    "EliminationResult",
    "FAQQuery",
    "FaqPlanResult",
    "FRACTION",
    "MAX_PRODUCT",
    "MIN_PLUS",
    "Semiring",
    "connex_core",
    "faq_decomposition_plan",
    "free_connex_dafhtw",
    "free_connex_dasubw",
    "free_connex_decompositions",
    "is_free_connex",
    "variable_elimination",
]
