"""FAQ-SS queries: sum-product form over one semiring (§8; [2]).

An FAQ-SS query over hypergraph ``H = ([n], E)`` with free variables
``F ⊆ [n]`` computes

    φ(A_F) = ⊕_{A_{[n]−F}} ⊗_{S∈E} R_S(A_S)

where each input ``R_S`` is a semiring-annotated relation.  ``F = ∅`` gives a
scalar (e.g. a Boolean query or a total count), ``F = [n]`` an annotated full
join, and anything in between a "proper" aggregate query with group-by
columns ``A_F``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.hypergraph import Hypergraph
from repro.datalog.atoms import Atom
from repro.datalog.conjunctive import ConjunctiveQuery
from repro.exceptions import QueryError
from repro.faq.annotated import AnnotatedRelation
from repro.faq.semiring import Semiring
from repro.relational.database import Database

__all__ = ["FAQQuery"]


@dataclass(frozen=True)
class FAQQuery:
    """An FAQ-SS query: free variables + body atoms + semiring.

    Attributes:
        free: ordered free (group-by) variables; empty means scalar output.
        body: atoms naming the annotated input factors.
        semiring: the single semiring of the query.
        name: display name for the output.
    """

    free: tuple[str, ...]
    body: tuple[Atom, ...]
    semiring: Semiring
    name: str = "φ"

    def __post_init__(self) -> None:
        if not self.body:
            raise QueryError("FAQ query needs at least one body atom")
        missing = frozenset(self.free) - self.variable_set
        if missing:
            raise QueryError(
                f"free variables {sorted(missing)} do not occur in the body"
            )
        if len(set(self.free)) != len(self.free):
            raise QueryError(f"duplicate free variables in {self.free}")

    @classmethod
    def from_conjunctive(
        cls, query: ConjunctiveQuery, semiring: Semiring
    ) -> "FAQQuery":
        """Lift a conjunctive query: its head becomes the free variables."""
        return cls(query.head, query.body, semiring, query.name)

    @property
    def variable_set(self) -> frozenset:
        out: set[str] = set()
        for atom in self.body:
            out |= atom.variable_set
        return frozenset(out)

    @property
    def bound(self) -> frozenset:
        """The aggregated-away variables ``[n] − F``."""
        return self.variable_set - frozenset(self.free)

    def hypergraph(self) -> Hypergraph:
        return Hypergraph(
            tuple(sorted(self.variable_set)),
            [atom.variable_set for atom in self.body],
        )

    def bind(
        self,
        database: Database,
        annotations: Mapping[str, Mapping[tuple, object]] | None = None,
    ) -> list[AnnotatedRelation]:
        """Resolve body atoms to annotated factors.

        Args:
            database: supplies each atom's set relation.
            annotations: optional per-relation-name tuple weights; relations
                not listed get the all-``one`` lifting.
        """
        factors = []
        for atom in self.body:
            relation = atom.bind(database)
            weights = (annotations or {}).get(relation.name)
            if weights is None:
                factor = AnnotatedRelation.from_relation(relation, self.semiring)
            else:
                factor = AnnotatedRelation(
                    relation.name,
                    relation.schema,
                    self.semiring,
                    {tuple(row): weights[tuple(row)] for row in relation},
                )
            factors.append(factor)
        return factors

    def evaluate_naive(
        self,
        database: Database,
        annotations: Mapping[str, Mapping[tuple, object]] | None = None,
    ) -> AnnotatedRelation:
        """Brute force: materialize the full ⊗-join, then ⊕-out bound vars.

        The oracle for every smarter evaluator; exponential in the worst
        case.
        """
        factors = self.bind(database, annotations)
        product = factors[0]
        for factor in factors[1:]:
            product = product.multiply(factor)
        return product.marginalize(self.free, name=self.name)

    def __str__(self) -> str:
        head = ", ".join(self.free)
        body = ", ".join(str(atom) for atom in self.body)
        return f"{self.name}({head}) = ⊕[{self.semiring}] {body}"
