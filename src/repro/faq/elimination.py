"""InsideOut-style variable elimination for FAQ-SS queries (§8; [2, 23]).

The classic sum-product / bucket-elimination algorithm: process bound
variables one at a time — multiply every factor mentioning the variable,
⊕-marginalize it out, and put the resulting message back — then combine what
remains over the free variables.  The per-step intermediate is the bag
``{v} ∪ N(v)`` of the elimination ordering, so the runtime exponent is that
ordering's induced width, tying the evaluator to the width machinery of §7
(a bound-first ordering realizes a free-connex decomposition's width).

Each ⊗ is a sort-merge join over the factors' shared code columns and each
⊕-marginalization a fold over the sorted runs of the kept projection
(:mod:`repro.faq.annotated` on the columnar engine); annotation values stay
exact ``Fraction``/``int`` end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.exceptions import QueryError
from repro.faq.annotated import AnnotatedRelation
from repro.faq.query import FAQQuery
from repro.relational.database import Database

__all__ = ["EliminationResult", "variable_elimination"]


@dataclass
class EliminationResult:
    """Output and execution trace of one variable-elimination run.

    Attributes:
        result: the annotated output over the free variables.
        order: the elimination order actually used (bound variables only).
        bags: the variable set touched at each elimination step — the bags
            of the induced decomposition; ``max(len(bag))−1`` is the induced
            treewidth the run paid.
        max_intermediate: the largest intermediate factor materialized.
    """

    result: AnnotatedRelation
    order: tuple[str, ...]
    bags: list[frozenset] = field(default_factory=list)
    max_intermediate: int = 0

    @property
    def induced_width(self) -> int:
        return max((len(bag) for bag in self.bags), default=1) - 1


def _default_bound_order(query: FAQQuery) -> tuple[str, ...]:
    """Min-degree heuristic over the moral graph of the bound variables."""
    adjacency: dict[str, set[str]] = {v: set() for v in query.variable_set}
    for atom in query.body:
        for a in atom.variable_set:
            adjacency[a] |= atom.variable_set - {a}
    bound = set(query.bound)
    order: list[str] = []
    while bound:
        v = min(bound, key=lambda u: (len(adjacency[u] & bound), u))
        order.append(v)
        neighbours = adjacency[v]
        for a in neighbours:
            adjacency[a] |= neighbours - {a}
            adjacency[a].discard(v)
        bound.discard(v)
    return tuple(order)


def variable_elimination(
    query: FAQQuery,
    database: Database,
    annotations: Mapping[str, Mapping[tuple, object]] | None = None,
    order: Sequence[str] | None = None,
) -> EliminationResult:
    """Evaluate an FAQ-SS query by eliminating its bound variables.

    Args:
        query: the FAQ query.
        database: input relations for the body atoms.
        annotations: optional per-relation tuple weights (see
            :meth:`FAQQuery.bind`).
        order: elimination order for the *bound* variables; defaults to the
            min-degree heuristic.  Free variables are never eliminated.

    Returns:
        An :class:`EliminationResult` whose ``result`` equals
        ``query.evaluate_naive(...)`` (the tests enforce this equality).

    Raises:
        QueryError: if ``order`` is not a permutation of the bound variables.
    """
    if order is None:
        order = _default_bound_order(query)
    order = tuple(order)
    if set(order) != set(query.bound):
        raise QueryError(
            f"elimination order {order} must cover exactly the bound "
            f"variables {sorted(query.bound)}"
        )

    factors = query.bind(database, annotations)
    trace = EliminationResult(
        result=None,  # type: ignore[arg-type] - set below
        order=order,
    )

    for variable in order:
        touching, rest = [], []
        for factor in factors:
            (touching if variable in factor.attributes else rest).append(factor)
        if not touching:
            continue
        bag: set[str] = set()
        for factor in touching:
            bag |= factor.attributes
        trace.bags.append(frozenset(bag))
        product = touching[0]
        for factor in touching[1:]:
            product = product.multiply(factor)
            trace.max_intermediate = max(trace.max_intermediate, len(product))
        message = product.marginalize(
            product.attributes - {variable}, name=f"m[{variable}]"
        )
        trace.max_intermediate = max(trace.max_intermediate, len(message))
        rest.append(message)
        factors = rest

    # Combine the residual factors (all over free variables) and project to
    # the declared free schema.
    product = factors[0]
    for factor in factors[1:]:
        product = product.multiply(factor)
        trace.max_intermediate = max(trace.max_intermediate, len(product))
    trace.result = product.marginalize(query.free, name=query.name)
    return trace
