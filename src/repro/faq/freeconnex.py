"""Free-connex tree decompositions (§8; [2, 13, 45]).

A tree decomposition ``(T, χ)`` is *F-connex* for free variables ``F`` when
some connected subtree ``T'`` has ``∪_{t∈T'} χ(t) = F`` — the "connex core".
Then bound variables can be ⊕-aggregated away strictly below the core, and
the core itself evaluates like an acyclic query over ``F``, which is what
lets the §8 extension hit the da-fhtw/da-subw runtimes for proper CQs and
FAQ-SS queries.

Construction follows the paper: run a GYO/variable-elimination ordering that
eliminates all *bound* variables before any free one.  The bags created in
the free phase mention only free variables and their union is exactly ``F``;
crucially they are *kept* even when contained in a mixed bag (pruning them —
as the non-redundant enumeration does — can destroy connexity, e.g. on
``R(x, f1, f2)`` with ``F = {f1, f2}``).
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable

from repro.core.hypergraph import Hypergraph
from repro.core.varmap import VarMap
from repro.decompositions.tree_decomposition import TreeDecomposition
from repro.exceptions import DecompositionError

__all__ = [
    "connex_core",
    "free_connex_decomposition_from_order",
    "free_connex_decompositions",
    "is_free_connex",
]


def connex_core(
    decomposition: TreeDecomposition, free: Iterable[str]
) -> frozenset | None:
    """The connex core: bag indices of a connected subtree whose union is ``F``.

    Returns ``None`` when the decomposition is not F-connex.  For ``F = ∅``
    the empty core is returned (every decomposition is ∅-connex: aggregate
    everything).  Candidate bags are exactly those contained in ``F``; within
    the junction tree their induced components are examined, and a component
    whose bags union to ``F`` is the core.
    """
    free_set = frozenset(free)
    if not free_set:
        return frozenset()
    bags = decomposition.bags
    parent = decomposition.junction_tree()
    candidates = {i for i, bag in enumerate(bags) if bag <= free_set}
    if not candidates:
        return None

    # Connected components of the candidate-induced subforest.
    adjacency: dict[int, set[int]] = {i: set() for i in candidates}
    for i in candidates:
        p = parent[i]
        if p >= 0 and p in candidates:
            adjacency[i].add(p)
            adjacency[p].add(i)
    unseen = set(candidates)
    while unseen:
        start = unseen.pop()
        component = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbour in adjacency[node]:
                if neighbour not in component:
                    component.add(neighbour)
                    frontier.append(neighbour)
        unseen -= component
        union = frozenset().union(*(bags[i] for i in component))
        if union == free_set:
            return frozenset(component)
    return None


def is_free_connex(
    decomposition: TreeDecomposition, free: Iterable[str]
) -> bool:
    """Whether ``decomposition`` is F-connex for the given free variables."""
    return connex_core(decomposition, free) is not None


def free_connex_decomposition_from_order(
    hypergraph: Hypergraph, free: Iterable[str], order: Iterable[str]
) -> TreeDecomposition:
    """The decomposition of a bound-variables-first elimination ordering.

    Args:
        hypergraph: the query hypergraph.
        free: the free variables ``F``.
        order: a permutation of all vertices eliminating every bound
            variable before any free one.

    Raises:
        DecompositionError: if the order interleaves bound after free, or
            does not cover the vertices.
    """
    order = tuple(order)
    free_set = frozenset(free)
    if set(order) != set(hypergraph.vertices):
        raise DecompositionError(
            f"order {order} does not match vertices {hypergraph.vertices}"
        )
    seen_free = False
    for v in order:
        if v in free_set:
            seen_free = True
        elif seen_free:
            raise DecompositionError(
                f"bound variable {v!r} eliminated after a free one"
            )

    # Moral graph; every hyperedge becomes a clique.
    adjacency: dict[str, set[str]] = {v: set() for v in hypergraph.vertices}
    for edge in hypergraph.edges:
        for a in edge:
            adjacency[a] |= edge - {a}

    bound_bags: list[frozenset] = []
    free_bags: list[frozenset] = []
    for v in order:
        neighbours = adjacency.pop(v)
        bag = frozenset(neighbours | {v})
        (free_bags if v in free_set else bound_bags).append(bag)
        for a in neighbours:
            adjacency[a] |= neighbours - {a}
            adjacency[a].discard(v)

    # Prune redundant bags *within* each phase only: a free-phase bag must
    # never be absorbed into a mixed bag (see module docstring).  Subset
    # tests run on the mask kernel: each bag is one machine int and
    # absorption is a single ``&`` comparison.
    varmap = VarMap.of(tuple(sorted(hypergraph.vertices)))

    def prune(bags: list[frozenset]) -> list[frozenset]:
        masks = [varmap.mask_of(bag) for bag in bags]
        kept: list[frozenset] = []
        for i, (bag, mask) in enumerate(zip(bags, masks)):
            absorbed = any(
                (mask != other and mask & other == mask)
                or (mask == other and i < j)
                for j, other in enumerate(masks)
                if j != i
            )
            if not absorbed:
                kept.append(bag)
        return kept

    return TreeDecomposition.from_bags(prune(bound_bags) + prune(free_bags))


def free_connex_decompositions(
    hypergraph: Hypergraph,
    free: Iterable[str],
    max_vertices_for_full_enumeration: int = 8,
) -> list[TreeDecomposition]:
    """All distinct free-connex decompositions from bound-first orderings.

    §8's Minimax/Maximin widths for proper CQs range ``min_{(T,χ)}`` over
    exactly this family.  Deduplicated by bag set; every result satisfies
    :func:`is_free_connex`.
    """
    free_set = frozenset(free)
    vertices = hypergraph.vertices
    if len(vertices) > max_vertices_for_full_enumeration:
        raise DecompositionError(
            f"{len(vertices)} vertices exceed the full-enumeration cap "
            f"({max_vertices_for_full_enumeration}); pass explicit orders"
        )
    bound = sorted(set(vertices) - free_set)
    free_sorted = sorted(free_set)
    out: list[TreeDecomposition] = []
    seen: set[frozenset] = set()
    for bound_order in permutations(bound):
        for free_order in permutations(free_sorted):
            td = free_connex_decomposition_from_order(
                hypergraph, free_set, bound_order + free_order
            )
            if td.bag_set in seen:
                continue
            seen.add(td.bag_set)
            # A bound-first order yields free-phase bags with union F, but
            # when the free part is disconnected the stored junction tree
            # may scatter them; such decompositions are skipped (the strict
            # Def. requires one connected core).
            if is_free_connex(td, free_set):
                out.append(td)
    return out
