"""Tree decompositions (Definition 2.5).

A tree decomposition of ``H = ([n], E)`` is a pair ``(T, χ)`` with (1) every
hyperedge inside some bag ``χ(t)`` and (2) every vertex's bags forming a
connected subtree.  Because all width computations in this package only need
the *bag set* (Def. 2.6: widths are functions of the bags), the class stores
the bags; the actual junction tree is recovered on demand by a maximum-overlap
spanning tree, which satisfies the running-intersection property whenever any
tree arrangement does (the classical junction-tree theorem).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.hypergraph import Hypergraph
from repro.exceptions import DecompositionError

__all__ = ["TreeDecomposition"]


@dataclass(frozen=True)
class TreeDecomposition:
    """A tree decomposition, represented by its bag set.

    Attributes:
        bags: the bags ``χ(t)``, deduplicated, in a deterministic order.
    """

    bags: tuple[frozenset, ...]

    def __post_init__(self) -> None:
        if not self.bags:
            raise DecompositionError("tree decomposition needs at least one bag")

    @classmethod
    def from_bags(cls, bags: Iterable[Iterable[str]]) -> "TreeDecomposition":
        unique: dict[frozenset, None] = {}
        for bag in bags:
            unique.setdefault(frozenset(bag), None)
        ordered = tuple(
            sorted(unique, key=lambda b: (len(b), tuple(sorted(b))))
        )
        return cls(ordered)

    @property
    def bag_set(self) -> frozenset:
        return frozenset(self.bags)

    def vertices(self) -> frozenset:
        out: set[str] = set()
        for bag in self.bags:
            out |= bag
        return frozenset(out)

    # -- validity ------------------------------------------------------------------

    def covers(self, hypergraph: Hypergraph) -> bool:
        """Condition (1): every hyperedge is inside some bag."""
        return all(
            any(edge <= bag for bag in self.bags) for edge in hypergraph.edges
        )

    def junction_tree(self) -> list[int]:
        """Parent array of a junction tree over the bags (root has -1).

        Built as a maximum-overlap spanning tree, then verified against the
        running-intersection property.

        Raises:
            DecompositionError: if no junction tree exists (the bags are not a
                valid tree decomposition of anything).
        """
        n = len(self.bags)
        parent = [-1] * n
        if n <= 1:
            return parent
        in_tree = {0}
        while len(in_tree) < n:
            best = None
            for i in in_tree:
                for j in range(n):
                    if j in in_tree:
                        continue
                    key = (len(self.bags[i] & self.bags[j]), -j, -i)
                    if best is None or key > best[0]:
                        best = (key, i, j)
            _, i, j = best
            parent[j] = i
            in_tree.add(j)
        self._check_running_intersection(parent)
        return parent

    def _check_running_intersection(self, parent: list[int]) -> None:
        for v in self.vertices():
            holders = {i for i, bag in enumerate(self.bags) if v in bag}
            tops = 0
            for i in holders:
                if parent[i] == -1 or parent[i] not in holders:
                    tops += 1
            if tops != 1:
                raise DecompositionError(
                    f"vertex {v!r} does not induce a connected subtree "
                    f"(bags {sorted(holders)})"
                )

    def is_valid_for(self, hypergraph: Hypergraph) -> bool:
        """Full Definition 2.5 check."""
        if self.vertices() != hypergraph.vertex_set:
            return False
        if not self.covers(hypergraph):
            return False
        try:
            self.junction_tree()
        except DecompositionError:
            return False
        return True

    # -- structure relations -----------------------------------------------------------

    def is_non_redundant(self) -> bool:
        """No bag contained in another (§2.1.3)."""
        for a in self.bags:
            for b in self.bags:
                if a is not b and a <= b:
                    return False
        return True

    def is_dominated_by(self, other: "TreeDecomposition") -> bool:
        """Every bag of ``self`` is a subset of some bag of ``other``.

        When this holds, ``self`` is at least as good as ``other`` for every
        monotone width measure, so ``other`` is redundant in min-over-TD
        computations.
        """
        return all(
            any(bag <= other_bag for other_bag in other.bags) for bag in self.bags
        )

    def max_bag_size(self) -> int:
        return max(len(bag) for bag in self.bags)

    def g_width(self, g) -> object:
        """Adler's g-width of this decomposition: ``max_t g(χ(t))`` (Def. 2.6)."""
        return max(g(bag) for bag in self.bags)

    def __str__(self) -> str:
        bags = ", ".join("{" + ",".join(sorted(b)) + "}" for b in self.bags)
        return f"TD[{bags}]"


def bag_relations_order(
    decomposition: TreeDecomposition, preferred: Sequence[frozenset] | None = None
) -> list[frozenset]:
    """Bags in junction-tree bottom-up order (used by the query drivers)."""
    parent = decomposition.junction_tree()
    order: list[int] = []
    visited: set[int] = set()
    children: dict[int, list[int]] = {}
    root = parent.index(-1)
    for i, p in enumerate(parent):
        children.setdefault(p, []).append(i)

    def visit(node: int) -> None:
        visited.add(node)
        for child in children.get(node, []):
            visit(child)
        order.append(node)

    visit(root)
    return [decomposition.bags[i] for i in order]
