"""Enumerating tree decompositions (Prop. 2.9).

Every non-dominated non-redundant tree decomposition arises from a vertex
elimination ordering [2], and there are at most ``n!`` orderings, each giving
at most ``n`` bags.  This module builds the decomposition of an ordering
(eliminate ``v``: bag = ``{v} ∪ current-neighbours(v)``, then clique the
neighbours), deduplicates across orderings, and prunes decompositions
dominated by another (a dominated decomposition is pointwise at least as good
for every monotone width, so the *dominating* ones are redundant in
min-over-TD computations).

For the ``n <= 8`` hypergraphs of the paper's examples full enumeration takes
well under a second; larger families (Example 7.4 at big ``m``) pass explicit
candidate decompositions instead.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable, Sequence

from repro.core.hypergraph import Hypergraph
from repro.decompositions.tree_decomposition import TreeDecomposition
from repro.exceptions import DecompositionError

__all__ = [
    "decomposition_from_order",
    "tree_decompositions",
    "prune_dominated",
]


def decomposition_from_order(
    hypergraph: Hypergraph, order: Sequence[str]
) -> TreeDecomposition:
    """The tree decomposition induced by a vertex elimination ordering."""
    if set(order) != set(hypergraph.vertices):
        raise DecompositionError(
            f"order {order} does not match vertices {hypergraph.vertices}"
        )
    # Moral graph: every hyperedge becomes a clique.
    adjacency: dict[str, set[str]] = {v: set() for v in hypergraph.vertices}
    for edge in hypergraph.edges:
        for a in edge:
            adjacency[a] |= edge - {a}

    bags: list[frozenset] = []
    for v in order:
        neighbours = adjacency.pop(v)
        bags.append(frozenset(neighbours | {v}))
        for a in neighbours:
            adjacency[a] |= neighbours - {a}
            adjacency[a].discard(v)

    # Remove redundant bags (contained in a later-created bag).
    kept: list[frozenset] = []
    for bag in bags:
        if not any(
            bag <= other
            for other in bags
            if other is not bag
            and (len(other) > len(bag)
                 or (len(other) == len(bag) and other != bag))
        ):
            kept.append(bag)
    # Deduplicate equal bags.
    return TreeDecomposition.from_bags(kept)


def prune_dominated(
    decompositions: Iterable[TreeDecomposition],
) -> list[TreeDecomposition]:
    """Drop every decomposition dominated by a different one (§2.1.3).

    If ``T1`` is dominated by ``T2`` (every bag of T1 fits in a bag of T2)
    then ``T2`` never improves a min-over-TD, so ``T2`` is removed.
    """
    items = list(decompositions)
    kept: list[TreeDecomposition] = []
    for candidate in items:
        redundant = False
        for other in items:
            if other.bag_set == candidate.bag_set:
                continue
            if other.is_dominated_by(candidate):
                # `other` fits inside `candidate`, so `candidate` is redundant.
                redundant = True
                break
        if not redundant:
            kept.append(candidate)
    return kept


def tree_decompositions(
    hypergraph: Hypergraph,
    max_vertices_for_full_enumeration: int = 8,
) -> list[TreeDecomposition]:
    """The canonical set ``TD(H)``: non-redundant, mutually non-dominated.

    Enumerate all elimination orderings (``n!``), deduplicate by bag set, and
    prune dominated decompositions.

    Raises:
        DecompositionError: if the hypergraph is too large for full
            enumeration; pass explicit decompositions to the width functions
            instead.
    """
    n = hypergraph.n
    if n > max_vertices_for_full_enumeration:
        raise DecompositionError(
            f"{n} vertices exceed the full-enumeration cap "
            f"({max_vertices_for_full_enumeration}); supply candidate "
            "decompositions explicitly"
        )
    seen: dict[frozenset, TreeDecomposition] = {}
    for order in permutations(hypergraph.vertices):
        decomposition = decomposition_from_order(hypergraph, order)
        seen.setdefault(decomposition.bag_set, decomposition)
    pruned = prune_dominated(seen.values())
    return sorted(
        pruned,
        key=lambda td: tuple(sorted((len(b), tuple(sorted(b))) for b in td.bags)),
    )
