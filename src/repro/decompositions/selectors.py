"""Bag selectors and their images (Lemma 7.12, Eq. 105).

The submodular width swaps ``min_{(T,χ)} max_t`` into ``max_β min_B`` over
*bag selectors* β — maps choosing one bag from every tree decomposition.  The
collection ``B`` of selector *images* (Eq. 105) is what both the width LPs and
the PANDA-based algorithm of Corollary 7.13 iterate over: each image becomes
the target set of one disjunctive datalog rule.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.decompositions.tree_decomposition import TreeDecomposition
from repro.exceptions import DecompositionError

__all__ = ["selector_images", "associated_decomposition"]


def selector_images(
    decompositions: Sequence[TreeDecomposition],
    max_images: int = 100_000,
) -> list[frozenset]:
    """All distinct images ``{β(T, χ) : (T, χ)}`` of bag selectors.

    Each image is a frozenset of bags (each bag a frozenset of variables),
    and only the ``⊆``-*minimal* images are returned.  Minimal images are
    exactly what every consumer needs: ``max_β min_{B∈image}`` widths are
    attained on minimal images (dropping bags can only raise the inner min),
    and a PANDA model for ``B' ⊆ B`` is a fortiori a model for ``B`` (fewer
    targets is the stronger rule), so Cor. 7.13's Claim 1/2 argument goes
    through with a covering bag drawn from the minimal subimage.

    The frontier of distinct partial images is pruned to its minimal
    antichain after every decomposition — completions commute with ``⊆``, so
    every minimal final image descends from a minimal partial one.  That
    bounds the work by the antichain sizes times the decomposition count,
    not by ``prod |bags|`` (already ``2.7e8`` on the 6-cycle, where the
    minimal image count stays in the hundreds).

    Raises:
        DecompositionError: if the minimal frontier exceeds ``max_images``
            (pathological inputs).
    """
    if not decompositions:
        return []
    frontier: set[frozenset] = {frozenset()}
    for decomposition in decompositions:
        # An image already selecting a bag of this decomposition is kept
        # as-is (adding any other bag only yields a dominated superset).
        extended = set()
        for image in frontier:
            if image & decomposition.bag_set:
                extended.add(image)
            else:
                for bag in decomposition.bags:
                    extended.add(image | {bag})
        frontier = _minimal_antichain(extended)
        if len(frontier) > max_images:
            raise DecompositionError(
                f"distinct selector images exceed {max_images}; restrict "
                "the decomposition set"
            )
    return sorted(
        frontier, key=lambda img: tuple(sorted(tuple(sorted(b)) for b in img))
    )


def _minimal_antichain(images: set[frozenset]) -> set[frozenset]:
    """The ``⊆``-minimal elements of a family of bag sets."""
    by_size = sorted(images, key=len)
    minimal: list[frozenset] = []
    for image in by_size:
        if not any(kept <= image for kept in minimal):
            minimal.append(image)
    return set(minimal)


def associated_decomposition(
    decompositions: Sequence[TreeDecomposition],
    chosen: Iterable[frozenset],
) -> TreeDecomposition:
    """Claim 1 of Corollary 7.13: a decomposition all of whose bags are chosen.

    Given one chosen bag per selector image, some decomposition must have all
    its bags among the chosen ones — otherwise the "missed bags" would
    themselves form a selector image none of whose bags was chosen.

    Raises:
        DecompositionError: if no such decomposition exists (caller passed an
            invalid choice).
    """
    chosen_set = frozenset(chosen)
    for decomposition in decompositions:
        if all(bag in chosen_set for bag in decomposition.bags):
            return decomposition
    raise DecompositionError(
        "no decomposition has all bags among the chosen ones "
        "(violates Claim 1 of Cor. 7.13)"
    )
