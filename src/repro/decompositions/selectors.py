"""Bag selectors and their images (Lemma 7.12, Eq. 105).

The submodular width swaps ``min_{(T,χ)} max_t`` into ``max_β min_B`` over
*bag selectors* β — maps choosing one bag from every tree decomposition.  The
collection ``B`` of selector *images* (Eq. 105) is what both the width LPs and
the PANDA-based algorithm of Corollary 7.13 iterate over: each image becomes
the target set of one disjunctive datalog rule.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Sequence

from repro.decompositions.tree_decomposition import TreeDecomposition
from repro.exceptions import DecompositionError

__all__ = ["selector_images", "associated_decomposition"]


def selector_images(
    decompositions: Sequence[TreeDecomposition],
    max_images: int = 100_000,
) -> list[frozenset]:
    """All distinct images ``{β(T, χ) : (T, χ)}`` of bag selectors.

    Each image is a frozenset of bags (each bag a frozenset of variables).
    Images are deduplicated; the count is bounded by ``prod |bags|``.

    Raises:
        DecompositionError: if the selector space exceeds ``max_images``
            before deduplication (pathological inputs).
    """
    if not decompositions:
        return []
    total = 1
    for decomposition in decompositions:
        total *= len(decomposition.bags)
        if total > max_images:
            raise DecompositionError(
                f"selector space exceeds {max_images}; restrict the "
                "decomposition set"
            )
    images: dict[frozenset, None] = {}
    for choice in product(*(d.bags for d in decompositions)):
        images.setdefault(frozenset(choice), None)
    return sorted(
        images, key=lambda img: tuple(sorted(tuple(sorted(b)) for b in img))
    )


def associated_decomposition(
    decompositions: Sequence[TreeDecomposition],
    chosen: Iterable[frozenset],
) -> TreeDecomposition:
    """Claim 1 of Corollary 7.13: a decomposition all of whose bags are chosen.

    Given one chosen bag per selector image, some decomposition must have all
    its bags among the chosen ones — otherwise the "missed bags" would
    themselves form a selector image none of whose bags was chosen.

    Raises:
        DecompositionError: if no such decomposition exists (caller passed an
            invalid choice).
    """
    chosen_set = frozenset(chosen)
    for decomposition in decompositions:
        if all(bag in chosen_set for bag in decomposition.bags):
            return decomposition
    raise DecompositionError(
        "no decomposition has all bags among the chosen ones "
        "(violates Claim 1 of Cor. 7.13)"
    )
