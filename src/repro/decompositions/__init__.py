"""Tree decompositions: validity, enumeration, and bag selectors.

Architecture layer 3 support (see ``docs/architecture.md``) — the width
parameters and PANDA's selector images both enumerate decompositions
through here.  Contract: enumeration order is deterministic (sorted
bags), so downstream plan signatures never depend on hash order.
"""

from repro.decompositions.enumeration import (
    decomposition_from_order,
    prune_dominated,
    tree_decompositions,
)
from repro.decompositions.selectors import associated_decomposition, selector_images
from repro.decompositions.tree_decomposition import TreeDecomposition

__all__ = [
    "TreeDecomposition",
    "associated_decomposition",
    "decomposition_from_order",
    "prune_dominated",
    "selector_images",
    "tree_decompositions",
]
