"""Tree decompositions: validity, enumeration, and bag selectors."""

from repro.decompositions.enumeration import (
    decomposition_from_order,
    prune_dominated,
    tree_decompositions,
)
from repro.decompositions.selectors import associated_decomposition, selector_images
from repro.decompositions.tree_decomposition import TreeDecomposition

__all__ = [
    "TreeDecomposition",
    "associated_decomposition",
    "decomposition_from_order",
    "prune_dominated",
    "selector_images",
    "tree_decompositions",
]
