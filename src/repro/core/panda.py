"""PANDA — Proof-Assisted eNtropic Degree-Aware rule evaluation (Algorithm 1).

PANDA computes a *model* of a disjunctive datalog rule ``P`` within the time
predicted by the polymatroid bound (Eq. 9)::

    O~( N + poly(log N) · 2^{LogSizeBound_{Γn ∩ H_DC}(P)} ).

The pipeline (§6):

1. solve the maximin bound LP; its dual gives λ (Lemma 5.2) and a Shannon-flow
   inequality ``⟨λ, h⟩ <= ⟨δ, h⟩`` with witness ``(σ, μ)`` (Prop. 5.4);
2. build a proof sequence (Theorem 5.9);
3. interpret each proof step as a relational operation:

   ========================  =======================================
   submodularity  s_{I,J}    bookkeeping only (re-associate support)
   monotonicity   m_{X,Y}    projection ``Π_X`` of the guard
   decomposition  d_{Y,X}    Lemma 6.1 heavy/light partition, one
                             recursive branch per piece, union results
   composition    c_{X,Y}    the join ``Π_X(R) ⋈ Π_W(S)`` **if** its
                             static size bound fits the budget
                             (Case 4a), else the Lemma 5.11 truncation
                             + restart (Case 4b)
   ========================  =======================================

Invariants maintained per §6.1 (asserted in debug mode):

1. *degree support* — every positive ``δ_{Y|X}`` is supported by a degree
   constraint ``(Z, W, N_{W|Z})`` with ``Z ⊆ X``, ``W ⊆ Y``, ``W−Z = Y−X``,
   guarded by a live relation;
2. ``0 < ‖λ‖₁ <= 1``;
3. the potential ``Σ n(δ_{Y|X}) <= ‖λ‖₁ · OBJ``;
4. every supported ``δ_{Y|∅}`` has ``n_{Y|∅} <= OBJ``.

**Witness snapshots.**  Case 4b needs a witness of the inequality that remains
*mid-execution*.  :func:`repro.flows.construct_proof_sequence` records, per
emitted step, the evolved ``(σ_i, μ_i)`` of the Theorem 5.9 induction; a short
flow-conservation argument (each emitted move and each silent λ-payment /
surplus-discard preserves ``inflow(Z) − λ_Z`` contributions appropriately)
shows that this snapshot witnesses ``⟨λ, h⟩ <= ⟨δ_i, h⟩`` for PANDA's own
``δ_i``, which dominates the induction's working δ coordinate-wise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.bounds.polymatroid import BoundResult
from repro.core.constraints import ConstraintSet, log2_fraction
from repro.core.varmap import VarMap
from repro.datalog.rule import DisjunctiveRule, TargetModel
from repro.exceptions import PandaError
from repro.flows.inequality import FlowInequality, Witness
from repro.flows.proof_sequence import (
    COMPOSITION,
    DECOMPOSITION,
    MONOTONICITY,
    SUBMODULARITY,
    ProofStep,
    construct_proof_sequence,
    truncate,
)
from repro.relational.database import Database
from repro.relational.operators import (
    heavy_light_partition,
    natural_join,
    project,
    union,
)
from repro.relational.relation import Relation

__all__ = ["PandaResult", "PandaStats", "Support", "panda"]

_ZERO = Fraction(0)
_EMPTY = frozenset()

Pair = tuple[frozenset, frozenset]


@dataclass(frozen=True)
class Support:
    """The degree constraint supporting a positive δ coordinate (§6.1 inv. 1).

    Attributes:
        z: the constraint's conditioning set ``Z ⊆ X``.
        w: the constraint's determined set ``W ⊆ Y`` with ``W − Z = Y − X``.
        bound: ``N_{W|Z}``.
        guard: the live relation guarding the constraint.
    """

    z: frozenset
    w: frozenset
    bound: int
    guard: Relation

    @property
    def log_bound(self) -> Fraction:
        return log2_fraction(max(1, self.bound))

    def validate_for(self, pair: Pair) -> None:
        x, y = pair
        if not (self.z <= x and self.w <= y and self.w - self.z == y - x):
            raise PandaError(
                f"support (Z={sorted(self.z)}, W={sorted(self.w)}) does not "
                f"support δ pair (X={sorted(x)}, Y={sorted(y)})"
            )


@dataclass
class PandaStats:
    """Execution statistics (used by benchmarks and invariant tests)."""

    joins: int = 0
    projections: int = 0
    partitions: int = 0
    branches: int = 0
    restarts: int = 0
    steps_executed: int = 0
    base_cases: int = 0
    max_intermediate: int = 0
    intermediate_sizes: list = field(default_factory=list)

    def record_relation(self, relation: Relation) -> None:
        size = len(relation)
        self.intermediate_sizes.append(size)
        if size > self.max_intermediate:
            self.max_intermediate = size


@dataclass
class PandaResult:
    """Everything PANDA produced for one rule evaluation."""

    model: TargetModel
    bound: BoundResult
    stats: PandaStats
    proof_sequence_length: int

    @property
    def budget(self) -> float:
        """``2^{OBJ}`` — every intermediate relation is at most this large."""
        return 2.0 ** float(self.bound.log_value)  # reprolint: allow(RL-EXACT) -- presentation: float rendering of the exact bound; the exact Fraction stays in bound.log_value


@dataclass
class _Branch:
    """One recursive PANDA subproblem."""

    relations: list[Relation]
    delta: dict[Pair, Fraction]
    lam: dict[frozenset, Fraction]
    supports: dict[Pair, Support]
    steps: list  # list[(Fraction, ProofStep, Witness)]
    depth: int


class _PandaEngine:
    """Recursive executor of Algorithm 1 for a fixed rule and budget."""

    def __init__(
        self,
        universe: tuple[str, ...],
        targets: tuple[frozenset, ...],
        budget_log: Fraction,
        check_invariants: bool = True,
        max_restarts: int = 10_000,
    ) -> None:
        self.universe = universe
        self.targets = targets
        self.budget_log = budget_log
        self.check_invariants = check_invariants
        self.max_restarts = max_restarts
        self.stats = PandaStats()
        #: slack absorbing log2 rationalization of non-power-of-two bounds.
        self.budget_slack = Fraction(1, 1_000_000)
        #: the mask kernel's interning map: every subset frozenset used as a
        #: δ/support dict key is canonicalized through it, so equal keys are
        #: the *same* object (cached hash, identity-fast comparisons).
        self.varmap = VarMap.of(universe)

    # -- helpers ----------------------------------------------------------------------

    def _intern(self, subset: frozenset) -> frozenset:
        vm = self.varmap
        return vm.set_of(vm.mask_of(subset))

    def intern_step(self, step: ProofStep) -> ProofStep:
        """Re-key a proof step's set parameters through the interning map."""
        return ProofStep(
            step.kind, self._intern(step.first), self._intern(step.second)
        )

    def _unconditioned_table(self, support: Support) -> Relation:
        """The guard restricted to exactly ``W`` attributes (for X = ∅ pairs)."""
        if support.guard.attributes == support.w:
            return support.guard
        table = project(support.guard, support.w)
        self.stats.projections += 1
        self.stats.record_relation(table)
        return table

    def _put_support(
        self, supports: dict[Pair, Support], pair: Pair, candidate: Support
    ) -> None:
        """Install a support, keeping the smaller bound on conflict (§6.1)."""
        candidate.validate_for(pair)
        current = supports.get(pair)
        if current is None or candidate.bound < current.bound:
            supports[pair] = candidate

    def _assert_invariants(self, branch: _Branch) -> None:
        if not self.check_invariants:
            return
        lam_norm = sum(branch.lam.values(), _ZERO)
        if not (_ZERO < lam_norm <= 1):
            raise PandaError(f"invariant 2 violated: ‖λ‖ = {lam_norm}")
        potential = _ZERO
        for pair, value in branch.delta.items():
            if value <= _ZERO:
                continue
            support = branch.supports.get(pair)
            if support is None:
                raise PandaError(f"invariant 1 violated: δ{pair} unsupported")
            support.validate_for(pair)
            potential += value * support.log_bound
            if pair[0] == _EMPTY and support.log_bound > self.budget_log + self.budget_slack:
                raise PandaError(
                    f"invariant 4 violated: n({sorted(pair[1])}|∅) = "
                    f"{support.log_bound} > OBJ = {self.budget_log}"
                )
        if potential > lam_norm * self.budget_log + self.budget_slack:
            raise PandaError(
                f"invariant 3 violated: potential {potential} > "
                f"‖λ‖·OBJ = {lam_norm * self.budget_log}"
            )

    # -- the recursion ------------------------------------------------------------------

    def run(self, branch: _Branch) -> dict[frozenset, Relation]:
        """Execute one subproblem; returns produced tables by target."""
        self._assert_invariants(branch)

        # Base case (lines 1-2): a relation whose attribute set is a target.
        for relation in branch.relations:
            if relation.attributes in self.targets:
                self.stats.base_cases += 1
                return {relation.attributes: relation}

        if not branch.steps:
            return self._finalize(branch)

        weight, step, witness = branch.steps[0]
        rest = branch.steps[1:]
        self.stats.steps_executed += 1

        if step.kind == SUBMODULARITY:
            return self._case_submodularity(branch, weight, step, rest)
        if step.kind == MONOTONICITY:
            return self._case_monotonicity(branch, weight, step, rest)
        if step.kind == DECOMPOSITION:
            return self._case_decomposition(branch, weight, step, rest)
        if step.kind == COMPOSITION:
            return self._case_composition(branch, weight, step, witness, rest)
        raise PandaError(f"unknown proof step kind {step.kind!r}")

    def _finalize(self, branch: _Branch) -> dict[frozenset, Relation]:
        """Materialize a target table once the proof sequence is spent.

        At exhaustion ``δ_ℓ >= λ`` (Definition 5.7 (4)), so some target ``B``
        with ``λ_B > 0`` has ``δ_{B|∅} >= λ_B > 0`` and therefore (invariant 1)
        an unconditioned support whose guard ``R`` satisfies ``B ⊆ attrs(R)``
        and ``|Π_B(R)| <= N_{B|∅} <= 2^OBJ`` (invariant 4).  Every composition
        and partition step keeps each live table a superset of the projection
        of the branch's body tuples, so ``Π_B(R)`` covers the branch — a valid
        target table within budget.
        """
        for target in self.targets:
            if branch.lam.get(target, _ZERO) <= _ZERO:
                continue
            pair = (_EMPTY, target)
            if branch.delta.get(pair, _ZERO) < branch.lam[target]:
                continue
            support = branch.supports.get(pair)
            if support is None:
                continue
            table = self._unconditioned_table(support)
            return {target: table}
        raise PandaError(
            "proof sequence exhausted without reaching a target "
            "(theory violation)"
        )

    # -- Case 1: submodularity (bookkeeping only) -----------------------------------------

    def _case_submodularity(
        self, branch: _Branch, weight: Fraction, step: ProofStep, rest: list
    ) -> dict[frozenset, Relation]:
        i, j = step.first, step.second
        consumed = (i & j, i)
        produced = (j, i | j)
        delta = _apply(branch.delta, step, weight)
        supports = dict(branch.supports)
        support = branch.supports.get(consumed)
        if support is None:
            raise PandaError(f"submodularity step without support at {consumed}")
        # W − Z = I − I∩J = (I∪J) − J, so the same constraint supports the
        # produced coordinate (Fig. 8 (b)).
        self._put_support(supports, produced, support)
        return self.run(
            _Branch(branch.relations, delta, branch.lam, supports, rest, branch.depth)
        )

    # -- Case 2: monotonicity (projection) -------------------------------------------------

    def _case_monotonicity(
        self, branch: _Branch, weight: Fraction, step: ProofStep, rest: list
    ) -> dict[frozenset, Relation]:
        x, y = step.first, step.second
        support = branch.supports.get((_EMPTY, y))
        if support is None:
            raise PandaError(f"monotonicity step without support at (∅, {sorted(y)})")
        table = self._unconditioned_table(support)
        delta = _apply(branch.delta, step, weight)
        supports = dict(branch.supports)
        relations = list(branch.relations)
        if x != _EMPTY:
            projection = project(table, x, name=f"Π{{{','.join(sorted(x))}}}")
            self.stats.projections += 1
            self.stats.record_relation(projection)
            relations.append(projection)
            self._put_support(
                supports,
                (_EMPTY, x),
                Support(_EMPTY, x, max(1, len(projection)), projection),
            )
        return self.run(
            _Branch(relations, delta, branch.lam, supports, rest, branch.depth)
        )

    # -- Case 3: decomposition (heavy/light partition + branching) ---------------------------

    def _case_decomposition(
        self, branch: _Branch, weight: Fraction, step: ProofStep, rest: list
    ) -> dict[frozenset, Relation]:
        y, x = step.first, step.second
        support = branch.supports.get((_EMPTY, y))
        if support is None:
            raise PandaError(f"decomposition step without support at (∅, {sorted(y)})")
        table = self._unconditioned_table(support)
        delta = _apply(branch.delta, step, weight)

        if x == _EMPTY:
            # Degenerate split h(Y) -> h(∅) + h(Y|∅): pure bookkeeping; the
            # produced (∅, Y) coordinate keeps the same support.
            supports = dict(branch.supports)
            return self.run(
                _Branch(branch.relations, delta, branch.lam, supports, rest, branch.depth)
            )

        pieces = heavy_light_partition(table, x)
        self.stats.partitions += 1
        results: dict[frozenset, Relation] = {}
        for piece in pieces:
            self.stats.branches += 1
            self.stats.record_relation(piece.relation)
            supports = dict(branch.supports)
            self._put_support(
                supports,
                (_EMPTY, x),
                Support(_EMPTY, x, max(1, piece.x_count), piece.relation),
            )
            self._put_support(
                supports,
                (x, y),
                Support(x, y, max(1, piece.y_degree), piece.relation),
            )
            sub = _Branch(
                branch.relations + [piece.relation],
                dict(delta),
                branch.lam,
                supports,
                rest,
                branch.depth + 1,
            )
            for target, relation in self.run(sub).items():
                if target in results:
                    results[target] = union(
                        results[target], relation, name=relation.name
                    )
                else:
                    results[target] = relation
        if not pieces:
            # Empty guard: nothing to cover in this branch.
            return {}
        return results

    # -- Case 4: composition (join or truncate+restart) ---------------------------------------

    def _case_composition(
        self,
        branch: _Branch,
        weight: Fraction,
        step: ProofStep,
        witness: Witness,
        rest: list,
    ) -> dict[frozenset, Relation]:
        x, y = step.first, step.second
        support_x = branch.supports.get((_EMPTY, x))
        support_cond = branch.supports.get((x, y))
        if support_x is None or support_cond is None:
            raise PandaError(
                f"composition step without supports at (∅,{sorted(x)}) / "
                f"({sorted(x)},{sorted(y)})"
            )
        joined_log = support_x.log_bound + support_cond.log_bound
        if joined_log <= self.budget_log + self.budget_slack:
            return self._case_4a(
                branch, weight, step, rest, support_x, support_cond
            )
        return self._case_4b(branch, weight, step, witness)

    def _case_4a(
        self,
        branch: _Branch,
        weight: Fraction,
        step: ProofStep,
        rest: list,
        support_x: Support,
        support_cond: Support,
    ) -> dict[frozenset, Relation]:
        x, y = step.first, step.second
        left = self._unconditioned_table(support_x)
        right = project(support_cond.guard, support_cond.w) if (
            support_cond.guard.attributes != support_cond.w
        ) else support_cond.guard
        joined = natural_join(
            left, right, name=f"T{{{','.join(sorted(y))}}}"
        )
        self.stats.joins += 1
        self.stats.record_relation(joined)
        if joined.attributes != y:
            raise PandaError(
                f"composition produced schema {sorted(joined.attributes)}, "
                f"expected {sorted(y)}"
            )
        delta = _apply(branch.delta, step, weight)
        supports = dict(branch.supports)
        self._put_support(
            supports, (_EMPTY, y), Support(_EMPTY, y, max(1, len(joined)), joined)
        )
        return self.run(
            _Branch(
                branch.relations + [joined],
                delta,
                branch.lam,
                supports,
                rest,
                branch.depth,
            )
        )

    def _case_4b(
        self,
        branch: _Branch,
        weight: Fraction,
        step: ProofStep,
        witness: Witness,
    ) -> dict[frozenset, Relation]:
        if self.stats.restarts >= self.max_restarts:
            raise PandaError(f"exceeded {self.max_restarts} Case 4b restarts")
        self.stats.restarts += 1
        x, y = step.first, step.second
        # δ'' = δ + w·c_{X,Y}; composition preserves inflow, so the recorded
        # witness snapshot remains valid.
        delta2 = _apply(branch.delta, step, weight)
        ineq2 = FlowInequality(self.universe, dict(branch.lam), delta2)
        truncated_ineq, truncated_witness = truncate(ineq2, witness, y, weight)
        if truncated_ineq.lam_norm <= _ZERO:
            raise PandaError(
                "Case 4b truncation annihilated λ (contradicts Prop. 6.2)"
            )
        witness_log: list[Witness] = []
        sequence = construct_proof_sequence(
            truncated_ineq, truncated_witness, witness_log=witness_log
        )
        steps = [
            (ws.weight, self.intern_step(ws.step), snap)
            for ws, snap in zip(sequence, witness_log)
        ]
        supports = {
            pair: branch.supports[pair]
            for pair in truncated_ineq.delta
            if pair in branch.supports
        }
        missing = [p for p in truncated_ineq.delta if p not in supports]
        if missing:
            raise PandaError(f"restart lost supports for {missing}")
        return self.run(
            _Branch(
                branch.relations,
                dict(truncated_ineq.delta),
                dict(truncated_ineq.lam),
                supports,
                steps,
                branch.depth,
            )
        )


def _apply(delta: dict[Pair, Fraction], step: ProofStep, weight: Fraction) -> dict[Pair, Fraction]:
    """``δ + weight · step`` with non-negativity enforcement."""
    out = dict(delta)
    for pair, coef in step.vector().items():
        value = out.get(pair, _ZERO) + weight * coef
        if value < _ZERO:
            raise PandaError(
                f"proof step {step} drives δ{pair} negative ({value})"
            )
        if value == _ZERO:
            out.pop(pair, None)
        else:
            out[pair] = value
    return out


def panda(
    rule: DisjunctiveRule,
    database: Database,
    constraints: ConstraintSet | None = None,
    backend: str = "exact",
    check_invariants: bool = True,
    planner=None,
    plan=None,
) -> PandaResult:
    """Evaluate a disjunctive datalog rule with PANDA (Theorem 1.7).

    Args:
        rule: the rule ``P`` to compute a model of.
        database: the input database; must guard every constraint.
        constraints: degree constraints ``DC``.  Defaults to the cardinality
            constraints of the input relations.
        backend: LP backend for the bound computation (``"exact"`` needed for
            exact rational proof sequences; the default).
        check_invariants: assert the §6.1 invariants at every recursive call.
        planner: an optional :class:`repro.planner.Planner`; when given, the
            bound LP and proof sequence come from its plan cache (shared
            across bags/images/databases) instead of being rebuilt.
        plan: an optional precomputed :class:`repro.planner.PandaPlan` for
            exactly this (rule, constraints); overrides ``planner``.

    Returns:
        A :class:`PandaResult` whose ``model`` is a valid model of ``P`` with
        every table of size at most ``2^{OBJ}``.

    Raises:
        PandaError: if the database violates a constraint, if a supplied plan
            does not match the rule, or the bound is degenerate (zero — every
            feasible polymatroid pins some target to a single tuple, a case
            the paper does not treat algorithmically).
    """
    from repro.planner.engine import build_panda_plan, constraints_fingerprint

    if constraints is None:
        constraints = database.extract_cardinalities()
    universe = tuple(sorted(rule.variable_set))

    if plan is None:
        if planner is not None:
            plan = planner.plan_rule(
                universe, rule.targets, constraints, backend=backend
            )
        else:
            plan = build_panda_plan(
                universe, list(rule.targets), constraints, backend=backend
            )
    if plan.universe != universe or set(plan.targets) != set(rule.targets):
        raise PandaError(
            f"plan is for {plan.universe}/{sorted(map(sorted, plan.targets))}, "
            f"not this rule's {universe}/{sorted(map(sorted, rule.targets))}"
        )
    if plan.constraints_key != constraints_fingerprint(constraints):
        raise PandaError(
            "plan was built under different degree constraints than this "
            "call's; its budget and proof sequence do not apply — replan"
        )

    bound = plan.bound
    if plan.degenerate:
        # Degenerate bound: every feasible polymatroid pins some target to a
        # single tuple, so Lemma 5.2's positive-optimum requirement fails.
        # The inputs are then tiny/heavily constrained; fall back to the
        # Lemma 4.1 scan model (all tables of size |P(D)| <= 1 ... the bound
        # guarantees a 1-tuple model exists but gives no proof sequence).
        model = rule.scan_model(database)
        return PandaResult(
            model=model,
            bound=bound,
            stats=PandaStats(),
            proof_sequence_length=0,
        )
    ineq = plan.ineq

    # Resolve guards for the initial supports (degree-support invariant) —
    # the only data-dependent planning step, re-run per database.
    supports: dict[Pair, Support] = {}
    for pair, log_constraint in plan.log_supports.items():
        origin = log_constraint.origin
        if origin is None:
            raise PandaError(
                f"constraint {log_constraint} has no integer origin; PANDA "
                "needs guarded degree constraints"
            )
        guard = database.find_guard(origin)
        if guard is None:
            raise PandaError(f"database does not guard {origin}")
        supports[pair] = Support(origin.x, origin.y, origin.bound, guard)

    engine = _PandaEngine(
        universe,
        tuple(rule.targets),
        budget_log=bound.log_value,
        check_invariants=check_invariants,
    )
    steps = [
        (weight, engine.intern_step(step), snap)
        for weight, step, snap in plan.steps
    ]
    base_relations = [atom.bind(database) for atom in rule.body]
    root = _Branch(
        relations=base_relations,
        delta=dict(ineq.delta),
        lam=dict(ineq.lam),
        supports=supports,
        steps=steps,
        depth=0,
    )
    produced = engine.run(root)

    tables = []
    for target in rule.targets:
        attrs = tuple(sorted(target))
        if target in produced:
            # Share the columnar storage; only the display name changes.
            tables.append(produced[target].renamed(f"T_{''.join(attrs)}"))
        else:
            tables.append(Relation(f"T_{''.join(attrs)}", attrs, ()))
    model = TargetModel(tuple(tables))
    return PandaResult(
        model=model,
        bound=bound,
        stats=engine.stats,
        proof_sequence_length=len(plan.steps),
    )
