"""Degree, cardinality, and functional-dependency constraints (Def. 1.1, 2.10).

A *degree constraint* is a triple ``(X, Y, N_{Y|X})`` with ``X ⊂ Y ⊆ [n]``,
asserting that in some guard relation ``R_F`` (``Y ⊆ F``) every ``X``-tuple
has at most ``N_{Y|X}`` distinct ``Y``-extensions:

    deg_F(A_Y | A_X) = max_t |Π_{A_Y}(σ_{A_X = t}(R_F))|  <=  N_{Y|X}.

Special cases:

* cardinality constraint ``|R_F| <= N_F``       — ``X = ∅, Y = F``;
* functional dependency ``A_X -> A_Y``          — ``N_{X∪Y|X} = 1``.

All LP work happens in log₂-space; :func:`log2_fraction` converts ``N`` to an
exact rational when ``N`` is a power of two (the benchmarks use power-of-two
sizes precisely so the whole pipeline stays exact) and to a tight rational
approximation otherwise.  The approximation never threatens *correctness*:
Shannon-flow validity depends only on dual feasibility, which is independent
of the objective coefficients (see Prop. 5.4 and DESIGN.md §4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from typing import Iterable, Iterator

from repro.exceptions import ConstraintError

__all__ = [
    "DegreeConstraint",
    "ConstraintSet",
    "cardinality",
    "functional_dependency",
    "log2_fraction",
]

#: Denominator cap for non-power-of-two log approximations.
_LOG_DENOMINATOR_LIMIT = 10**9


@lru_cache(maxsize=4096)
def log2_fraction(n: int) -> Fraction:
    """Return ``log2(n)`` as a Fraction (exact when ``n`` is a power of two).

    Cached: PANDA's budget checks evaluate the same guard bounds thousands of
    times per run, and ``limit_denominator`` is not cheap.

    Raises:
        ConstraintError: if ``n < 1``.
    """
    if n < 1:
        raise ConstraintError(f"bounds must be >= 1, got {n}")
    if n & (n - 1) == 0:
        return Fraction(n.bit_length() - 1)
    return Fraction(math.log2(n)).limit_denominator(_LOG_DENOMINATOR_LIMIT)


@dataclass(frozen=True, order=True)
class DegreeConstraint:
    """A degree constraint ``(X, Y, N_{Y|X})``.

    ``order=True`` sorts constraints deterministically (by the sorted-key
    fields below), which keeps LP row order — and hence simplex pivots and
    proof sequences — reproducible.

    Attributes:
        x_key: sorted tuple of the conditioning variables ``X``.
        y_key: sorted tuple of the determined variables ``Y``.
        bound: the integer bound ``N_{Y|X} >= 1``.
    """

    x_key: tuple[str, ...]
    y_key: tuple[str, ...]
    bound: int

    def __post_init__(self) -> None:
        x, y = frozenset(self.x_key), frozenset(self.y_key)
        if tuple(sorted(self.x_key)) != self.x_key or tuple(sorted(self.y_key)) != self.y_key:
            raise ConstraintError("x_key/y_key must be sorted tuples; use .make()")
        if not x < y:
            raise ConstraintError(
                f"degree constraint needs X ⊂ Y, got X={sorted(x)} Y={sorted(y)}"
            )
        if self.bound < 1:
            raise ConstraintError(f"bound must be >= 1, got {self.bound}")

    @classmethod
    def make(cls, x: Iterable[str], y: Iterable[str], bound: int) -> "DegreeConstraint":
        """Build a constraint from arbitrary iterables of variable names."""
        return cls(tuple(sorted(set(x))), tuple(sorted(set(y))), bound)

    # -- views ----------------------------------------------------------------

    @property
    def x(self) -> frozenset:
        """The conditioning set ``X`` (empty for cardinality constraints)."""
        return frozenset(self.x_key)

    @property
    def y(self) -> frozenset:
        """The determined set ``Y``."""
        return frozenset(self.y_key)

    @property
    def log_bound(self) -> Fraction:
        """``n_{Y|X} = log2 N_{Y|X}`` as an (exact when possible) rational."""
        return log2_fraction(self.bound)

    @property
    def is_cardinality(self) -> bool:
        """True for ``(∅, F, N_F)`` constraints."""
        return not self.x_key

    @property
    def is_functional_dependency(self) -> bool:
        """True for degree bound 1, i.e. the FD ``A_X -> A_Y``."""
        return self.bound == 1

    def __str__(self) -> str:
        x = ",".join(self.x_key) or "∅"
        y = ",".join(self.y_key)
        return f"deg({y}|{x}) <= {self.bound}"


def cardinality(variables: Iterable[str], bound: int) -> DegreeConstraint:
    """Cardinality constraint ``|R_F| <= bound`` on the atom over ``variables``."""
    return DegreeConstraint.make((), variables, bound)


def functional_dependency(x: Iterable[str], y: Iterable[str]) -> DegreeConstraint:
    """The FD ``A_X -> A_Y`` as the degree constraint ``(X, X∪Y, 1)``."""
    x_set = frozenset(x)
    y_set = frozenset(y) | x_set
    return DegreeConstraint.make(x_set, y_set, 1)


class ConstraintSet:
    """An ordered collection ``DC`` of degree constraints.

    Duplicate ``(X, Y)`` pairs are allowed on input but only the smallest
    bound per pair is kept: larger bounds are dominated both in the LP (only
    the tightest row can be binding) and in PANDA (a guard for the tightest
    bound guards the looser ones).
    """

    def __init__(self, constraints: Iterable[DegreeConstraint] = ()) -> None:
        best: dict[tuple[tuple[str, ...], tuple[str, ...]], DegreeConstraint] = {}
        for constraint in constraints:
            key = (constraint.x_key, constraint.y_key)
            current = best.get(key)
            if current is None or constraint.bound < current.bound:
                best[key] = constraint
        self._constraints: tuple[DegreeConstraint, ...] = tuple(
            sorted(best.values())
        )

    # -- container protocol -----------------------------------------------------

    def __iter__(self) -> Iterator[DegreeConstraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __contains__(self, constraint: DegreeConstraint) -> bool:
        return constraint in self._constraints

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstraintSet):
            return NotImplemented
        return self._constraints == other._constraints

    def __hash__(self) -> int:
        return hash(self._constraints)

    # -- queries ------------------------------------------------------------------

    def variables(self) -> frozenset:
        """All variables mentioned by some constraint."""
        out: set[str] = set()
        for constraint in self._constraints:
            out |= constraint.y
        return frozenset(out)

    def lookup(self, x: frozenset, y: frozenset) -> DegreeConstraint | None:
        """Return the (tightest) constraint with exactly this ``(X, Y)``, if any."""
        for constraint in self._constraints:
            if constraint.x == x and constraint.y == y:
                return constraint
        return None

    def cardinalities(self) -> "ConstraintSet":
        """The sub-collection of cardinality constraints."""
        return ConstraintSet(c for c in self._constraints if c.is_cardinality)

    def only_cardinalities(self) -> bool:
        return all(c.is_cardinality for c in self._constraints)

    def with_constraint(self, constraint: DegreeConstraint) -> "ConstraintSet":
        """A new set with one more constraint (tightest-per-pair kept)."""
        return ConstraintSet((*self._constraints, constraint))

    def with_constraints(self, extra: Iterable[DegreeConstraint]) -> "ConstraintSet":
        return ConstraintSet((*self._constraints, *extra))

    def scaled(self, k: int) -> "ConstraintSet":
        """The scaled-up constraints ``DC × k`` of §4.2 (all bounds to the k-th power).

        The paper multiplies log-bounds by ``k``; on integer bounds that is
        raising ``N`` to the ``k``-th power.
        """
        return ConstraintSet(
            DegreeConstraint(c.x_key, c.y_key, c.bound**k) for c in self._constraints
        )

    def max_finite_bound(self) -> int:
        """``N`` of Eq. (27): the largest bound among the constraints (or 1)."""
        return max((c.bound for c in self._constraints), default=1)

    def __str__(self) -> str:
        return "{" + "; ".join(str(c) for c in self._constraints) + "}"

    def __repr__(self) -> str:
        return f"ConstraintSet({list(self._constraints)!r})"
