"""Core: hypergraphs, constraints, set functions, PANDA, and query plans.

Architecture layers 1 and 4 (see ``docs/architecture.md``): the mask
kernel — variables interned to bit positions (:mod:`~repro.core.varmap`),
set functions as flat mask-indexed tables
(:mod:`~repro.core.setfunctions`) — plus the PANDA algorithm
(:mod:`~repro.core.panda`) and the query-plan drivers
(:mod:`~repro.core.query_plans`).  Contract: proof/witness paths are
exact ``Fraction`` end to end, and subset iteration orders are
deterministic (size-lexicographic), never hash-dependent.
"""

from repro.core.constraints import (
    ConstraintSet,
    DegreeConstraint,
    cardinality,
    functional_dependency,
    log2_fraction,
)
from repro.core.hypergraph import Hypergraph, powerset
from repro.core.setfunctions import (
    SetFunction,
    elemental_inequalities,
    elemental_inequality_mask_rows,
)
from repro.core.varmap import VarMap

__all__ = [
    "ConstraintSet",
    "DegreeConstraint",
    "Hypergraph",
    "SetFunction",
    "VarMap",
    "cardinality",
    "elemental_inequalities",
    "elemental_inequality_mask_rows",
    "functional_dependency",
    "log2_fraction",
    "powerset",
]
