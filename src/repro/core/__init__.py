"""Core: hypergraphs, constraints, set functions, PANDA, and query plans."""

from repro.core.constraints import (
    ConstraintSet,
    DegreeConstraint,
    cardinality,
    functional_dependency,
    log2_fraction,
)
from repro.core.hypergraph import Hypergraph, powerset
from repro.core.setfunctions import SetFunction, elemental_inequalities

__all__ = [
    "ConstraintSet",
    "DegreeConstraint",
    "Hypergraph",
    "SetFunction",
    "cardinality",
    "elemental_inequalities",
    "functional_dependency",
    "log2_fraction",
    "powerset",
]
