"""Core: hypergraphs, constraints, set functions, PANDA, and query plans."""

from repro.core.constraints import (
    ConstraintSet,
    DegreeConstraint,
    cardinality,
    functional_dependency,
    log2_fraction,
)
from repro.core.hypergraph import Hypergraph, powerset
from repro.core.setfunctions import (
    SetFunction,
    elemental_inequalities,
    elemental_inequality_mask_rows,
)
from repro.core.varmap import VarMap

__all__ = [
    "ConstraintSet",
    "DegreeConstraint",
    "Hypergraph",
    "SetFunction",
    "VarMap",
    "cardinality",
    "elemental_inequalities",
    "elemental_inequality_mask_rows",
    "functional_dependency",
    "log2_fraction",
    "powerset",
]
