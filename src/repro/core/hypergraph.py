"""Multi-hypergraphs of conjunctive queries (paper §2).

A query ``Q(A_[n]) <- /\\_{F in E} R_F(A_F)`` is associated with the
multi-hypergraph ``H = ([n], E)``; several atoms may share the same variable
set, so edges are stored as an ordered sequence, not a set.  Vertices are
arbitrary strings (the paper's ``A_1 ... A_n``).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain, combinations
from typing import Iterable, Iterator

from repro.core.varmap import VarMap
from repro.exceptions import QueryError

__all__ = ["Hypergraph", "VarSet", "powerset", "nonempty_subsets"]

#: A set of query variables.  Used pervasively as LP-variable names and bag ids.
VarSet = frozenset


def powerset(universe: Iterable[str]) -> Iterator[frozenset]:
    """Yield all subsets of ``universe`` (including the empty set)."""
    items = tuple(universe)
    return (
        frozenset(combo)
        for combo in chain.from_iterable(
            combinations(items, r) for r in range(len(items) + 1)
        )
    )


def nonempty_subsets(universe: Iterable[str]) -> Iterator[frozenset]:
    """Yield all non-empty subsets of ``universe``."""
    return (s for s in powerset(universe) if s)


@dataclass(frozen=True)
class Hypergraph:
    """A multi-hypergraph ``H = (V, E)`` with ordered, possibly repeated edges.

    Attributes:
        vertices: the query variables, in a fixed display order.
        edges: the atom variable-sets, one per atom, in atom order.
    """

    vertices: tuple[str, ...]
    edges: tuple[frozenset, ...]

    def __post_init__(self) -> None:
        vertex_set = set(self.vertices)
        if len(vertex_set) != len(self.vertices):
            raise QueryError("duplicate vertices in hypergraph")
        for edge in self.edges:
            extra = edge - vertex_set
            if extra:
                raise QueryError(f"edge {sorted(edge)} uses unknown vertices {sorted(extra)}")

    @classmethod
    def from_edges(cls, edges: Iterable[Iterable[str]]) -> "Hypergraph":
        """Build a hypergraph whose vertex order is first-appearance order."""
        edge_sets = [frozenset(edge) for edge in edges]
        seen: dict[str, None] = {}
        for edge in edge_sets:
            for v in sorted(edge):
                seen.setdefault(v, None)
        return cls(tuple(seen), tuple(edge_sets))

    # -- basic accessors --------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self.vertices)

    @property
    def vertex_set(self) -> frozenset:
        return frozenset(self.vertices)

    # -- mask helpers (the bitmask set-function kernel) ---------------------------

    @property
    def varmap(self) -> VarMap:
        """The interned vertex-name ↔ bit-position map for this vertex order."""
        return VarMap.of(self.vertices)

    def mask_of(self, subset: Iterable[str]) -> int:
        """The bit mask of a vertex subset (see :class:`~repro.core.varmap.VarMap`)."""
        return self.varmap.mask_of(subset)

    def set_of(self, mask: int) -> frozenset:
        """The vertex subset of a bit mask."""
        return self.varmap.set_of(mask)

    def edge_masks(self) -> tuple[int, ...]:
        """The edges as bit masks, in atom order."""
        vm = self.varmap
        return tuple(vm.mask_of(edge) for edge in self.edges)

    def edge_multiset(self) -> dict[frozenset, int]:
        """Edge multiplicities (a hyperedge may support several atoms)."""
        counts: dict[frozenset, int] = {}
        for edge in self.edges:
            counts[edge] = counts.get(edge, 0) + 1
        return counts

    def distinct_edges(self) -> tuple[frozenset, ...]:
        """Distinct hyperedges, in first-appearance order."""
        seen: dict[frozenset, None] = {}
        for edge in self.edges:
            seen.setdefault(edge, None)
        return tuple(seen)

    def incident_edges(self, vertex: str) -> tuple[frozenset, ...]:
        """All edges containing ``vertex``."""
        return tuple(edge for edge in self.edges if vertex in edge)

    def neighbours(self, vertex: str) -> frozenset:
        """All vertices sharing an edge with ``vertex`` (excluding itself)."""
        joined: set[str] = set()
        for edge in self.edges:
            if vertex in edge:
                joined |= edge
        joined.discard(vertex)
        return frozenset(joined)

    # -- derived hypergraphs ------------------------------------------------------

    def restrict(self, subset: Iterable[str]) -> "Hypergraph":
        """The restriction ``H_B = (B, {F ∩ B | F in E})`` of Definition 2.7.

        Empty intersections are dropped (they cover nothing).
        """
        bag = frozenset(subset)
        order = tuple(v for v in self.vertices if v in bag)
        restricted = tuple(
            edge & bag for edge in self.edges if edge & bag
        )
        return Hypergraph(order, restricted)

    def is_connected(self) -> bool:
        """True if the hypergraph has a single connected component."""
        if not self.vertices:
            return True
        seen = {self.vertices[0]}
        frontier = [self.vertices[0]]
        while frontier:
            v = frontier.pop()
            for u in self.neighbours(v):
                if u not in seen:
                    seen.add(u)
                    frontier.append(u)
        return len(seen) == len(self.vertices)

    def covers(self, subset: frozenset) -> bool:
        """True if some edge contains ``subset``."""
        return any(subset <= edge for edge in self.edges)

    def restrict_mask(self, mask: int) -> "Hypergraph":
        """Mask-native :meth:`restrict`: ``H_B`` for ``B`` given as a bit mask."""
        vm = self.varmap
        order = tuple(v for i, v in enumerate(self.vertices) if mask >> i & 1)
        restricted = tuple(
            vm.set_of(edge_mask & mask)
            for edge_mask in self.edge_masks()
            if edge_mask & mask
        )
        return Hypergraph(order, restricted)

    def __str__(self) -> str:
        edges = ", ".join("{" + ",".join(sorted(e)) + "}" for e in self.edges)
        return f"Hypergraph(V={{{','.join(self.vertices)}}}, E=[{edges}])"
