"""PANDA-based query evaluation (Corollaries 7.10, 7.11, 7.13 / Theorem 1.9).

Three PANDA drivers plus the traditional baseline:

* :func:`panda_full_query` — a full (or Boolean) CQ at the degree-aware
  polymatroid bound DAPB (Cor. 7.10): single-target PANDA, then semijoin
  reduction with every input atom, which makes the superset exact;
* :func:`dafhtw_plan` — the best tree decomposition under degree constraints;
  every bag materialized by single-target PANDA, then Yannakakis (Cor. 7.11);
* :func:`dasubw_plan` — the adaptive algorithm of Cor. 7.13: one disjunctive
  rule per bag-selector image, PANDA on each, per-bag unions, semijoin
  reduction, then Yannakakis on every candidate decomposition, with results
  unioned (or OR-ed for Boolean queries);
* :func:`tree_decomposition_plan` — the non-adaptive baseline of Example
  1.10: pick ONE decomposition, materialize every bag by a worst-case-optimal
  join of the restricted atoms, then Yannakakis.  On the 4-cycle's worst-case
  instance this pays ``Θ(N²)`` while :func:`dasubw_plan` stays at
  ``O~(N^{3/2})``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.constraints import ConstraintSet
from repro.core.panda import PandaResult, panda
from repro.datalog.conjunctive import ConjunctiveQuery
from repro.datalog.rule import DisjunctiveRule
from repro.decompositions.enumeration import tree_decompositions
from repro.decompositions.selectors import selector_images
from repro.decompositions.tree_decomposition import TreeDecomposition
from repro.exceptions import QueryError
from repro.relational.database import Database
from repro.relational.operators import project, semijoin, union
from repro.relational.relation import Relation
from repro.relational.wcoj import generic_join
from repro.relational.yannakakis import acyclic_boolean, acyclic_join, join_tree_from_bags

__all__ = [
    "PlanResult",
    "panda_full_query",
    "dafhtw_plan",
    "dasubw_plan",
    "proper_query_plan",
    "tree_decomposition_plan",
]


@dataclass
class PlanResult:
    """Outcome of a query plan.

    Attributes:
        relation: the query answer (empty-schema relation for Boolean).
        boolean: the Boolean answer (non-emptiness).
        panda_runs: the PANDA invocations performed, for inspection.
        decompositions_used: the tree decompositions joined at the end.
    """

    relation: Relation
    boolean: bool
    panda_runs: list[PandaResult] = field(default_factory=list)
    decompositions_used: list[TreeDecomposition] = field(default_factory=list)


def _new_planner():
    """A fresh per-call planner: plans are shared across the bags, selector
    images, and decompositions of this one driver invocation.  Pass an
    explicit planner (or use :class:`repro.planner.QueryEngine`) to also
    share plans across invocations and databases."""
    from repro.planner import Planner

    return Planner()


def _best_decomposition(
    planner,
    hypergraph,
    constraints: ConstraintSet,
    decompositions: Sequence[TreeDecomposition],
    backend: str,
) -> TreeDecomposition:
    """The decomposition minimizing its worst bag's polymatroid bound.

    All bag LPs go through the planner's shared batched solver, so repeated
    bags (within and across driver calls) solve once.
    """
    solver = planner.bound_solver(hypergraph.vertices, constraints)

    def bag_cost(bag: frozenset):
        return solver.solve(bag, backend=backend).log_value

    return min(decompositions, key=lambda td: max(bag_cost(b) for b in td.bags))


def _check_query(query: ConjunctiveQuery) -> None:
    if not (query.is_full or query.is_boolean):
        raise QueryError(
            "the paper's drivers cover full and Boolean conjunctive queries "
            "(§8 sketches the general case); project the full result instead"
        )


def _boolean_result(query: ConjunctiveQuery, non_empty: bool) -> Relation:
    return Relation(query.name, (), [()] if non_empty else [])


def panda_full_query(
    query: ConjunctiveQuery,
    database: Database,
    constraints: ConstraintSet | None = None,
    backend: str = "exact",
    planner=None,
) -> PlanResult:
    """Corollary 7.10: evaluate a full/Boolean CQ in ``O~(N + 2^{DAPB})``."""
    _check_query(query)
    if planner is None:
        planner = _new_planner()
    variables = tuple(sorted(query.variable_set))
    rule = DisjunctiveRule((frozenset(variables),), query.body, name=query.name)
    result = panda(
        rule, database, constraints=constraints, backend=backend, planner=planner
    )
    table = result.model.tables[0]
    for atom in query.body:
        table = semijoin(table, atom.bind(database))
    answer = table.renamed(query.name)
    if query.is_boolean:
        return PlanResult(
            relation=_boolean_result(query, not answer.is_empty()),
            boolean=not answer.is_empty(),
            panda_runs=[result],
        )
    return PlanResult(relation=answer, boolean=not answer.is_empty(), panda_runs=[result])


def _bag_atoms(query: ConjunctiveQuery, bag: frozenset, database: Database) -> list[Relation]:
    """The restricted atoms ``Π_{F ∩ B}(R_F)`` of the bag query on ``H_B``."""
    relations = []
    for atom in query.body:
        overlap = atom.variable_set & bag
        if overlap:
            relations.append(project(atom.bind(database), overlap))
    return relations


def tree_decomposition_plan(
    query: ConjunctiveQuery,
    database: Database,
    decomposition: TreeDecomposition | None = None,
    constraints: ConstraintSet | None = None,
    decompositions: Sequence[TreeDecomposition] | None = None,
    backend: str = "exact",
    planner=None,
) -> PlanResult:
    """The non-adaptive baseline: one decomposition, bags via Generic Join.

    This is the classic fhtw-style strategy (§2.1.3): each bag is fully
    materialized — worst-case ``N^{ρ*(bag)}`` — then Yannakakis finishes.
    When no ``decomposition`` is given, the degree-aware-fhtw-optimal one is
    chosen by its worst bag's polymatroid bound, with the bound LPs served
    by the planner's shared (and cached) batched solver.
    """
    _check_query(query)
    if decomposition is None:
        if planner is None:
            planner = _new_planner()
        if constraints is None:
            constraints = database.extract_cardinalities()
        hypergraph = query.hypergraph()
        if decompositions is None:
            decompositions = tree_decompositions(hypergraph)
        decomposition = _best_decomposition(
            planner, hypergraph, constraints, decompositions, backend
        )
    bag_tables = []
    for bag in decomposition.bags:
        atoms = _bag_atoms(query, bag, database)
        table = generic_join(atoms, name=f"T_{''.join(sorted(bag))}")
        bag_tables.append(table)
    tree = join_tree_from_bags(bag_tables)
    if query.is_boolean:
        answer = acyclic_boolean(tree)
        return PlanResult(
            relation=_boolean_result(query, answer),
            boolean=answer,
            decompositions_used=[decomposition],
        )
    joined = acyclic_join(tree, name=query.name)
    return PlanResult(
        relation=joined,
        boolean=not joined.is_empty(),
        decompositions_used=[decomposition],
    )


def dafhtw_plan(
    query: ConjunctiveQuery,
    database: Database,
    constraints: ConstraintSet | None = None,
    decompositions: Sequence[TreeDecomposition] | None = None,
    backend: str = "exact",
    planner=None,
) -> PlanResult:
    """Corollary 7.11: evaluate at the degree-aware fractional hypertree width.

    Picks the decomposition minimizing the worst bag's polymatroid bound,
    materializes every bag with single-target PANDA, semijoin-reduces, and
    runs Yannakakis.
    """
    _check_query(query)
    if planner is None:
        planner = _new_planner()
    if constraints is None:
        constraints = database.extract_cardinalities()
    hypergraph = query.hypergraph()
    if decompositions is None:
        decompositions = tree_decompositions(hypergraph)

    # Choose the da-fhtw-optimal decomposition by its worst bag bound.
    best = _best_decomposition(
        planner, hypergraph, constraints, decompositions, backend
    )

    runs: list[PandaResult] = []
    bag_tables: list[Relation] = []
    for bag in best.bags:
        rule = DisjunctiveRule((bag,), query.body, name=f"P_{''.join(sorted(bag))}")
        result = panda(
            rule,
            database,
            constraints=constraints,
            backend=backend,
            planner=planner,
        )
        runs.append(result)
        table = result.model.tables[0]
        for atom in query.body:
            if atom.variable_set <= bag:
                table = semijoin(table, atom.bind(database))
        bag_tables.append(table)

    tree = join_tree_from_bags(bag_tables)
    if query.is_boolean:
        answer = acyclic_boolean(tree)
        return PlanResult(
            relation=_boolean_result(query, answer),
            boolean=answer,
            panda_runs=runs,
            decompositions_used=[best],
        )
    joined = acyclic_join(tree, name=query.name)
    # Bags only see atoms fully inside them; a final semijoin sweep enforces
    # the straddling atoms.
    for atom in query.body:
        joined = semijoin(joined, atom.bind(database))
    return PlanResult(
        relation=joined.renamed(query.name),
        boolean=not joined.is_empty(),
        panda_runs=runs,
        decompositions_used=[best],
    )


def dasubw_plan(
    query: ConjunctiveQuery,
    database: Database,
    constraints: ConstraintSet | None = None,
    decompositions: Sequence[TreeDecomposition] | None = None,
    backend: str = "exact",
    planner=None,
) -> PlanResult:
    """Corollary 7.13 / Theorem 1.9: evaluate at the degree-aware submodular width.

    For every bag-selector image ``B``, PANDA answers the disjunctive rule
    whose targets are the image's bags.  The per-bag tables are unioned across
    images, semijoin-reduced against all inputs, and finally every
    decomposition associated with some choice tuple is evaluated by Yannakakis
    and the results combined.

    Selector images of a symmetric query are heavily isomorphic (a cycle's
    images map onto each other under rotation), so the planner's canonical
    plan cache collapses the per-image LP + proof-sequence work to one build
    per isomorphism class.
    """
    _check_query(query)
    if planner is None:
        planner = _new_planner()
    if constraints is None:
        constraints = database.extract_cardinalities()
    hypergraph = query.hypergraph()
    if decompositions is None:
        decompositions = tree_decompositions(hypergraph)
    images = selector_images(decompositions)

    # Step 1: one PANDA disjunctive rule per selector image.
    runs: list[PandaResult] = []
    produced: dict[frozenset, Relation] = {}
    image_targets: list[list[frozenset]] = []
    for image in images:
        targets = sorted(image, key=lambda b: tuple(sorted(b)))
        image_targets.append(targets)
        rule = DisjunctiveRule(tuple(targets), query.body, name="P_image")
        result = panda(
            rule,
            database,
            constraints=constraints,
            backend=backend,
            planner=planner,
        )
        runs.append(result)
        for table in result.model.tables:
            bag = table.attributes
            if bag in produced:
                produced[bag] = union(produced[bag], table, name=table.name)
            else:
                produced[bag] = table

    # Step 2: semijoin-reduce every bag table with every input relation.
    for bag, table in list(produced.items()):
        for atom in query.body:
            table = semijoin(table, atom.bind(database))
        produced[bag] = table

    # Step 3: evaluate the decompositions.  The paper iterates the choice
    # tuples of ∏_i B_i and locates each tuple's associated decomposition
    # (Claims 1/2 of Cor. 7.13) — a proof device that is exponential in the
    # number of selector images.  Evaluating *every* decomposition is an
    # equivalent superset: by Claim 2 each output tuple is fully contained in
    # some decomposition's bags, and each decomposition's (semijoin-reduced)
    # Yannakakis result is a subset of the true answer because every atom
    # fits inside one of its bags.  |TD| is a query-complexity quantity, so
    # the runtime bound of Theorem 1.9 is unaffected.
    #
    # ``selector_images`` returns only ⊆-minimal images, so a bag may appear
    # in no image at all and have no produced table.  Decompositions using
    # such a bag can be skipped soundly: the Claim 1 choice function can
    # always be drawn from the minimal sub-image, so every output tuple's
    # associated decomposition has all its bags among the produced ones.
    used: dict[frozenset, TreeDecomposition] = {
        td.bag_set: td
        for td in decompositions
        if all(bag in produced for bag in td.bags)
    }

    answer: Relation | None = None
    boolean = False
    for decomposition in used.values():
        bag_tables = [
            produced[bag].renamed(f"T_{''.join(sorted(bag))}")
            for bag in decomposition.bags
        ]
        tree = join_tree_from_bags(bag_tables)
        if query.is_boolean:
            boolean = boolean or acyclic_boolean(tree)
            if boolean:
                break
            continue
        part = acyclic_join(tree, name=query.name)
        for atom in query.body:
            part = semijoin(part, atom.bind(database))
        answer = part if answer is None else union(answer, part, name=query.name)

    if query.is_boolean:
        return PlanResult(
            relation=_boolean_result(query, boolean),
            boolean=boolean,
            panda_runs=runs,
            decompositions_used=list(used.values()),
        )
    if answer is None:
        answer = Relation(query.name, tuple(sorted(query.variable_set)))
    return PlanResult(
        relation=answer.renamed(query.name),
        boolean=not answer.is_empty(),
        panda_runs=runs,
        decompositions_used=list(used.values()),
    )


def proper_query_plan(
    query: ConjunctiveQuery,
    database: Database,
    constraints: ConstraintSet | None = None,
    decompositions: Sequence[TreeDecomposition] | None = None,
    backend: str = "exact",
    planner=None,
) -> PlanResult:
    """§8: evaluate a *proper* CQ over free-connex decompositions.

    The §8 recipe for heads strictly between ∅ and all variables: restrict
    the Cor. 7.11 minimization to *free-connex* decompositions, materialize
    every bag with single-target PANDA, semijoin-reduce, then project bound
    variables away below the connex core by Boolean-semiring message passing
    (never above it, so intermediates stay bag- and output-bounded).

    Full and Boolean queries are the degenerate cases (every decomposition is
    free-connex for them) and are also accepted.

    Raises:
        DecompositionError: if no free-connex decomposition exists among the
            candidates.
    """
    from repro.datalog.atoms import Atom
    from repro.exceptions import DecompositionError
    from repro.faq.freeconnex import free_connex_decompositions, is_free_connex
    from repro.faq.plans import faq_decomposition_plan
    from repro.faq.query import FAQQuery
    from repro.faq.semiring import BOOLEAN

    head = tuple(query.head)
    hypergraph = query.hypergraph()
    if constraints is None:
        constraints = database.extract_cardinalities()
    if decompositions is None:
        decompositions = free_connex_decompositions(hypergraph, head)
    else:
        decompositions = [
            td for td in decompositions if is_free_connex(td, head)
        ]
    if not decompositions:
        raise DecompositionError(
            f"no free-connex decomposition for head {head}"
        )

    # da-fhtw-optimal free-connex decomposition by its worst bag bound.
    if planner is None:
        planner = _new_planner()
    best = _best_decomposition(
        planner, hypergraph, constraints, decompositions, backend
    )

    # PANDA per bag + semijoin reduction (every atom has a home bag, so the
    # join of the reduced bag tables equals the full join exactly).
    runs: list[PandaResult] = []
    bag_tables: list[Relation] = []
    for index, bag in enumerate(best.bags):
        rule = DisjunctiveRule((bag,), query.body, name=f"P_{''.join(sorted(bag))}")
        result = panda(
            rule,
            database,
            constraints=constraints,
            backend=backend,
            planner=planner,
        )
        runs.append(result)
        table = result.model.tables[0]
        for atom in query.body:
            if atom.variable_set <= bag:
                table = semijoin(table, atom.bind(database))
        bag_tables.append(table.renamed(f"B{index}"))

    # Project to the head along the free-connex structure: a Boolean-semiring
    # FAQ whose factors are the bag tables and whose decomposition is `best`.
    bag_db = Database(bag_tables)
    body = tuple(Atom(t.name, t.schema) for t in bag_tables)
    faq = FAQQuery(head, body, BOOLEAN, name=query.name)
    faq_plan = faq_decomposition_plan(faq, bag_db, decomposition=best)
    support = faq_plan.result.support()
    positions = tuple(support.schema.index(a) for a in head)
    answer = Relation(
        query.name, head, (tuple(row[p] for p in positions) for row in support)
    )
    return PlanResult(
        relation=answer,
        boolean=not answer.is_empty(),
        panda_runs=runs,
        decompositions_used=[best],
    )
