"""Interning of variable names ↔ bit positions (the mask kernel's base).

Every set-indexed structure in this package ultimately ranges over subsets of
a fixed, ordered universe of query variables.  A :class:`VarMap` fixes a
bijection between the universe and bit positions of a machine integer, so a
subset ``S ⊆ U`` becomes the *mask* ``sum(1 << position(v) for v in S)``:

* membership, union, intersection, difference are single int ops;
* ``h(S)`` lookups become O(1) list indexing by mask;
* iteration over ``2^U`` is ``range(1 << n)`` — no hashing, no frozensets.

``VarMap`` instances are interned per universe tuple (:meth:`VarMap.of`), so
every structure over the same universe shares one map and mask values are
directly comparable.  The canonical *size-lexicographic* enumeration order of
subsets (``subset_masks``) matches the historical ``powerset()`` order, which
keeps LP row/column ordering — and therefore exact simplex pivoting — stable
across the frozenset-to-mask migration.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations
from typing import Iterable, Iterator

__all__ = ["VarMap"]


class VarMap:
    """A bijection between variable names and bit positions.

    Attributes:
        names: the universe, in interning order; ``names[i]`` ↔ bit ``1 << i``.
        full_mask: the mask of the full universe, ``2^n - 1``.
    """

    __slots__ = ("names", "index", "full_mask", "_sets", "_sorted_bits")

    def __init__(self, names: Iterable[str]) -> None:
        self.names: tuple[str, ...] = tuple(names)
        self.index: dict[str, int] = {v: i for i, v in enumerate(self.names)}
        if len(self.index) != len(self.names):
            raise ValueError(f"duplicate names in universe {self.names}")
        self.full_mask: int = (1 << len(self.names)) - 1
        #: lazily filled mask -> frozenset cache (shared by all consumers).
        self._sets: dict[int, frozenset] = {0: frozenset()}
        #: bit masks of the universe ordered by *name* (for display/sorting).
        self._sorted_bits: tuple[int, ...] = tuple(
            1 << self.index[v] for v in sorted(self.names)
        )

    @staticmethod
    @lru_cache(maxsize=None)
    def _interned(names: tuple[str, ...]) -> "VarMap":
        return VarMap(names)

    @classmethod
    def of(cls, names: Iterable[str]) -> "VarMap":
        """The interned map for this universe (same tuple -> same instance)."""
        return cls._interned(tuple(names))

    # -- basic conversions ------------------------------------------------------

    @property
    def n(self) -> int:
        return len(self.names)

    @property
    def size(self) -> int:
        """Number of subsets, ``2^n``."""
        return self.full_mask + 1

    def mask_of(self, subset: Iterable[str]) -> int:
        """The mask of a subset given as any iterable of names.

        Raises:
            KeyError: if a name is not in the universe.
        """
        if isinstance(subset, int):
            return subset
        index = self.index
        mask = 0
        for v in subset:
            mask |= 1 << index[v]
        return mask

    def set_of(self, mask: int) -> frozenset:
        """The subset for a mask, as an (interned) frozenset."""
        cached = self._sets.get(mask)
        if cached is None:
            names = self.names
            cached = frozenset(
                names[i] for i in range(len(names)) if mask >> i & 1
            )
            self._sets[mask] = cached
        return cached

    def sorted_names(self, mask: int) -> tuple[str, ...]:
        """The members of ``mask`` sorted by name (display order)."""
        return tuple(sorted(self.set_of(mask)))

    # -- iteration --------------------------------------------------------------

    def bits(self, mask: int) -> Iterator[int]:
        """Yield the single-bit masks of ``mask``, lowest bit first."""
        while mask:
            bit = mask & -mask
            yield bit
            mask ^= bit

    def bits_by_name(self, mask: int) -> Iterator[int]:
        """Yield the single-bit masks of ``mask`` in *name-sorted* order.

        This mirrors the historical ``for v in sorted(subset)`` loops.
        """
        for bit in self._sorted_bits:
            if mask & bit:
                yield bit

    def subset_masks(self, mask: int | None = None) -> tuple[int, ...]:
        """All submasks of ``mask`` (default: full universe) in canonical order.

        Canonical order is size-lexicographic over bit positions — exactly the
        order of :func:`repro.core.hypergraph.powerset` over ``self.names``.
        """
        if mask is None or mask == self.full_mask:
            return _canonical_masks(self.n)
        positions = [i for i in range(self.n) if mask >> i & 1]
        return tuple(
            sum(1 << p for p in combo)
            for r in range(len(positions) + 1)
            for combo in combinations(positions, r)
        )

    def submasks_iter(self, mask: int) -> Iterator[int]:
        """All submasks of ``mask`` in decreasing numeric order (fast loop).

        The classic ``s = (s - 1) & mask`` walk; includes ``mask`` and ``0``.
        """
        s = mask
        while True:
            yield s
            if s == 0:
                return
            s = (s - 1) & mask

    def __repr__(self) -> str:
        return f"VarMap({self.names})"


@lru_cache(maxsize=None)
def _canonical_masks(n: int) -> tuple[int, ...]:
    """All masks over ``n`` bits in size-lexicographic (powerset) order."""
    return tuple(
        sum(1 << p for p in combo)
        for r in range(n + 1)
        for combo in combinations(range(n), r)
    )
