"""The persistent worker pool and the per-shard task execution.

Data ships once, work ships per shard: when a :class:`WorkerPool` is bound
to a database (:meth:`WorkerPool.ensure_database`), every worker process
receives the dictionary-encoded relations as raw column-major ``array('q')``
buffers through its initializer — no per-tuple pickling, no decoding — and
rebuilds them exactly once.  A shard task is then just ``(driver, order,
row ranges, extra)``: the worker executes its shard through the serial
drivers with :func:`repro.relational.execution.execute_join`'s zero-copy
root-range restriction over its resident relations, so per-shard marginal
cost is pure join work (and the shared per-node trie caches of
:meth:`~repro.relational.columns.ColumnSet.trie_caches` accumulate across
shards and executes).

Codes are parent-process codes throughout; workers never decode.  The one
exception is the ``panda`` driver, whose Lemma 6.1 bucket halving orders
heavy keys by decoded *values* — those tasks ship the relevant
dictionaries' value lists and :func:`adopt_dictionaries` installs them
wholesale.  The data-independent :class:`~repro.planner.PandaPlan` bundle
(one plan per isomorphism class, exported by the parent's planner) is also
cached worker-side under a fingerprint token, so repeated executions seed
each worker exactly once.

Every task runs under its own
:func:`~repro.relational.operators.scoped_work_counter` and reports the
counts home, so the parent can absorb them into its scope and ``repro run
--stats`` stays truthful about the total work performed.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from array import array
from typing import Sequence

from repro.relational.operators import scoped_work_counter
from repro.relational.relation import Relation

__all__ = [
    "WorkerPool",
    "adopt_dictionaries",
    "default_worker_count",
    "pack_column_range",
    "pack_output_rows",
    "run_faq_task",
    "run_shard_task",
    "unpack_column_arrays",
    "unpack_columns",
]


# -- raw code buffers ---------------------------------------------------------------


def pack_output_rows(rows: Sequence[tuple], arity: int) -> bytes:
    """Serialize output rows column-major (C-speed ``zip`` + array fills).

    The transpose back is :func:`unpack_columns`; for the large outputs the
    emission-heavy workloads produce, this keeps both ends of the result
    pipe out of per-tuple Python loops.
    """
    if arity == 0 or not rows:
        return b""
    return b"".join(
        array("q", column).tobytes() for column in zip(*rows)
    )


def pack_column_range(column_set, lo: int, hi: int) -> bytes:
    """Serialize rows ``[lo, hi)`` of a column set, column-major.

    Slicing the materialized ``array('q')`` columns is a C-speed copy — the
    parent pays no per-tuple Python work to ship a relation.  (Columns
    materialize once per relation and are cached on the column set.)
    """
    parts = []
    for column in column_set.columns:
        view = memoryview(column)[lo:hi]
        parts.append(view.tobytes())
    return b"".join(parts)


def unpack_column_arrays(buffer: bytes, arity: int) -> tuple:
    """Split a column-major code buffer back into its ``array('q')`` columns."""
    if arity == 0:
        return ()
    n = len(buffer) // (8 * arity)
    columns = []
    for i in range(arity):
        column = array("q")
        column.frombytes(buffer[i * 8 * n : (i + 1) * 8 * n])
        columns.append(column)
    return tuple(columns)


def unpack_columns(buffer: bytes, arity: int) -> tuple[list[tuple], tuple]:
    """Invert :func:`pack_column_range`: ``(row tuples, column arrays)``.

    Rows come from one C-speed ``zip(*columns)``; the arrays are returned
    too so the receiver's column set can adopt them instead of rebuilding.
    """
    columns = unpack_column_arrays(buffer, arity)
    if not columns:
        return [], ()
    return list(zip(*columns)), columns


def default_worker_count() -> int:
    """Default pool size: the machine's cores, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


# -- worker-side state --------------------------------------------------------------

#: The database resident in this process: ``(token, entries)`` with one
#: ``(name, attrs, relation)`` entry per query atom, installed either by the
#: pool initializer (worker processes) or directly (in-process execution).
_WORKER_DB: tuple | None = None

#: Per-worker caches, keyed by the parent's fingerprint tokens.
_WORKER_PLANNERS: dict = {}
_WORKER_DICTS: dict = {}


def _init_worker_db(token, payload: list[tuple]) -> None:
    """Pool initializer: rebuild the database from raw column buffers."""
    global _WORKER_DB
    entries = []
    for name, attrs, buffer in payload:
        rows, columns = unpack_columns(buffer, len(attrs))
        relation = Relation.from_codes(
            name, attrs, rows, presorted=True, distinct=True
        )
        relation.column_set(attrs).adopt_columns(columns)
        entries.append((name, attrs, relation))
    _WORKER_DB = (token, entries)


def install_local_database(token, entries: list[tuple]) -> None:
    """Adopt already-built relations for in-process shard execution."""
    global _WORKER_DB
    _WORKER_DB = (token, entries)


def _release_local_database(token) -> None:
    """Drop the resident database if it is still the one ``token`` names.

    Called by :meth:`WorkerPool.close`; guarded by token so closing one
    pool never evicts a database another live engine re-installed.
    """
    global _WORKER_DB
    if _WORKER_DB is not None and _WORKER_DB[0] == token:
        _WORKER_DB = None


def adopt_dictionaries(dict_values: dict[str, list]) -> None:
    """Install the parent's dictionary value lists wholesale.

    Worker processes otherwise run on bare codes; drivers that must decode
    (PANDA's value-ordered bucket halving) need each attribute's code→value
    table to mirror the parent's exactly.  Adoption replaces the shared
    per-attribute dictionary so that codes — all minted by the parent — stay
    valid.
    """
    from repro.relational.columns import Dictionary

    for attribute, values in dict_values.items():
        # Compare contents, not just length: a registry reset in the parent
        # can produce a same-length dictionary with different values behind
        # the same codes.
        if _WORKER_DICTS.get(attribute) == values:
            continue
        fresh = Dictionary(attribute)
        for value in values:
            fresh.encode(value)
        Dictionary._registry[attribute] = fresh
        _WORKER_DICTS[attribute] = list(values)


def _seeded_planner(plans_token, plans_blob: bytes | None):
    """The worker's planner, seeded once per plan-bundle fingerprint."""
    from repro.planner import Planner

    planner = _WORKER_PLANNERS.get(plans_token)
    if planner is not None:
        return planner
    planner = Planner()
    if plans_blob is not None:
        for universe, targets, constraints, backend, plan in pickle.loads(plans_blob):
            exact_key = planner.cache.instance_key(universe, targets, constraints)
            sig_key, canonical_to_instance = planner.cache.signature(
                universe, targets, constraints, exact_key=exact_key
            )
            planner.cache.put((sig_key, backend), plan, canonical_to_instance)
            planner.cache.store_instance((exact_key, backend), plan)
    _WORKER_PLANNERS[plans_token] = planner
    return planner


# -- per-shard execution ------------------------------------------------------------


def _resident_database(token) -> list[tuple]:
    if _WORKER_DB is None or _WORKER_DB[0] != token:
        raise RuntimeError(
            "shard task arrived before its database was installed — "
            "WorkerPool.ensure_database must run first"
        )
    return _WORKER_DB[1]


def _sliced_relation(relation: Relation, attrs: tuple, lo: int, hi: int) -> Relation:
    """The shard's slice of one resident relation, as its own relation.

    Rows come from the order-restricted column set, so the slice is a
    contiguous pointer-copy; full-range slices reuse the resident relation
    outright when its schema already matches.
    """
    column_set = relation.column_set(attrs)
    if lo == 0 and hi == column_set.nrows and relation.schema == attrs:
        return relation
    rows = column_set.rows[lo:hi]
    if not isinstance(rows, list):
        rows = list(rows)
    return Relation.from_codes(
        relation.name, attrs, rows, presorted=True, distinct=True
    )


def _panda_shard(sliced: list[Relation], order: tuple[str, ...], extra: dict):
    """Run the serial da-subw PANDA driver on one shard's database."""
    from repro.core.query_plans import dasubw_plan
    from repro.datalog.atoms import Atom
    from repro.datalog.conjunctive import ConjunctiveQuery
    from repro.relational.database import Database

    if extra.get("parent_pid") != os.getpid():
        # In-process (single-worker) runs already share the parent's
        # dictionaries; only real worker processes adopt.
        adopt_dictionaries(extra["dict_values"])
    planner = _seeded_planner(extra["plans_token"], extra.get("plans_blob"))
    # Atoms are renamed R__0, R__1, ... because self-joins restrict the two
    # occurrences of a base relation *differently* per shard — each slice
    # must be its own database entry.
    atoms = []
    db_relations = []
    for i, (relation, variables) in enumerate(zip(sliced, extra["atom_vars"])):
        atom_name = f"{relation.name}__{i}"
        positions = tuple(relation.schema.index(v) for v in variables)
        rows = [tuple(row[p] for p in positions) for row in relation.code_rows]
        db_relations.append(
            Relation.from_codes(atom_name, variables, rows, distinct=True)
        )
        atoms.append(Atom(atom_name, variables))
    if extra["boolean"]:
        query = ConjunctiveQuery.boolean(tuple(atoms), name=extra["query_name"])
    else:
        query = ConjunctiveQuery.full(tuple(atoms), name=extra["query_name"])
    result = dasubw_plan(
        query,
        Database(db_relations),
        constraints=extra["constraints"],
        backend=extra["backend"],
        planner=planner,
    )
    return result.relation, result.boolean


def _yannakakis_shard(sliced: list[Relation], order: tuple[str, ...], extra: dict):
    """Materialize the shipped decomposition's bags and run Yannakakis."""
    from repro.relational.operators import project
    from repro.relational.wcoj import generic_join
    from repro.relational.yannakakis import (
        acyclic_boolean,
        acyclic_join,
        join_tree_from_bags,
    )

    bag_tables = []
    for bag in extra["bags"]:
        bag_atoms = []
        for relation in sliced:
            overlap = relation.attributes & bag
            if overlap:
                bag_atoms.append(project(relation, overlap))
        bag_tables.append(
            generic_join(bag_atoms, name=f"T_{''.join(sorted(bag))}")
        )
    tree = join_tree_from_bags(bag_tables)
    if extra["boolean"]:
        non_empty = acyclic_boolean(tree)
        return Relation("Q", order), non_empty
    joined = acyclic_join(tree)
    return joined, not joined.is_empty()


def run_shard_task(task: tuple) -> tuple[bytes, bool, dict]:
    """Execute one shard over the resident database (worker-side entry).

    ``task`` is ``(db_token, driver, order, ranges, extra)`` with one
    ``(lo, hi)`` row range per resident relation.  Returns the shard's
    output rows as a raw column-major buffer (sorted under ``order``), the
    shard's Boolean answer, and the shard's work counts.
    """
    db_token, driver, order, ranges, extra = task
    entries = _resident_database(db_token)
    with scoped_work_counter() as counter:
        if driver in ("generic", "leapfrog"):
            if driver == "generic":
                from repro.relational.wcoj import generic_join as join
            else:
                from repro.relational.leapfrog import leapfrog_triejoin as join

            relations = [relation for _, _, relation in entries]
            out = join(relations, order, root_ranges=ranges)
            boolean = not out.is_empty()
        else:
            sliced = [
                _sliced_relation(relation, attrs, lo, hi)
                for (_, attrs, relation), (lo, hi) in zip(entries, ranges)
            ]
            if driver == "yannakakis":
                out, boolean = _yannakakis_shard(sliced, order, extra)
            elif driver == "panda":
                out, boolean = _panda_shard(sliced, order, extra)
            else:  # pragma: no cover - guarded by the engine
                raise ValueError(f"unknown shard driver {driver!r}")
        if extra.get("boolean") or not out.schema:
            # Boolean queries only need the flag (which travels separately);
            # don't serialize join rows the parent would discard.
            rows = []
        elif out.schema == tuple(order):
            rows = out.code_rows
        else:
            rows = out.column_set(tuple(order)).rows
        buffer = pack_output_rows(rows, len(order))
        counts = counter.as_dict()
    return buffer, boolean, counts


def run_faq_task(task: tuple) -> tuple[bytes, list, dict]:
    """⊗-join the shard's factors and ⊕-marginalize (worker-side entry point).

    ``task`` is ``(semiring_ref, free, factor_payload)`` where each factor
    entry is ``(name, attrs, buffer, values)``.  Returns the marginalized
    shard result as ``(rows buffer, values list, counts)``.
    """
    from functools import reduce

    from repro.faq.annotated import AnnotatedRelation

    semiring_ref, free, factor_payload = task
    semiring = resolve_semiring(semiring_ref)
    with scoped_work_counter() as counter:
        factors = []
        for name, attrs, buffer, values in factor_payload:
            if attrs:
                rows, _ = unpack_columns(buffer, len(attrs))
            else:
                # Nullary (scalar) factors: the single empty row carries no
                # codes, so the buffer is empty — the values list is the
                # row count.
                rows = [()] * len(values)
            factors.append(
                AnnotatedRelation._from_codes(
                    name, tuple(attrs), semiring, dict(zip(rows, values))
                )
            )
        product = reduce(lambda a, b: a.multiply(b), factors)
        result = product.marginalize(free)
        out_schema = result.schema
        items = sorted(result._data.items())
        buffer = pack_output_rows([row for row, _ in items], len(out_schema))
        values = [value for _, value in items]
        counts = counter.as_dict()
    return buffer, values, counts


# -- semiring shipping --------------------------------------------------------------


def semiring_reference(semiring):
    """A picklable reference to a semiring (stock ones ship by name)."""
    from repro.faq import semiring as stock

    for attr in ("BOOLEAN", "COUNTING", "MIN_PLUS", "MAX_PRODUCT"):
        if getattr(stock, attr) is semiring:
            return ("stock", attr)
    try:
        return ("pickle", pickle.dumps(semiring))
    except Exception as error:
        raise ValueError(
            f"semiring {semiring} is not picklable and not one of the stock "
            f"semirings; parallel FAQ evaluation cannot ship it to workers"
        ) from error


def resolve_semiring(reference):
    """Invert :func:`semiring_reference` in the worker."""
    kind, payload = reference
    if kind == "stock":
        from repro.faq import semiring as stock

        return getattr(stock, payload)
    return pickle.loads(payload)


# -- the pool -----------------------------------------------------------------------


class WorkerPool:
    """A persistent ``multiprocessing`` pool bound to one resident database.

    ``ensure_database`` installs the database in every worker exactly once
    (pool initializer) and locally (so single-task fast paths run in
    process); it is a no-op while the token is unchanged, so repeated
    executes on one database ship *no* input data at all.  A new token
    recycles the pool — re-forking is far cheaper than re-shipping per
    shard.  The start method is ``fork`` where available, ``spawn``
    elsewhere (tasks are self-contained either way).
    """

    def __init__(self, workers: int) -> None:
        self.workers = max(1, workers)
        self._pool = None
        self._db_token = None

    @staticmethod
    def _context():
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )

    def ensure_started(self) -> None:
        """Start a database-free pool (FAQ tasks carry their own factors)."""
        if self.workers > 1 and self._pool is None:
            self._pool = self._context().Pool(processes=self.workers)

    def ensure_database(
        self, token, entries: list[tuple], payload: list[tuple] | None = None
    ) -> None:
        """Make ``entries`` (``(name, attrs, relation)``) resident everywhere.

        ``payload`` is the pre-packed ``(name, attrs, buffer)`` form (built
        by the engine alongside the content token); it is only consumed when
        the pool actually (re)starts.
        """
        # The local (in-process) database is a module global shared by every
        # pool, so another engine may have displaced it since we last bound —
        # check it independently of this pool's own token.
        if _WORKER_DB is None or _WORKER_DB[0] != token:
            install_local_database(token, entries)
        if self._db_token == token:
            return
        if self.workers > 1:
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None
            if payload is None:
                payload = [
                    (
                        name,
                        attrs,
                        pack_column_range(
                            relation.column_set(attrs),
                            0,
                            relation.column_set(attrs).nrows,
                        ),
                    )
                    for name, attrs, relation in entries
                ]
            self._pool = self._context().Pool(
                processes=self.workers,
                initializer=_init_worker_db,
                initargs=(token, payload),
            )
        self._db_token = token

    def map(self, function, tasks: list) -> list:
        """Run ``function`` over ``tasks`` on the pool, results in task order."""
        if self._pool is None or len(tasks) <= 1:
            return [function(task) for task in tasks]
        async_results = [
            self._pool.apply_async(function, (task,)) for task in tasks
        ]
        return [result.get() for result in async_results]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._db_token is not None:
            _release_local_database(self._db_token)
        self._db_token = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
