"""The persistent worker pool and the per-shard task execution.

Data ships once, work ships per shard: when a :class:`WorkerPool` is bound
to a database (:meth:`WorkerPool.ensure_database`), every worker process
receives the dictionary-encoded relations as raw column-major ``array('q')``
buffers through its initializer — no per-tuple pickling, no decoding — and
rebuilds them exactly once.  Relations bound to a persisted column store
(:mod:`repro.relational.storage`) skip even that: they ship as *file
references* (paths + digest, a few strings on the wire) and each worker
maps the digest-named artifact read-only with ``mmap``, so bind cost is
independent of data size and the mapped pages are shared across the pool.
A shard task is then just ``(driver, order,
row ranges, extra)``: the worker executes its shard through the serial
drivers with :func:`repro.relational.execution.execute_join`'s zero-copy
root-range restriction over its resident relations, so per-shard marginal
cost is pure join work (and the shared per-node trie caches of
:meth:`~repro.relational.columns.ColumnSet.trie_caches` accumulate across
shards and executes).

Residency is content-addressed **per relation**: the database token is a
tuple of ``(key, content digest)`` pairs, one per bound relation
(:meth:`~repro.relational.columns.ColumnSet.content_digest`), so rebinding
an engine to a database where only some relations changed never reships the
unchanged ones — changed buffers piggyback on tasks as idempotent updates
(each worker installs a given digest at most once) until their cumulative
size would exceed re-forking the pool, at which point the pool recycles and
re-seals the baseline.  The incremental engine goes one step further and
ships only signed *delta runs* against the resident base relations
(:func:`run_delta_term_task`), with worker-side reconstructions cached per
``(key, base digest, version)``.

Codes are parent-process codes throughout; workers never decode.  The one
exception is the ``panda`` driver, whose Lemma 6.1 bucket halving orders
heavy keys by decoded *values* — those tasks ship the relevant
dictionaries' value lists and :func:`adopt_dictionaries` installs them
wholesale.  The data-independent :class:`~repro.planner.PandaPlan` bundle
(one plan per isomorphism class, exported by the parent's planner) is also
cached worker-side under a fingerprint token, so repeated executions seed
each worker exactly once.

Every task runs under its own
:func:`~repro.relational.operators.scoped_work_counter` and reports the
counts home, so the parent can absorb them into its scope and ``repro run
--stats`` stays truthful about the total work performed.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from array import array
from typing import Sequence

from repro.relational.backend import scoped_backend
from repro.relational.operators import scoped_work_counter
from repro.relational.relation import Relation

__all__ = [
    "WorkerPool",
    "adopt_dictionaries",
    "default_worker_count",
    "pack_column_range",
    "pack_output_rows",
    "run_delta_term_task",
    "run_faq_task",
    "run_shard_task",
    "unpack_column_arrays",
    "unpack_columns",
]


# -- raw code buffers ---------------------------------------------------------------


def pack_output_rows(rows: Sequence[tuple], arity: int) -> bytes:
    """Serialize output rows column-major (C-speed ``zip`` + array fills).

    The transpose back is :func:`unpack_columns`; for the large outputs the
    emission-heavy workloads produce, this keeps both ends of the result
    pipe out of per-tuple Python loops.
    """
    if arity == 0 or not rows:
        return b""
    return b"".join(
        array("q", column).tobytes() for column in zip(*rows)
    )


def pack_column_range(column_set, lo: int, hi: int) -> bytes:
    """Serialize rows ``[lo, hi)`` of a column set, column-major.

    Slicing the materialized ``array('q')`` columns is a C-speed copy — the
    parent pays no per-tuple Python work to ship a relation.  (Columns
    materialize once per relation and are cached on the column set.)
    """
    parts = []
    for column in column_set.columns:
        view = memoryview(column)[lo:hi]
        parts.append(view.tobytes())
    return b"".join(parts)


def unpack_column_arrays(buffer: bytes, arity: int) -> tuple:
    """Split a column-major code buffer back into its ``array('q')`` columns."""
    if arity == 0:
        return ()
    n = len(buffer) // (8 * arity)
    columns = []
    for i in range(arity):
        column = array("q")
        column.frombytes(buffer[i * 8 * n : (i + 1) * 8 * n])
        columns.append(column)
    return tuple(columns)


def unpack_columns(buffer: bytes, arity: int) -> tuple[list[tuple], tuple]:
    """Invert :func:`pack_column_range`: ``(row tuples, column arrays)``.

    Rows come from one C-speed ``zip(*columns)``; the arrays are returned
    too so the receiver's column set can adopt them instead of rebuilding.
    """
    columns = unpack_column_arrays(buffer, arity)
    if not columns:
        return [], ()
    return list(zip(*columns)), columns


def default_worker_count() -> int:
    """Default pool size: the machine's cores, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


# -- worker-side state --------------------------------------------------------------

#: The relations resident in this process, content-addressed per relation:
#: ``{key: (digest, attrs, relation)}``.  Keys are engine-chosen (atom- or
#: name-qualified); installed by the pool initializer (worker processes),
#: by task-piggybacked updates, or directly (in-process execution).  A
#: *database* token is just an ordered tuple of ``(key, digest)`` pairs, so
#: two engines sharing a relation (same key, same digest) also share its
#: residency.
_WORKER_RELATIONS: dict = {}

#: Versioned reconstructions for the incremental delta tasks:
#: ``(key, base digest, version) -> Relation`` (bounded; see
#: :func:`_versioned_relation`).
_WORKER_VERSIONS: dict = {}

#: Per-worker caches, keyed by the parent's fingerprint tokens.
_WORKER_PLANNERS: dict = {}
_WORKER_DICTS: dict = {}


def _build_resident(key, attrs, digest, buffer) -> None:
    if type(buffer) is tuple:
        # File reference ``("file", paths, nrows)``: the relation is a
        # persisted digest-named artifact — mmap it instead of copying
        # bytes off the wire.  Binding cost is a few page-table entries;
        # the OS pages column bytes in as the shard's joins touch them.
        from repro.relational.storage import open_file_columns

        _, paths, nrows = buffer
        columns, backing = open_file_columns(paths, nrows, digest=digest)
        relation = Relation.from_columns(key, attrs, columns)
        relation.column_set(attrs).attach_backing(backing, digest)
    else:
        rows, columns = unpack_columns(buffer, len(attrs))
        relation = Relation.from_codes(
            key, attrs, rows, presorted=True, distinct=True
        )
        if columns:
            relation.column_set(attrs).adopt_columns(columns)
    _WORKER_RELATIONS[key] = (digest, attrs, relation)


def _init_worker_db(payload: list[tuple]) -> None:
    """Pool initializer: rebuild the resident relations from raw buffers."""
    for key, attrs, digest, buffer in payload:
        _build_resident(key, attrs, digest, buffer)


def _apply_updates(updates: list[tuple]) -> None:
    """Install per-relation updates, idempotently (digest-guarded).

    Updates piggyback on tasks after a partial rebind: each worker unpacks
    a given digest at most once, every later copy is a no-op comparison.
    """
    for key, attrs, digest, buffer in updates:
        resident = _WORKER_RELATIONS.get(key)
        if resident is not None and resident[0] == digest:
            continue
        _build_resident(key, attrs, digest, buffer)


def install_local_entries(entries: list[tuple]) -> None:
    """Adopt already-built relations for in-process shard execution.

    ``entries`` rows are ``(key, attrs, relation, digest)`` — the parent's
    own relation objects, no buffers involved.
    """
    for key, attrs, relation, digest in entries:
        resident = _WORKER_RELATIONS.get(key)
        if resident is None or resident[0] != digest:
            _WORKER_RELATIONS[key] = (digest, attrs, relation)


def _release_local_entries(tokens) -> None:
    """Drop resident relations still matching ``tokens``.

    Called by :meth:`WorkerPool.close`; digest-guarded so closing one pool
    never evicts a relation another live engine re-installed under the same
    key.
    """
    for key, digest in tokens:
        resident = _WORKER_RELATIONS.get(key)
        if resident is not None and resident[0] == digest:
            del _WORKER_RELATIONS[key]
    for cache_key in [k for k in _WORKER_VERSIONS if (k[0], k[1]) in set(tokens)]:
        del _WORKER_VERSIONS[cache_key]


def adopt_dictionaries(dict_values: dict[str, list]) -> None:
    """Install the parent's dictionary value lists wholesale.

    Worker processes otherwise run on bare codes; drivers that must decode
    (PANDA's value-ordered bucket halving) need each attribute's code→value
    table to mirror the parent's exactly.  Adoption replaces the shared
    per-attribute dictionary so that codes — all minted by the parent — stay
    valid.
    """
    from repro.relational.columns import Dictionary

    for attribute, values in dict_values.items():
        # Compare contents, not just length: a registry reset in the parent
        # can produce a same-length dictionary with different values behind
        # the same codes.
        if _WORKER_DICTS.get(attribute) == values:
            continue
        fresh = Dictionary(attribute)
        for value in values:
            fresh.encode(value)
        Dictionary._registry[attribute] = fresh
        _WORKER_DICTS[attribute] = list(values)


def _seeded_planner(plans_token, plans_blob: bytes | None):
    """The worker's planner, seeded once per plan-bundle fingerprint."""
    from repro.planner import Planner

    planner = _WORKER_PLANNERS.get(plans_token)
    if planner is not None:
        return planner
    planner = Planner()
    if plans_blob is not None:
        for universe, targets, constraints, backend, plan in pickle.loads(plans_blob):
            exact_key = planner.cache.instance_key(universe, targets, constraints)
            sig_key, canonical_to_instance = planner.cache.signature(
                universe, targets, constraints, exact_key=exact_key
            )
            planner.cache.put((sig_key, backend), plan, canonical_to_instance)
            planner.cache.store_instance((exact_key, backend), plan)
    _WORKER_PLANNERS[plans_token] = planner
    return planner


# -- per-shard execution ------------------------------------------------------------


def _resident_database(tokens) -> list[tuple]:
    """The ordered ``(key, attrs, relation)`` entries behind ``tokens``.

    ``tokens`` is the per-relation ``(key, digest)`` tuple of the task;
    every digest must match the resident copy — a mismatch means the pool's
    baseline/update protocol was violated, and failing loudly beats joining
    against stale data.
    """
    entries = []
    for key, digest in tokens:
        resident = _WORKER_RELATIONS.get(key)
        if resident is None or resident[0] != digest:
            raise RuntimeError(
                f"shard task arrived before relation {key!r} (digest "
                f"{digest[:12]}...) was installed — WorkerPool."
                f"ensure_database must run first"
            )
        entries.append((key, resident[1], resident[2]))
    return entries


def _sliced_relation(relation: Relation, attrs: tuple, lo: int, hi: int) -> Relation:
    """The shard's slice of one resident relation, as its own relation.

    Rows come from the order-restricted column set, so the slice is a
    contiguous pointer-copy; full-range slices reuse the resident relation
    outright when its schema already matches.
    """
    column_set = relation.column_set(attrs)
    if lo == 0 and hi == column_set.nrows and relation.schema == attrs:
        return relation
    rows = column_set.rows[lo:hi]
    if not isinstance(rows, list):
        rows = list(rows)
    return Relation.from_codes(
        relation.name, attrs, rows, presorted=True, distinct=True
    )


def _panda_shard(sliced: list[Relation], order: tuple[str, ...], extra: dict):
    """Run the serial da-subw PANDA driver on one shard's database."""
    from repro.core.query_plans import dasubw_plan
    from repro.datalog.atoms import Atom
    from repro.datalog.conjunctive import ConjunctiveQuery
    from repro.relational.database import Database

    if extra.get("parent_pid") != os.getpid():
        # In-process (single-worker) runs already share the parent's
        # dictionaries; only real worker processes adopt.
        adopt_dictionaries(extra["dict_values"])
    planner = _seeded_planner(extra["plans_token"], extra.get("plans_blob"))
    # Atoms are renamed R__0, R__1, ... because self-joins restrict the two
    # occurrences of a base relation *differently* per shard — each slice
    # must be its own database entry.
    atoms = []
    db_relations = []
    for i, (relation, variables) in enumerate(zip(sliced, extra["atom_vars"])):
        atom_name = f"{relation.name}__{i}"
        positions = tuple(relation.schema.index(v) for v in variables)
        rows = [tuple(row[p] for p in positions) for row in relation.code_rows]
        db_relations.append(
            Relation.from_codes(atom_name, variables, rows, distinct=True)
        )
        atoms.append(Atom(atom_name, variables))
    if extra["boolean"]:
        query = ConjunctiveQuery.boolean(tuple(atoms), name=extra["query_name"])
    else:
        query = ConjunctiveQuery.full(tuple(atoms), name=extra["query_name"])
    result = dasubw_plan(
        query,
        Database(db_relations),
        constraints=extra["constraints"],
        backend=extra["backend"],
        planner=planner,
    )
    return result.relation, result.boolean


def _yannakakis_shard(sliced: list[Relation], order: tuple[str, ...], extra: dict):
    """Materialize the shipped decomposition's bags and run Yannakakis."""
    from repro.relational.operators import project
    from repro.relational.wcoj import generic_join
    from repro.relational.yannakakis import (
        acyclic_boolean,
        acyclic_join,
        join_tree_from_bags,
    )

    bag_tables = []
    for bag in extra["bags"]:
        bag_atoms = []
        for relation in sliced:
            overlap = relation.attributes & bag
            if overlap:
                bag_atoms.append(project(relation, overlap))
        bag_tables.append(
            generic_join(bag_atoms, name=f"T_{''.join(sorted(bag))}")
        )
    tree = join_tree_from_bags(bag_tables)
    if extra["boolean"]:
        non_empty = acyclic_boolean(tree)
        return Relation("Q", order), non_empty
    joined = acyclic_join(tree)
    return joined, not joined.is_empty()


def run_shard_task(task: tuple) -> tuple[bytes, bool, dict]:
    """Execute one shard over the resident database (worker-side entry).

    ``task`` is ``(db_tokens, driver, order, ranges, extra)`` with one
    ``(lo, hi)`` row range per resident relation.  Returns the shard's
    output rows as a raw column-major buffer (sorted under ``order``), the
    shard's Boolean answer, and the shard's work counts.
    """
    db_tokens, driver, order, ranges, extra = task
    entries = _resident_database(db_tokens)
    # The parent resolves the execution backend once and ships the concrete
    # name; entering the scope here keeps worker execution bit-identical to
    # (and backend-consistent with) the parent's serial reference.
    with (
        scoped_backend(extra.get("execution_backend")),
        scoped_work_counter() as counter,
    ):
        if driver in ("generic", "leapfrog"):
            if driver == "generic":
                from repro.relational.wcoj import generic_join as join
            else:
                from repro.relational.leapfrog import leapfrog_triejoin as join

            relations = [relation for _, _, relation in entries]
            out = join(relations, order, root_ranges=ranges)
            boolean = not out.is_empty()
        else:
            sliced = [
                _sliced_relation(relation, attrs, lo, hi)
                for (_, attrs, relation), (lo, hi) in zip(entries, ranges)
            ]
            if driver == "yannakakis":
                out, boolean = _yannakakis_shard(sliced, order, extra)
            elif driver == "panda":
                out, boolean = _panda_shard(sliced, order, extra)
            else:  # pragma: no cover - guarded by the engine
                raise ValueError(f"unknown shard driver {driver!r}")
        if extra.get("boolean") or not out.schema:
            # Boolean queries only need the flag (which travels separately);
            # don't serialize join rows the parent would discard.
            rows = []
        elif out.schema == tuple(order):
            rows = out.code_rows
        else:
            rows = out.column_set(tuple(order)).rows
        buffer = pack_output_rows(rows, len(order))
        counts = counter.as_dict()
    return buffer, boolean, counts


def _versioned_relation(
    key: str,
    base_digest: str,
    attrs: tuple,
    base: Relation,
    version: int,
    runs: tuple,
) -> Relation:
    """Reconstruct (and cache) one relation version from base + delta runs.

    ``runs`` is the shipped tuple of ``(rows buffer, signs buffer)`` pairs
    lifting the resident base to ``version``; each is a sorted signed merge
    (:func:`~repro.relational.columns.apply_signed_rows`).  Reconstructions
    cache under ``(key, base digest, version)`` so the two versions a
    maintenance batch needs (old and new) build once per worker, not once
    per term.
    """
    from repro.incremental.delta import advance_relation

    if not runs:
        return base
    cache_key = (key, base_digest, version)
    cached = _WORKER_VERSIONS.get(cache_key)
    if cached is not None:
        return cached
    # Build from the previous version (itself cached): one delta-sized
    # merge per run, with every materialized sort order carried forward —
    # the worker-side mirror of VersionedRelation's incremental currents.
    previous = _versioned_relation(
        key, base_digest, attrs, base, version - 1, runs[:-1]
    )
    rows_buffer, signs_buffer = runs[-1]
    run_rows, _ = unpack_columns(rows_buffer, len(attrs))
    signs = array("q")
    signs.frombytes(signs_buffer)
    relation = advance_relation(previous, run_rows, signs, name=key)
    if len(_WORKER_VERSIONS) >= 64:
        _WORKER_VERSIONS.clear()
    _WORKER_VERSIONS[cache_key] = relation
    return relation


def run_delta_term_task(task: tuple) -> tuple[bytes, dict]:
    """Execute one delta-rule join term (worker-side entry).

    ``task`` is ``(db_tokens, order, specs, backend)`` with one spec per
    join input (``backend`` is the parent-resolved execution backend the
    term runs under):

    * ``("resident", key)`` — the resident base relation as-is;
    * ``("version", key, version, runs)`` — the base lifted to ``version``
      by the shipped signed runs (cached per worker);
    * ``("delta", key, buffer)`` — the term's (tiny) sign-split delta rows,
      shipped inline.

    Only delta runs and the delta relation travel with the task — the base
    relations are resident — which is what makes a maintenance batch's wire
    cost proportional to the batch.  Returns the term's sorted output rows
    (column-major buffer) and the work counts.
    """
    from repro.incremental.ivm import execute_delta_term

    db_tokens, order, specs, backend = task
    order = tuple(order)
    digests = dict(db_tokens)
    resident = {
        key: (attrs, relation)
        for key, attrs, relation in _resident_database(db_tokens)
    }
    with scoped_backend(backend), scoped_work_counter() as counter:
        relations: list[Relation] = []
        delta_index = -1
        for spec in specs:
            kind, key = spec[0], spec[1]
            attrs, base = resident[key]
            if kind == "resident":
                relations.append(base)
            elif kind == "version":
                relations.append(
                    _versioned_relation(
                        key, digests[key], attrs, base, spec[2], spec[3]
                    )
                )
            elif kind == "delta":
                rows, columns = unpack_columns(spec[2], len(attrs))
                delta = Relation.from_codes(
                    f"d{key}", attrs, rows, presorted=True, distinct=True
                )
                if columns:
                    delta.column_set(attrs).adopt_columns(columns)
                delta_index = len(relations)
                relations.append(delta)
            else:  # pragma: no cover - guarded by the engine
                raise ValueError(f"unknown delta term spec {kind!r}")
        rows = execute_delta_term(relations, order, delta_index)
        buffer = pack_output_rows(rows, len(order))
        counts = counter.as_dict()
    return buffer, counts


def run_faq_task(task: tuple) -> tuple[bytes, list, dict]:
    """⊗-join the shard's factors and ⊕-marginalize (worker-side entry point).

    ``task`` is ``(semiring_ref, free, factor_payload)`` where each factor
    entry is ``(name, attrs, buffer, values)``.  Returns the marginalized
    shard result as ``(rows buffer, values list, counts)``.
    """
    from functools import reduce

    from repro.faq.annotated import AnnotatedRelation

    semiring_ref, free, factor_payload = task
    semiring = resolve_semiring(semiring_ref)
    with scoped_work_counter() as counter:
        factors = []
        for name, attrs, buffer, values in factor_payload:
            if attrs:
                rows, _ = unpack_columns(buffer, len(attrs))
            else:
                # Nullary (scalar) factors: the single empty row carries no
                # codes, so the buffer is empty — the values list is the
                # row count.
                rows = [()] * len(values)
            factors.append(
                AnnotatedRelation._from_codes(
                    name, tuple(attrs), semiring, dict(zip(rows, values))
                )
            )
        product = reduce(lambda a, b: a.multiply(b), factors)
        result = product.marginalize(free)
        out_schema = result.schema
        items = sorted(result._data.items())
        buffer = pack_output_rows([row for row, _ in items], len(out_schema))
        values = [value for _, value in items]
        counts = counter.as_dict()
    return buffer, values, counts


# -- semiring shipping --------------------------------------------------------------


def semiring_reference(semiring):
    """A picklable reference to a semiring (stock ones ship by name)."""
    from repro.faq import semiring as stock

    for attr in ("BOOLEAN", "COUNTING", "FRACTION", "MIN_PLUS", "MAX_PRODUCT"):
        if getattr(stock, attr) is semiring:
            return ("stock", attr)
    try:
        return ("pickle", pickle.dumps(semiring))
    except Exception as error:
        raise ValueError(
            f"semiring {semiring} is not picklable and not one of the stock "
            f"semirings; parallel FAQ evaluation cannot ship it to workers"
        ) from error


def resolve_semiring(reference):
    """Invert :func:`semiring_reference` in the worker."""
    kind, payload = reference
    if kind == "stock":
        from repro.faq import semiring as stock

        return getattr(stock, payload)
    return pickle.loads(payload)


# -- the pool -----------------------------------------------------------------------


def _run_with_updates(wrapped: tuple):
    """Worker-side shim: install piggybacked updates, then run the task."""
    function, updates, task = wrapped
    _apply_updates(updates)
    return function(task)


def _pack_entry(attrs, relation):
    """One relation's shippable payload: a file reference if it has one.

    A relation bound to a persisted column store (its canonical column set
    carries a :class:`~repro.relational.storage.ColumnBacking`) ships as
    ``("file", paths, nrows)`` — a few strings on the wire, workers mmap
    the digest-named artifact.  Everything else ships as the raw
    column-major byte buffer, exactly as before.
    """
    column_set = relation.column_set(attrs)
    backing = getattr(column_set, "backing", None)
    if backing is not None and backing.paths:
        return ("file", backing.paths, column_set.nrows)
    return pack_column_range(column_set, 0, column_set.nrows)


def _payload_bytes(buffer) -> int:
    """Column bytes a payload puts on the wire (file references ship none)."""
    return 0 if type(buffer) is tuple else len(buffer)


class WorkerPool:
    """A persistent ``multiprocessing`` pool of content-addressed relations.

    ``ensure_database`` makes a set of relations resident in every worker —
    and locally, so single-task fast paths run in process.  Residency is
    per relation: the token is a tuple of ``(key, content digest)`` pairs,
    and binding is a no-op for every relation whose digest is already
    resident, so repeated executes on one database ship *no* input data and
    a rebind that changes only some relations reships **only those**:

    * the full payload ships once, through the pool initializer, and
      becomes the *baseline*;
    * later digest changes ship as idempotent per-task updates (each worker
      unpacks a digest at most once; unchanged relations never travel);
    * once the pending updates outweigh half the baseline, the pool
      recycles — re-forking and re-sealing is cheaper than dragging large
      buffers along with every task.

    The start method is ``fork`` where available, ``spawn`` elsewhere
    (tasks are self-contained either way).
    """

    def __init__(self, workers: int) -> None:
        self.workers = max(1, workers)
        self._pool = None
        #: Digests shipped through the running pool's initializer.
        self._baseline: dict | None = None
        self._baseline_bytes = 0
        #: Pending per-task updates: ``{key: (attrs, digest, buffer)}``.
        self._updates: dict = {}
        #: Cumulative bytes shipped as piggybacked updates since the pool
        #: started — once it exceeds the baseline, re-forking is cheaper.
        self._update_traffic = 0
        #: The tokens of the last bind (for the close-time local release).
        self._tokens: tuple | None = None
        #: Cumulative column-buffer bytes ever handed to workers (baseline
        #: payloads plus every piggybacked-update occurrence) and the count
        #: of file references shipped instead — the wire-cost ledger the
        #: out-of-core benchmark gates on.
        self.shipped_column_bytes = 0
        self.shipped_file_refs = 0

    @property
    def shipping_stats(self) -> dict:
        """Cumulative wire cost: column bytes vs file references shipped."""
        return {
            "column_bytes": self.shipped_column_bytes,
            "file_refs": self.shipped_file_refs,
        }

    @staticmethod
    def _context():
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )

    def ensure_started(self) -> None:
        """Start a database-free pool (FAQ tasks carry their own factors)."""
        if self.workers > 1 and self._pool is None:
            self._pool = self._context().Pool(processes=self.workers)

    def _start(self, payload: list[tuple]) -> None:
        self._pool = self._context().Pool(
            processes=self.workers,
            initializer=_init_worker_db,
            initargs=(payload,),
        )
        self._baseline = {key: digest for key, _, digest, _ in payload}
        self._baseline_bytes = sum(
            _payload_bytes(buffer) for _, _, _, buffer in payload
        )
        self.shipped_column_bytes += self._baseline_bytes
        self.shipped_file_refs += sum(
            1 for _, _, _, buffer in payload if type(buffer) is tuple
        )
        self._updates = {}
        self._update_traffic = 0

    def _terminate(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self._baseline = None
        self._baseline_bytes = 0
        self._updates = {}
        self._update_traffic = 0

    def ensure_database(
        self, tokens, entries: list[tuple], payload: list[tuple] | None = None
    ) -> None:
        """Make ``entries`` (``(key, attrs, relation, digest)``) resident.

        ``tokens`` is the ordered ``(key, digest)`` tuple tasks will carry;
        ``payload`` the optional pre-packed ``(key, attrs, digest, buffer)``
        form, consumed only when the pool actually (re)starts.
        """
        # The local (in-process) residency is a module global shared by
        # every pool, so another engine may have displaced entries since we
        # last bound — reconcile it per relation, digest-guarded.
        install_local_entries(entries)
        self._tokens = tuple(tokens)
        if self.workers <= 1:
            return
        if self._pool is None or self._baseline is None:
            self._terminate()
            if payload is None:
                payload = [
                    (key, attrs, digest, _pack_entry(attrs, relation))
                    for key, attrs, relation, digest in entries
                ]
            self._start(payload)
            return
        # Diff against what the workers are guaranteed to reach (baseline
        # plus already-pending updates); pack only relations that changed.
        changed = []
        for key, attrs, relation, digest in entries:
            pending = self._updates.get(key)
            resident = pending[1] if pending else self._baseline.get(key)
            if resident != digest:
                changed.append((key, attrs, relation, digest))
        if not changed and self._update_traffic <= self._baseline_bytes:
            return
        for key, attrs, relation, digest in changed:
            self._updates[key] = (attrs, digest, _pack_entry(attrs, relation))
        update_bytes = sum(
            _payload_bytes(b) for _, _, b in self._updates.values()
        )
        if (
            update_bytes * 2 > max(1, self._baseline_bytes)
            or self._update_traffic > self._baseline_bytes
        ):
            # One round of updates outweighs re-forking, or the cumulative
            # per-task shipping already has (updates ride along with every
            # task until the pool re-seals): recycle and re-seal.
            self._terminate()
            payload = [
                (key, attrs, digest, _pack_entry(attrs, relation))
                for key, attrs, relation, digest in entries
            ]
            self._start(payload)

    def map(self, function, tasks: list) -> list:
        """Run ``function`` over ``tasks`` on the pool, results in task order."""
        if self._pool is None or len(tasks) <= 1:
            return [function(task) for task in tasks]
        if self._updates:
            updates = [
                (key, attrs, digest, buffer)
                for key, (attrs, digest, buffer) in self._updates.items()
            ]
            update_bytes = sum(
                _payload_bytes(buffer) for _, _, _, buffer in updates
            )
            self._update_traffic += len(tasks) * update_bytes
            self.shipped_column_bytes += len(tasks) * update_bytes
            self.shipped_file_refs += len(tasks) * sum(
                1 for _, _, _, buffer in updates if type(buffer) is tuple
            )
            async_results = [
                self._pool.apply_async(
                    _run_with_updates, ((function, updates, task),)
                )
                for task in tasks
            ]
        else:
            async_results = [
                self._pool.apply_async(function, (task,)) for task in tasks
            ]
        return [result.get() for result in async_results]

    def close(self) -> None:
        self._terminate()
        if self._tokens is not None:
            _release_local_entries(self._tokens)
        self._tokens = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
