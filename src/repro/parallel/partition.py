"""Shard planning: range-partition a query on its first global-order attribute.

A shard is a restriction of the whole query to a *code range* of the first
variable ``v0`` of the global variable order (plus, for heavy keys, a
sub-range of the second variable ``v1``).  Because every relation stores its
rows sorted under the global order restricted to its attributes, a shard's
portion of each relation is one contiguous row range, located by binary
search — no data is touched to plan a partition.

Why this is correct: any output tuple's ``v0`` value lies in exactly one
shard's range, and a relation restricted to that range retains every tuple
that can join into the shard's outputs (relations not mentioning ``v0`` are
kept whole).  Shard outputs are therefore pairwise disjoint, their union is
the full answer, and — since the ranges ascend — concatenating the sorted
per-shard outputs in shard order *is* the globally sorted answer.

Heavy hitters: a single ``v0`` key whose row weight exceeds the balanced
per-shard share would serialize its shard.  The split reuses the Lemma 6.1
product test — a key ``c`` is heavy when ``weight(c) · k > total`` for ``k``
shards, the analogue of a partition piece violating
``x_count · y_degree <= |T|`` — and such keys are split further into
sub-shards by ranges of ``v1``, so a star-shaped skew (one hub joined to
everything) still spreads across the pool.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.relational.columns import ColumnSet

__all__ = ["ShardSpec", "ShardTable", "plan_shards", "slice_bounds"]

#: Open upper bound for the last range of a partition: any code is below it,
#: so trailing shards cover codes the planner never saw (they simply match
#: nothing).
TOP_CODE = 1 << 62


@dataclass(frozen=True)
class ShardSpec:
    """One shard: a ``v0`` code range, plus a ``v1`` sub-range for heavy keys.

    Attributes:
        index: position in the shard plan (shard outputs concatenate in this
            order).
        v0: half-open code range ``[lo, hi)`` on the first order variable.
        v1: for heavy-key sub-shards (where ``v0`` pins a single code), the
            half-open code range on the second order variable; ``None``
            otherwise.
    """

    index: int
    v0: tuple[int, int]
    v1: tuple[int, int] | None = None

    @property
    def is_heavy(self) -> bool:
        return self.v1 is not None


@dataclass(frozen=True)
class ShardTable:
    """A relation (or factor) as the partitioner sees it.

    Attributes:
        attrs: the global order restricted to the table's attributes — the
            sort order of ``column_set``.
        column_set: the rows sorted under ``attrs``.
    """

    attrs: tuple[str, ...]
    column_set: ColumnSet


def key_runs(column, lo: int = 0, hi: int | None = None) -> list[tuple[int, int]]:
    """The ``(code, run_length)`` pairs of a sorted column range.

    Counted with :class:`collections.Counter` (a C-level loop over the
    ``array('q')`` codes) rather than a Python run scan — shard planning
    touches every anchored row once, so this is the partitioner's only
    data-sized cost.
    """
    if hi is None:
        hi = len(column)
    counts = Counter(memoryview(column)[lo:hi])
    return sorted(counts.items())


def _merged_weights(run_lists: Sequence[list[tuple[int, int]]]) -> list[tuple[int, int]]:
    """Sum run lists into one ascending ``(code, total_weight)`` list."""
    weights: Counter = Counter()
    for runs in run_lists:
        weights.update(dict(runs))
    return sorted(weights.items())


def split_ranges(
    weights: list[tuple[int, int]], parts: int
) -> list[tuple[int, int]]:
    """Split a weighted, ascending code list into ``<= parts`` balanced ranges.

    Ranges are contiguous, ascending, and cover ``[0, TOP_CODE)``; a range is
    closed once it holds at least a ``1/parts`` share of the total weight.
    """
    if parts <= 1 or len(weights) <= 1:
        return [(0, TOP_CODE)]
    total = sum(w for _, w in weights)
    ranges: list[tuple[int, int]] = []
    cursor = 0
    acc = 0
    for code, weight in weights:
        acc += weight
        if acc * parts >= total and len(ranges) < parts - 1:
            ranges.append((cursor, code + 1))
            cursor = code + 1
            acc = 0
    ranges.append((cursor, TOP_CODE))
    return ranges


def _v1_weights(
    tables: Sequence[ShardTable], order: tuple[str, ...], heavy_code: int
) -> list[tuple[int, int]]:
    """The ``v1`` code weights relevant under ``v0 = heavy_code``."""
    v0, v1 = order[0], order[1]
    run_lists = []
    for table in tables:
        attrs = table.attrs
        if not attrs:
            continue
        column_set = table.column_set
        if attrs[0] == v0:
            if len(attrs) >= 2 and attrs[1] == v1:
                lo, hi = column_set.code_range(heavy_code, heavy_code + 1)
                run_lists.append(key_runs(column_set.columns[1], lo, hi))
        elif attrs[0] == v1:
            run_lists.append(key_runs(column_set.columns[0]))
    return _merged_weights(run_lists)


def plan_shards(
    tables: Sequence[ShardTable],
    order: tuple[str, ...],
    shards: int,
    v1_weights: Callable[[int], list[tuple[int, int]]] | None = None,
) -> list[ShardSpec]:
    """Plan ``~shards`` disjoint, covering shard specs for the query.

    Light keys are grouped into contiguous ``v0`` code ranges of roughly
    equal total row weight; a heavy key (Lemma 6.1 test:
    ``weight · shards > total``) gets its own spec(s), sub-split on ``v1``
    proportionally to its share of the weight.  The returned specs ascend in
    ``(v0, v1)`` range order — the merge order of the parallel engine.
    """
    order = tuple(order)
    if not order:
        return [ShardSpec(0, (0, TOP_CODE))]
    v0 = order[0]
    anchored = [t for t in tables if t.attrs and t.attrs[0] == v0]
    weights = _merged_weights(
        [key_runs(t.column_set.columns[0]) for t in anchored]
    )
    if shards <= 1 or not weights:
        return [ShardSpec(0, (0, TOP_CODE))]
    # A single distinct v0 key is the pure-hub case: it always passes the
    # heavy test below (weight == total), so it flows into the v1 sub-split
    # rather than serializing onto one shard.
    if v1_weights is None:
        v1_weights = lambda code: _v1_weights(tables, order, code)  # noqa: E731

    total = sum(w for _, w in weights)
    specs: list[ShardSpec] = []
    cursor = 0
    acc = 0

    def close_light(hi_code: int) -> None:
        nonlocal cursor, acc
        if acc > 0:
            specs.append(ShardSpec(len(specs), (cursor, hi_code)))
        cursor = hi_code
        acc = 0

    for code, weight in weights:
        if weight * shards > total:
            close_light(code)
            parts = min(shards, -(-weight * shards // total))
            sub = (
                split_ranges(v1_weights(code), parts)
                if len(order) >= 2 and parts > 1
                else [None]
            )
            for v1_range in sub:
                specs.append(
                    ShardSpec(len(specs), (code, code + 1), v1_range)
                )
            cursor = code + 1
        else:
            acc += weight
            if acc * shards >= total:
                close_light(code + 1)
    if acc > 0:
        specs.append(ShardSpec(len(specs), (cursor, TOP_CODE)))
    elif specs:
        # Extend the final spec's v0 range to the open top so trailing codes
        # (unseen by the planner) fall into *some* shard.
        last = specs[-1]
        if last.v1 is None:
            specs[-1] = ShardSpec(last.index, (last.v0[0], TOP_CODE))
        else:
            specs.append(ShardSpec(len(specs), (last.v0[1], TOP_CODE)))
    return specs


def slice_bounds(
    table: ShardTable, order: tuple[str, ...], spec: ShardSpec
) -> tuple[int, int]:
    """The row range of ``table`` belonging to ``spec`` (binary searches only).

    Tables anchored on ``v0`` restrict to the spec's ``v0`` code range (and,
    inside a heavy key's run, to the ``v1`` sub-range); tables led by ``v1``
    restrict to the ``v1`` sub-range of heavy specs; all other tables are
    kept whole.
    """
    attrs = table.attrs
    column_set = table.column_set
    if not attrs or not order:
        return 0, column_set.nrows
    v0 = order[0]
    v1 = order[1] if len(order) > 1 else None
    if attrs[0] == v0:
        lo, hi = column_set.code_range(spec.v0[0], spec.v0[1])
        if spec.v1 is not None and len(attrs) >= 2 and attrs[1] == v1:
            # Heavy specs pin v0 to one code, so rows [lo, hi) agree on it
            # and their v1 column is sorted — a nested binary search.
            lo, hi = column_set.code_range(spec.v1[0], spec.v1[1], lo, hi, depth=1)
        return lo, hi
    if spec.v1 is not None and attrs[0] == v1:
        return column_set.code_range(spec.v1[0], spec.v1[1])
    return 0, column_set.nrows
