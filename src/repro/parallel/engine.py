""":class:`ParallelQueryEngine` — the sharded, pooled query-execution facade.

Same facade as :class:`repro.planner.QueryEngine` (construct per query, call
:meth:`~ParallelQueryEngine.execute` per database) plus ``workers=N``: the
engine range-partitions the query on its first global-order attribute
(:mod:`repro.parallel.partition`), fans the shards out over a persistent
worker pool (:mod:`repro.parallel.pool`), and reassembles the sorted
per-shard outputs — an ordered concatenation, since shard ranges ascend and
outputs are disjoint — into one relation that is *bit-identical* to serial
execution.

Four shard drivers mirror the serial execution strategies:

=============== ====================================================
``generic``     Generic Join per shard (``relational/wcoj.py``)
``leapfrog``    Leapfrog Triejoin per shard (``relational/leapfrog.py``)
``yannakakis``  bags of the planner-chosen tree decomposition per
                shard, then Yannakakis (``relational/yannakakis.py``)
``panda``       the full da-subw PANDA driver per shard, with the
                data-independent :class:`~repro.planner.PandaPlan` per
                isomorphism class precomputed by the parent planner and
                shipped to the workers
=============== ====================================================

With ``workers <= 1`` the ``generic``/``leapfrog`` drivers run in-process
through :func:`repro.relational.execution.execute_join`'s zero-copy
root-range restriction — no buffers, no pool — which is also the reference
implementation the property tests pin the multiprocess path against.

Work accounting: every worker runs its shard under a scoped
:class:`~repro.relational.operators.WorkCounter` and reports the counts
home; the engine absorbs them into the *parent scope's* counter, so
``repro run --stats`` totals reflect all work performed.  Output-side work
(``tuples_emitted`` of the top-level join) is worker-count-independent —
it equals the output size; scan-side work may include per-shard overhead
(relations not anchored on the sharding attribute are probed by every
shard).
"""

from __future__ import annotations

import hashlib
import os
import pickle
from array import array
from typing import Iterable, Sequence

from repro.core.constraints import ConstraintSet
from repro.exceptions import PandaError, QueryError
from repro.parallel.partition import ShardSpec, ShardTable, plan_shards, slice_bounds
from repro.parallel.pool import (
    WorkerPool,
    default_worker_count,
    pack_column_range,
    run_faq_task,
    run_shard_task,
    semiring_reference,
    unpack_column_arrays,
    unpack_columns,
)
from repro.relational.operators import current_counter
from repro.relational.relation import Relation

__all__ = ["ParallelQueryEngine", "parallel_faq_join"]


def _order_tables(relations: Sequence[Relation], order: tuple[str, ...]):
    """Each relation as a :class:`ShardTable` under the global order."""
    tables = []
    for relation in relations:
        attrs = tuple(v for v in order if v in relation.attributes)
        tables.append(ShardTable(attrs, relation.column_set(attrs)))
    return tables


def _shard_order_error() -> PandaError:
    return PandaError(
        "shard outputs overlap or arrived out of order — the "
        "partition plan violated its disjoint-ascending contract"
    )


def _merge_shard_rows(row_lists: Sequence[list]) -> list:
    """Merge sorted per-shard outputs into the globally sorted row list.

    Shard specs ascend and their outputs are disjoint, so this is an
    ordered concatenation; the boundary check turns any partition-planning
    bug into a loud failure instead of a silently unsorted result.
    """
    merged: list = []
    for rows in row_lists:
        if rows and merged and rows[0] <= merged[-1]:
            raise _shard_order_error()
        merged.extend(rows)
    return merged


class ParallelQueryEngine:
    """Evaluate a full/Boolean CQ across a worker pool, bit-identically.

    Drop-in for :class:`repro.planner.QueryEngine` where the query is a full
    or Boolean conjunctive query: same constructor shape, same
    ``execute(database, driver)`` call, same :class:`PlanResult` result —
    plus ``workers=N`` and shard-level drivers.

    Example:
        >>> engine = ParallelQueryEngine(triangle_query(), workers=4)  # doctest: +SKIP
        >>> result = engine.execute(database)                          # doctest: +SKIP
        >>> result.relation == QueryEngine(...).execute(database).relation
    """

    DRIVERS = ("generic", "leapfrog", "yannakakis", "panda")

    #: Shards planned per worker.  Finer shards let the pool balance residual
    #: skew (the slowest shard bounds the wall-clock) at near-zero extra cost:
    #: whole-relation payloads are cached per worker, and slicing is C-speed.
    OVERSHARD = 2

    def __init__(
        self,
        query,
        constraints: ConstraintSet | None = None,
        backend: str = "exact",
        planner=None,
        workers: int | None = None,
        execution_backend: str | None = None,
    ) -> None:
        from repro.planner import Planner

        self.query = query
        self.constraints = constraints
        self.backend = backend
        # ``backend`` is the planning layer's LP solver choice;
        # ``execution_backend`` picks interpreted vs vectorized execution
        # (``None`` defers to ``REPRO_BACKEND`` / auto-detection) and is
        # shipped to the pool so workers execute under the same backend.
        if execution_backend is not None:
            from repro.relational.backend import resolve_backend

            resolve_backend(execution_backend)  # fail fast on a typo
        self.execution_backend = execution_backend
        self.planner = planner if planner is not None else Planner()
        self.workers = default_worker_count() if workers is None else max(1, workers)
        self._pool: WorkerPool | None = None
        self._decompositions = None
        #: (constraints fingerprint, backend) -> shipped plan bundle.
        self._panda_bundles: dict = {}
        #: constraints fingerprint -> chosen decomposition bags.
        self._yannakakis_bags: dict = {}
        #: The currently bound database: ``(identity key, token, pinned
        #: column sets, {shard target: specs})``.  Pinning the column sets
        #: keeps their ids stable, so re-executing on the same database
        #: skips re-packing, re-digesting, and re-planning the shards.
        self._binding: tuple | None = None
        #: Atom bindings for the current database (pinned), so queries whose
        #: atom variables differ from the stored schemas don't re-relabel —
        #: and hence re-pack/re-digest — on every execute.
        self._bound_db: tuple | None = None
        #: Shipped dictionary value lists, rebuilt only when a dictionary
        #: grows (``((universe, lengths), {attr: values})``).
        self._dict_values: tuple | None = None

    # -- facade parity ---------------------------------------------------------

    @property
    def cache_stats(self):
        return self.planner.stats

    @property
    def shipping_stats(self) -> dict:
        """The pool's cumulative wire cost (column bytes vs file refs).

        Zeros before the first pooled execute; file-backed relations keep
        ``column_bytes`` at zero across binds and rebinds — the invariant
        ``benchmarks/bench_out_of_core.py`` gates on.
        """
        if self._pool is None:
            return {"column_bytes": 0, "file_refs": 0}
        return self._pool.shipping_stats

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ParallelQueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals -------------------------------------------------------------

    def _pool_for(self, tasks: int) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(self.workers)
        return self._pool

    def _bind_atoms(self, database) -> list[Relation]:
        """The query's atoms bound against ``database`` (cached, pinned).

        Safe to cache: relations are immutable and ``Database.add`` only
        admits new names, so existing bindings never change under it.
        """
        cached = self._bound_db
        if cached is not None and cached[0] is database:
            return cached[1]
        relations = [atom.bind(database) for atom in self.query.body]
        self._bound_db = (database, relations)
        return relations

    def _database_state(self, tables) -> dict:
        """Per-database memo (token, payload, shard specs).

        Keyed by the identity of the bound relations' column sets; the sets
        are pinned in the binding so their ids cannot be reused while the
        memo lives.  One binding is kept — the engine's working database.
        """
        key = tuple((id(t.column_set), t.column_set.nrows) for t in tables)
        binding = self._binding
        if binding is None or binding[0] != key:
            binding = (key, tuple(t.column_set for t in tables), {})
            self._binding = binding
        return binding[2]

    def _query_decompositions(self):
        if self._decompositions is None:
            from repro.decompositions.enumeration import tree_decompositions

            self._decompositions = tree_decompositions(self.query.hypergraph())
        return self._decompositions

    def _resolve_constraints(self, database, constraints):
        if constraints is None:
            constraints = self.constraints
        if constraints is None:
            constraints = database.extract_cardinalities()
        return constraints

    def _yannakakis_extra(self, constraints: ConstraintSet) -> dict:
        from repro.core.query_plans import _best_decomposition
        from repro.planner.engine import constraints_fingerprint

        key = (constraints_fingerprint(constraints), self.backend)
        bags = self._yannakakis_bags.get(key)
        if bags is None:
            # Constraints over attributes outside the query's variables (a
            # self-join database's raw schemas) cannot inform the bag choice;
            # with nothing usable left, fall back to the first enumerated
            # decomposition (deterministic, still exact — the choice only
            # affects speed).
            universe = frozenset(self.query.variable_set)
            usable = ConstraintSet(
                [c for c in constraints if c.y <= universe]
            )
            decompositions = self._query_decompositions()
            if len(usable) > 0:
                best = _best_decomposition(
                    self.planner,
                    self.query.hypergraph(),
                    usable,
                    decompositions,
                    self.backend,
                )
            else:
                best = decompositions[0]
            bags = tuple(best.bags)
            self._yannakakis_bags[key] = bags
        return {"bags": bags, "boolean": self.query.is_boolean}

    def _panda_extra(self, constraints: ConstraintSet) -> dict:
        """The per-shard PANDA payload: precomputed plans + dictionaries.

        The parent planner builds one :class:`~repro.planner.PandaPlan` per
        selector-image isomorphism class — pure LP/proof-sequence work, fully
        data-independent — and the bundle ships to the pool, where each
        worker seeds its planner once per fingerprint.
        """
        from repro.decompositions.selectors import selector_images
        from repro.planner.engine import constraints_fingerprint
        from repro.relational.columns import Dictionary

        key = (constraints_fingerprint(constraints), self.backend)
        bundle = self._panda_bundles.get(key)
        if bundle is None:
            universe = tuple(sorted(self.query.variable_set))
            entries = []
            for image in selector_images(self._query_decompositions()):
                targets = tuple(sorted(image, key=lambda b: tuple(sorted(b))))
                plan = self.planner.plan_rule(
                    universe, targets, constraints, backend=self.backend
                )
                entries.append(
                    (universe, targets, constraints, self.backend, plan)
                )
            blob = pickle.dumps(entries)
            bundle = (blob, hashlib.sha1(blob).hexdigest())
            self._panda_bundles[key] = bundle
        blob, token = bundle
        universe = tuple(sorted(self.query.variable_set))
        # Dictionary value lists are append-only; rebuild the shipped copies
        # only when some dictionary actually grew.
        lengths = tuple(len(Dictionary.of(v)) for v in universe)
        cached_dicts = self._dict_values
        if cached_dicts is None or cached_dicts[0] != (universe, lengths):
            cached_dicts = (
                (universe, lengths),
                {v: list(Dictionary.of(v).values) for v in universe},
            )
            self._dict_values = cached_dicts
        return {
            "atom_vars": tuple(atom.variables for atom in self.query.body),
            "boolean": self.query.is_boolean,
            "query_name": self.query.name,
            "constraints": constraints,
            "backend": self.backend,
            "plans_blob": blob,
            "plans_token": token,
            "dict_values": cached_dicts[1],
            "parent_pid": os.getpid(),
        }

    # -- execution --------------------------------------------------------------

    def execute(
        self,
        database,
        driver: str = "generic",
        constraints: ConstraintSet | None = None,
    ):
        """Evaluate the query on one database across the worker pool.

        Returns the same :class:`~repro.core.query_plans.PlanResult` shape as
        the serial drivers; ``result.relation`` carries the same sorted code
        rows serial execution produces.
        """
        from repro.core.query_plans import PlanResult
        from repro.relational.backend import current_backend, scoped_backend

        query = self.query
        if not (query.is_full or query.is_boolean):
            raise QueryError(
                "the parallel engine covers full and Boolean conjunctive "
                "queries; project the full result instead"
            )
        if driver not in self.DRIVERS:
            raise PandaError(
                f"unknown driver {driver!r}; pick from {self.DRIVERS}"
            )
        constraints = self._resolve_constraints(database, constraints)
        order = tuple(sorted(query.variable_set))
        relations = self._bind_atoms(database)
        tables = _order_tables(relations, order)
        shard_target = (
            self.workers * self.OVERSHARD if self.workers > 1 else 1
        )
        state = self._database_state(tables)
        specs = state.get(("specs", shard_target))
        if specs is None:
            specs = plan_shards(tables, order, shard_target)
            state[("specs", shard_target)] = specs
        counter = current_counter()
        counter.partitions += 1

        if driver in ("generic", "leapfrog"):
            extra: dict = {"boolean": query.is_boolean}
        elif driver == "yannakakis":
            extra = self._yannakakis_extra(constraints)
        else:
            extra = self._panda_extra(constraints)

        columns = None
        with scoped_backend(self.execution_backend):
            # Resolve once in the parent and ship the concrete name, so an
            # engine-level override (or an enclosing ``scoped_backend``)
            # reaches the forked workers, whose environment only carries
            # ``REPRO_BACKEND``.
            extra["execution_backend"] = current_backend()
            if self.workers <= 1 and driver in ("generic", "leapfrog"):
                rows, boolean = self._execute_inline(
                    driver, relations, tables, order, specs
                )
            else:
                rows, columns, boolean = self._execute_pooled(
                    driver, relations, tables, order, specs, extra
                )

        if query.is_boolean:
            relation = Relation(query.name, (), [()] if boolean else [])
            return PlanResult(relation=relation, boolean=boolean)
        relation = Relation.from_codes(
            query.name, order, rows, presorted=True, distinct=True
        )
        if columns is not None and rows:
            relation.column_set(order).adopt_columns(columns)
        return PlanResult(relation=relation, boolean=not relation.is_empty())

    def _execute_inline(
        self, driver, relations, tables, order, specs: list[ShardSpec]
    ):
        """Single-worker path: zero-copy root-range shards, no pool, no IPC."""
        from repro.relational.leapfrog import leapfrog_triejoin
        from repro.relational.wcoj import generic_join

        join = generic_join if driver == "generic" else leapfrog_triejoin
        row_lists = []
        for spec in specs:
            root_ranges = [
                slice_bounds(table, order, spec) for table in tables
            ]
            row_lists.append(
                join(relations, order, root_ranges=root_ranges).code_rows
            )
        rows = _merge_shard_rows(row_lists)
        return rows, bool(rows)

    def _execute_pooled(
        self, driver, relations, tables, order, specs: list[ShardSpec], extra: dict
    ):
        """Bind the database to the pool, fan row-range tasks out, merge.

        Shipping is content-addressed **per relation**
        (:meth:`~repro.relational.columns.ColumnSet.content_digest`): on the
        first bind the full payload seeds every worker, and a later rebind
        reships only the relations whose digests changed — an unchanged
        relation never travels again (see :class:`~repro.parallel.pool.
        WorkerPool`).  Shard tasks then carry only per-relation ``(lo, hi)``
        row ranges, executed over the resident relations through the
        zero-copy root-range restriction.
        """
        state = self._database_state(tables)
        tokens = state.get("tokens")
        if tokens is None:
            # Keys qualify the atom position so self-joins restricted to
            # different variable orders stay distinct resident entries.
            tokens = tuple(
                (
                    f"{relation.name}#{index}",
                    table.column_set.content_digest(),
                )
                for index, (relation, table) in enumerate(zip(relations, tables))
            )
            state["tokens"] = tokens
        entries = [
            (key, table.attrs, relation, digest)
            for (key, digest), relation, table in zip(tokens, relations, tables)
        ]
        pool = self._pool_for(len(specs))
        pool.ensure_database(tokens, entries)
        tasks = [
            (
                tokens,
                driver,
                order,
                tuple(slice_bounds(table, order, spec) for table in tables),
                extra,
            )
            for spec in specs
        ]
        results = pool.map(run_shard_task, tasks)
        counter = current_counter()
        arity = len(order)
        merged_columns = [array("q") for _ in range(arity)]
        previous_last: tuple | None = None
        boolean = False
        for buffer, shard_boolean, counts in results:
            boolean = boolean or shard_boolean
            counter.absorb(counts)
            if not buffer:
                continue
            shard_columns = unpack_column_arrays(buffer, arity)
            first = tuple(column[0] for column in shard_columns)
            if previous_last is not None and first <= previous_last:
                raise _shard_order_error()
            previous_last = tuple(column[-1] for column in shard_columns)
            for target, column in zip(merged_columns, shard_columns):
                target.extend(column)
        rows = list(zip(*merged_columns)) if merged_columns[0] else []
        return rows, tuple(merged_columns), boolean

    # -- FAQ -------------------------------------------------------------------

    def execute_faq(self, factors: Sequence, free: Iterable[str] = ()):
        """⊗-join annotated factors and ⊕-marginalize to ``free``, sharded.

        Delegates to :func:`parallel_faq_join` on this engine's pool; see
        there for the exactness contract.
        """
        return parallel_faq_join(
            factors,
            free,
            workers=self.workers,
            pool=self._pool_for(self.workers),
        )


def parallel_faq_join(
    factors: Sequence,
    free: Iterable[str] = (),
    workers: int | None = None,
    pool: WorkerPool | None = None,
    name: str | None = None,
):
    """Parallel FAQ evaluation: ``⊕_{bound vars} ⊗_i factors[i]``.

    Shards on the first variable of the sorted global order, ⊗-joins and
    ⊕-marginalizes each shard in a worker, then ⊕-combines the shard
    results in ascending shard order.  Over exact domains (``Fraction`` /
    ``int`` / ``bool`` / ``min`` / ``max`` — every stock semiring) the
    result is bit-identical to the serial
    ``reduce(multiply).marginalize(free)``: sharding only regroups an
    associative-commutative exact ⊕.

    Args:
        factors: :class:`~repro.faq.annotated.AnnotatedRelation` factors,
            all over one semiring.
        free: the output (free) variables; everything else is ⊕-ed out.
        workers: pool size (defaults to the machine's cores, capped at 8).
        pool: an existing :class:`WorkerPool` to reuse; a temporary pool is
            created (and torn down) when omitted and ``workers > 1``.
        name: output relation name.
    """
    from repro.faq.annotated import AnnotatedRelation

    factors = list(factors)
    if not factors:
        raise QueryError("parallel FAQ evaluation needs at least one factor")
    semiring = factors[0].semiring
    for factor in factors[1:]:
        if factor.semiring is not semiring:
            raise QueryError(
                f"factors mix semirings ({semiring} vs {factor.semiring})"
            )
    free = tuple(free)
    order = tuple(sorted(set().union(*(f.attributes for f in factors))))
    if workers is None:
        workers = default_worker_count()

    # Sort each factor's (code row, value) pairs under the global order once;
    # rows feed the shard planner, values stay index-aligned for slicing.
    shard_target = (
        workers * ParallelQueryEngine.OVERSHARD if workers > 1 else 1
    )
    factor_rows: list[list] = []
    factor_values: list[list] = []
    tables: list[ShardTable] = []
    from repro.relational.columns import ColumnSet

    for factor in factors:
        attrs = tuple(v for v in order if v in factor.attributes)
        positions = tuple(factor.schema.index(a) for a in attrs)
        pairs = sorted(
            ((tuple(row[p] for p in positions), value)
             for row, value in factor._data.items()),
            key=lambda pair: pair[0],
        )
        rows = [row for row, _ in pairs]
        values = [value for _, value in pairs]
        factor_rows.append(rows)
        factor_values.append(values)
        tables.append(ShardTable(attrs, ColumnSet(attrs, rows, presorted=True)))

    specs = plan_shards(tables, order, shard_target)
    reference = semiring_reference(semiring)
    tasks = []
    for spec in specs:
        payload = []
        for factor, table, rows, values in zip(
            factors, tables, factor_rows, factor_values
        ):
            lo, hi = slice_bounds(table, order, spec)
            payload.append(
                (
                    factor.name,
                    table.attrs,
                    pack_column_range(table.column_set, lo, hi),
                    values[lo:hi],
                )
            )
        tasks.append((reference, free, payload))

    own_pool = pool is None and workers > 1 and len(tasks) > 1
    if pool is None:
        pool = WorkerPool(workers)
    try:
        if len(tasks) > 1:
            pool.ensure_started()
        results = pool.map(run_faq_task, tasks)
    finally:
        if own_pool:
            pool.close()

    counter = current_counter()
    add = semiring.add
    zero = semiring.zero
    # Workers build factors under the order-restricted attrs, so their rows
    # arrive in the *worker* product-schema order; the serial result's
    # schema follows the factors' original attribute order.  Unpack under
    # the former, permute into the latter (usually the identity).
    worker_schema = _first_appearance_schema(
        [table.attrs for table in tables], free
    )
    out_schema = _first_appearance_schema(
        [factor.schema for factor in factors], free
    )
    permutation = tuple(worker_schema.index(a) for a in out_schema)
    identity = permutation == tuple(range(len(out_schema)))
    data: dict = {}
    for buffer, values, counts in results:
        counter.absorb(counts)
        if worker_schema:
            rows, _ = unpack_columns(buffer, len(worker_schema))
        else:
            # Fully aggregated shards: the nullary row carries no codes, so
            # the buffer is empty — the values list is the row count.
            rows = [()] * len(values)
        for row, value in zip(rows, values):
            if not identity:
                row = tuple(row[p] for p in permutation)
            if row in data:
                value = add(data[row], value)
                if value == zero:
                    del data[row]
                    continue
            data[row] = value
    return AnnotatedRelation._from_codes(
        name or "⊕⊗(" + ",".join(f.name for f in factors) + ")",
        out_schema,
        semiring,
        data,
    )


def _first_appearance_schema(
    schemas, free: tuple[str, ...]
) -> tuple[str, ...]:
    """What ``reduce(multiply).marginalize(free)`` yields over ``schemas``.

    ⊗ appends each factor's fresh attributes in its own schema order, and
    ⊕-marginalization keeps the product order — i.e. first appearance across
    the factor sequence, filtered to the free variables.
    """
    schema: list[str] = []
    seen: set[str] = set()
    for factor_schema in schemas:
        for attr in factor_schema:
            if attr not in seen:
                seen.add(attr)
                schema.append(attr)
    keep = frozenset(free)
    return tuple(a for a in schema if a in keep)
