"""Partition-parallel execution: sharded columnar joins across a worker pool.

Architecture layer 7 (see ``docs/architecture.md``).  The subsystem
splits a query into disjoint shards by range-partitioning the
sorted code rows of the first global-order attribute — with a heavy-hitter
split in the spirit of Lemma 6.1 so skewed keys don't serialize — and fans
the shards out over a persistent ``multiprocessing`` worker pool:

* :mod:`repro.parallel.partition` plans the shards (code-range specs plus
  per-relation row bounds, all located by binary search on the sorted
  columns);
* :mod:`repro.parallel.pool` is the worker pool: the dictionary-encoded
  relations ship to each worker *once per database* as raw column-major
  ``array('q')`` code buffers (plans and dictionaries likewise seed once),
  and each shard task — just per-relation row ranges — executes through the
  existing serial drivers over the worker-resident relations;
* :mod:`repro.parallel.engine` exposes :class:`ParallelQueryEngine` — the
  :class:`repro.planner.QueryEngine`-shaped facade with ``workers=N`` — and
  the ordered merge that reassembles per-shard outputs into one relation.

Hard contract: for every driver and semiring, parallel output is
*bit-identical* to serial execution — the same sorted code rows, the same
exact ``Fraction`` annotations.  Parallelism only changes wall-clock time,
never results.
"""

from repro.parallel.engine import ParallelQueryEngine, parallel_faq_join
from repro.parallel.partition import ShardSpec, ShardTable, plan_shards, slice_bounds

__all__ = [
    "ParallelQueryEngine",
    "ShardSpec",
    "ShardTable",
    "parallel_faq_join",
    "plan_shards",
    "slice_bounds",
]
