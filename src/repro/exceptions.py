"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so callers
can catch a single base class.  Sub-hierarchies mirror the package layout:
LP-solver failures, schema/relational errors, and theory-level failures
(invalid proof sequences, witness violations, infeasible bounds).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class LPError(ReproError):
    """Base class for linear-programming errors."""


class InfeasibleError(LPError):
    """The linear program has no feasible solution."""


class UnboundedError(LPError):
    """The linear program's objective is unbounded."""


class SchemaError(ReproError):
    """A relational operation was attempted on incompatible schemas."""


class QueryError(ReproError):
    """A query or datalog rule is malformed."""


class DatalogError(QueryError):
    """A datalog program is malformed or not stratifiable."""


class ConstraintError(ReproError):
    """A degree constraint is malformed or has no guard."""


class ProofSequenceError(ReproError):
    """A proof sequence is invalid (negativity, or does not reach lambda)."""


class WitnessError(ReproError):
    """A claimed witness violates the inflow constraints of Prop. 5.6."""


class PandaError(ReproError):
    """The PANDA algorithm reached an inconsistent internal state."""


class DecompositionError(ReproError):
    """A tree decomposition is invalid for the given hypergraph."""


class StorageError(ReproError):
    """A persisted database directory is missing, corrupt, or incompatible."""


class IncrementalError(ReproError):
    """Incremental view maintenance reached an inconsistent state."""


class ServingError(ReproError):
    """The concurrent serving front end was misused or is not running."""


class OverloadError(ServingError):
    """A request was shed by admission control (backpressure).

    Carries ``retry_after`` — the seconds the client should wait before
    retrying, so shedding degrades into pacing instead of a hard failure.
    """

    def __init__(self, message: str, retry_after: float = 0.05) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class DeltaError(IncrementalError):
    """A change batch is invalid (e.g. deleting a tuple that is not there)."""
