"""Relational engine substrate.

Schema'd in-memory relations (:class:`~repro.relational.relation.Relation`),
database instances, the relational operators PANDA uses (join / semijoin /
project / union / Lemma 6.1 heavy-light partition), Yannakakis' acyclic-join
algorithm, and the Generic-Join worst-case-optimal baseline.
"""

from repro.relational.database import Database
from repro.relational.operators import (
    difference,
    heavy_light_partition,
    natural_join,
    project,
    select_equal,
    semijoin,
    union,
    work_counter,
)
from repro.relational.relation import Relation
from repro.relational.leapfrog import build_trie, leapfrog_triejoin
from repro.relational.wcoj import binary_join_plan, generic_join
from repro.relational.yannakakis import (
    JoinTree,
    acyclic_boolean,
    acyclic_join,
    full_reduce,
    join_tree_from_bags,
)

__all__ = [
    "Database",
    "JoinTree",
    "Relation",
    "acyclic_boolean",
    "acyclic_join",
    "binary_join_plan",
    "build_trie",
    "difference",
    "full_reduce",
    "generic_join",
    "leapfrog_triejoin",
    "heavy_light_partition",
    "join_tree_from_bags",
    "natural_join",
    "project",
    "select_equal",
    "semijoin",
    "union",
    "work_counter",
]
