"""Relational engine substrate.

Architecture layer 5 (see ``docs/architecture.md``), also housing the
layer-9 vectorized backend (:mod:`~repro.relational.vectorized`,
selected via :mod:`~repro.relational.backend`) and the layer-10
persisted mmap storage (:mod:`~repro.relational.storage`).  Contract:
relations are canonical sorted code rows over shared per-attribute
dictionaries, identical for every join algorithm, backend, and storage
medium.

Columnar, dictionary-encoded in-memory relations
(:class:`~repro.relational.relation.Relation` over
:mod:`~repro.relational.columns`), the shared sorted-trie iterator every
join algorithm drives (:mod:`~repro.relational.trie`), database instances,
the relational operators PANDA uses (join / semijoin / project / union /
Lemma 6.1 heavy-light partition), Yannakakis' acyclic-join algorithm, and
the two worst-case-optimal baselines (Generic Join and Leapfrog Triejoin).
"""

from repro.relational.columns import ColumnSet, Dictionary
from repro.relational.database import Database
from repro.relational.operators import (
    WorkCounter,
    current_counter,
    difference,
    heavy_light_partition,
    natural_join,
    project,
    scoped_work_counter,
    select_equal,
    semijoin,
    union,
    work_counter,
)
from repro.relational.relation import Relation
from repro.relational.storage import (
    ColumnStore,
    LazyDictionary,
    open_database_dir,
    save_database_dir,
)
from repro.relational.trie import SortedTrieIterator, leapfrog_search
from repro.relational.leapfrog import build_trie, leapfrog_triejoin
from repro.relational.wcoj import binary_join_plan, generic_join
from repro.relational.yannakakis import (
    JoinTree,
    acyclic_boolean,
    acyclic_join,
    full_reduce,
    join_tree_from_bags,
)

__all__ = [
    "ColumnSet",
    "ColumnStore",
    "Database",
    "Dictionary",
    "JoinTree",
    "LazyDictionary",
    "Relation",
    "SortedTrieIterator",
    "WorkCounter",
    "acyclic_boolean",
    "acyclic_join",
    "binary_join_plan",
    "build_trie",
    "current_counter",
    "difference",
    "full_reduce",
    "generic_join",
    "leapfrog_search",
    "leapfrog_triejoin",
    "heavy_light_partition",
    "join_tree_from_bags",
    "natural_join",
    "open_database_dir",
    "project",
    "save_database_dir",
    "scoped_work_counter",
    "select_equal",
    "semijoin",
    "union",
    "work_counter",
]
