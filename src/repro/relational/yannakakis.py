"""Yannakakis' algorithm for acyclic joins [48].

Given a join tree — a tree whose nodes carry relations such that every
attribute's occurrences form a connected subtree — the algorithm:

1. performs a *full reduction* (two semijoin sweeps: leaves-to-root, then
   root-to-leaves), after which every remaining tuple participates in at
   least one output tuple;
2. answers Booleanly (any node non-empty after reduction) or materializes the
   full join bottom-up in time ``O(input + output)``.

The PANDA query drivers (Corollaries 7.11 and 7.13) call this on the tree
decomposition whose bags were materialized by PANDA.

The semijoin sweeps and the bottom-up join run on the columnar engine: each
semijoin probes the neighbour's cached distinct-key set of shared-attribute
code tuples, and each join is a sort-merge over the shared sorted-trie
layout (:mod:`repro.relational.operators`).  Since every sweep preserves
schemas, the intermediate trees reuse :meth:`JoinTree.with_relations` and
skip re-validating the running-intersection property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.exceptions import DecompositionError
from repro.relational.operators import natural_join, semijoin
from repro.relational.relation import Relation

__all__ = ["JoinTree", "full_reduce", "acyclic_join", "acyclic_boolean"]


@dataclass
class JoinTree:
    """A rooted join tree: node ``i`` holds ``relations[i]``; ``parent[i]`` is
    the parent index (root has parent ``-1``).

    The running-intersection property is validated on construction.
    """

    relations: list[Relation]
    parent: list[int]

    def __post_init__(self) -> None:
        n = len(self.relations)
        if len(self.parent) != n:
            raise DecompositionError("parent array length mismatch")
        roots = [i for i, p in enumerate(self.parent) if p == -1]
        if n and len(roots) != 1:
            raise DecompositionError(f"join tree must have exactly 1 root, got {len(roots)}")
        self._validate_running_intersection()

    def _validate_running_intersection(self) -> None:
        """Every attribute's node set must be connected in the tree."""
        attr_nodes: dict[str, list[int]] = {}
        for i, relation in enumerate(self.relations):
            for attr in relation.attributes:
                attr_nodes.setdefault(attr, []).append(i)
        for attr, nodes in attr_nodes.items():
            if not _is_connected_in_tree(set(nodes), self.parent):
                raise DecompositionError(
                    f"attribute {attr!r} violates the running-intersection "
                    f"property (occurs at nodes {sorted(nodes)})"
                )

    def with_relations(self, relations: list[Relation]) -> "JoinTree":
        """A same-shape tree over schema-compatible replacement relations.

        Skips the running-intersection re-validation: semijoin sweeps only
        shrink node contents, never schemas, so the property is inherited.
        """
        if len(relations) != len(self.relations):
            raise DecompositionError("replacement relation count mismatch")
        clone = JoinTree.__new__(JoinTree)
        clone.relations = relations
        clone.parent = list(self.parent)
        return clone

    @property
    def root(self) -> int:
        return self.parent.index(-1)

    def children(self, node: int) -> list[int]:
        return [i for i, p in enumerate(self.parent) if p == node]

    def bottom_up_order(self) -> list[int]:
        """Node indices with every node after all of its children."""
        order: list[int] = []
        visited: set[int] = set()

        def visit(node: int) -> None:
            if node in visited:
                return
            visited.add(node)
            for child in self.children(node):
                visit(child)
            order.append(node)

        visit(self.root)
        if len(order) != len(self.relations):
            raise DecompositionError("join tree is disconnected")
        return order


def _is_connected_in_tree(nodes: set[int], parent: list[int]) -> bool:
    """Check that ``nodes`` induces a connected subgraph of the tree."""
    if not nodes:
        return True
    nodes = set(nodes)
    # Climb from every node, marking the paths; nodes is connected iff there is
    # a single "highest" node: every other node's parent-path reaches the set
    # again immediately (its parent in the induced forest exists).
    tops = 0
    for node in nodes:
        p = parent[node]
        if p == -1 or p not in nodes:
            tops += 1
    return tops == 1


def full_reduce(tree: JoinTree) -> JoinTree:
    """Two semijoin sweeps producing a fully reduced join tree."""
    order = tree.bottom_up_order()
    relations = list(tree.relations)
    # Leaves to root.
    for node in order:
        for child in tree.children(node):
            relations[node] = semijoin(relations[node], relations[child])
    # Root to leaves.
    for node in reversed(order):
        parent = tree.parent[node]
        if parent != -1:
            relations[node] = semijoin(relations[node], relations[parent])
    return tree.with_relations(relations)


def acyclic_boolean(tree: JoinTree) -> bool:
    """Is the acyclic join non-empty?  (Boolean query answer.)"""
    if not tree.relations:
        return True
    reduced = full_reduce(tree)
    return not reduced.relations[reduced.root].is_empty()


def acyclic_join(tree: JoinTree, name: str = "Q") -> Relation:
    """Materialize the full acyclic join in ``O(input + output)`` time.

    Joins fully reduced nodes bottom-up; because every partial join after full
    reduction extends to at least one output tuple, no intermediate exceeds
    the output size times the tree size.
    """
    if not tree.relations:
        return Relation(name, ())
    reduced = full_reduce(tree)
    relations = list(reduced.relations)
    for node in reduced.bottom_up_order():
        parent = reduced.parent[node]
        if parent != -1:
            relations[parent] = natural_join(relations[parent], relations[node])
    return relations[reduced.root].renamed(name)


def join_tree_from_bags(
    bag_relations: Iterable[Relation],
) -> JoinTree:
    """Build a join tree over bag relations greedily (maximum-overlap spanning tree).

    Raises:
        DecompositionError: if no valid join tree exists (the bags are not
            acyclic / do not admit a running-intersection arrangement).
    """
    relations = list(bag_relations)
    n = len(relations)
    if n == 0:
        return JoinTree([], [])
    # Maximum spanning tree on pairwise attribute overlaps satisfies the
    # running-intersection property whenever one exists (standard fact).
    parent = [-1] * n
    in_tree = {0}
    while len(in_tree) < n:
        best = None
        for i in in_tree:
            for j in range(n):
                if j in in_tree:
                    continue
                overlap = len(relations[i].attributes & relations[j].attributes)
                key = (overlap, -j)
                if best is None or key > best[0]:
                    best = (key, i, j)
        _, i, j = best
        parent[j] = i
        in_tree.add(j)
    return JoinTree(relations, parent)
