"""Relational operators: join, semijoin, project, select, union, partition.

These are the only operations PANDA performs (§1.3: "join, horizontal
partition, union" — plus the projections of monotonicity steps and the
semijoins of the query drivers).  Every operator counts the tuple-level work
it performs into a module-level :class:`WorkCounter`, so benchmarks can report
machine-independent work alongside wall-clock time.

The heavy/light partition implements Lemma 6.1: a table ``T(A_Y)`` with
``X ⊂ Y`` splits into ``O(log |T|)`` pieces ``T^(j)`` with

    |Π_X(T^(j))| * deg_{T^(j)}(Y | X)  <=  |T|.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.exceptions import SchemaError
from repro.relational.relation import Relation

__all__ = [
    "WorkCounter",
    "work_counter",
    "project",
    "select_equal",
    "natural_join",
    "semijoin",
    "union",
    "difference",
    "heavy_light_partition",
    "PartitionPiece",
]


@dataclass
class WorkCounter:
    """Counts tuple-level operations for machine-independent cost reporting."""

    tuples_scanned: int = 0
    tuples_emitted: int = 0
    joins: int = 0
    partitions: int = 0
    history: list = field(default_factory=list)

    def reset(self) -> None:
        self.tuples_scanned = 0
        self.tuples_emitted = 0
        self.joins = 0
        self.partitions = 0
        self.history.clear()

    @property
    def total(self) -> int:
        """Total work units (scans + emissions): the benchmarks' cost metric."""
        return self.tuples_scanned + self.tuples_emitted


#: Global counter used by all operators.  Benchmarks reset it around runs.
work_counter = WorkCounter()


def project(relation: Relation, attrs: Iterable[str], name: str | None = None) -> Relation:
    """``Π_attrs(relation)``; output schema order follows the input schema."""
    attr_set = frozenset(attrs)
    if not attr_set <= relation.attributes:
        raise SchemaError(
            f"cannot project {relation.schema} onto {sorted(attr_set)}"
        )
    out_schema = tuple(a for a in relation.schema if a in attr_set)
    positions = tuple(relation.position(a) for a in out_schema)
    rows = {tuple(row[p] for p in positions) for row in relation}
    work_counter.tuples_scanned += len(relation)
    work_counter.tuples_emitted += len(rows)
    return Relation(name or f"Π({relation.name})", out_schema, rows)


def select_equal(relation: Relation, attr: str, value, name: str | None = None) -> Relation:
    """``σ_{attr = value}(relation)`` using the single-attribute index."""
    index = relation.index_on((attr,))
    rows = index.get((value,), [])
    work_counter.tuples_scanned += len(rows)
    work_counter.tuples_emitted += len(rows)
    return Relation(name or f"σ({relation.name})", relation.schema, rows)


def natural_join(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """``left ⋈ right`` via hash join on the shared attributes.

    The output schema is left's schema followed by right's private attributes.
    A cross product (no shared attributes) is supported but counted at full
    cost, as it should be.
    """
    shared = tuple(sorted(left.attributes & right.attributes))
    out_schema = left.schema + tuple(
        a for a in right.schema if a not in left.attributes
    )
    right_private = tuple(a for a in right.schema if a not in left.attributes)
    right_positions = tuple(right.position(a) for a in right_private)

    # Build on the smaller side, probe with the larger.
    build_on_right = len(right) <= len(left)
    rows = set()
    if build_on_right:
        index = right.index_on(shared)
        work_counter.tuples_scanned += len(right)
        for row in left:
            work_counter.tuples_scanned += 1
            key = left.key_of(row, shared)
            for match in index.get(key, ()):
                rows.add(row + tuple(match[p] for p in right_positions))
                work_counter.tuples_emitted += 1
    else:
        index = left.index_on(shared)
        work_counter.tuples_scanned += len(left)
        for match in right:
            work_counter.tuples_scanned += 1
            key = right.key_of(match, shared)
            for row in index.get(key, ()):
                rows.add(row + tuple(match[p] for p in right_positions))
                work_counter.tuples_emitted += 1
    work_counter.joins += 1
    return Relation(name or f"({left.name}⋈{right.name})", out_schema, rows)


def semijoin(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """``left ⋉ right``: the left tuples with a join partner in right."""
    shared = tuple(sorted(left.attributes & right.attributes))
    index = right.index_on(shared)
    rows = []
    for row in left:
        work_counter.tuples_scanned += 1
        if left.key_of(row, shared) in index:
            rows.append(row)
            work_counter.tuples_emitted += 1
    return Relation(name or left.name, left.schema, rows)


def union(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """Set union of two relations over the same attribute set.

    Schemas may order attributes differently; the left order wins.
    """
    if left.attributes != right.attributes:
        raise SchemaError(
            f"union needs equal attribute sets, got {left.schema} vs {right.schema}"
        )
    positions = tuple(right.position(a) for a in left.schema)
    realigned = (tuple(row[p] for p in positions) for row in right)
    work_counter.tuples_scanned += len(left) + len(right)
    rows = set(left.tuples)
    rows.update(realigned)
    work_counter.tuples_emitted += len(rows)
    return Relation(name or f"({left.name}∪{right.name})", left.schema, rows)


def difference(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """Set difference ``left - right`` over the same attribute set."""
    if left.attributes != right.attributes:
        raise SchemaError(
            f"difference needs equal attribute sets, got {left.schema} vs {right.schema}"
        )
    positions = tuple(right.position(a) for a in left.schema)
    removed = {tuple(row[p] for p in positions) for row in right}
    rows = [row for row in left if row not in removed]
    work_counter.tuples_scanned += len(left) + len(right)
    work_counter.tuples_emitted += len(rows)
    return Relation(name or f"({left.name}-{right.name})", left.schema, rows)


@dataclass(frozen=True)
class PartitionPiece:
    """One piece of a Lemma 6.1 heavy/light partition.

    Attributes:
        relation: the sub-table ``T^(j)``.
        x_count: ``N^(j)_{X|∅} = |Π_X(T^(j))|``.
        y_degree: ``N^(j)_{Y|X} = max deg_{T^(j)}(Y | t_X)``.
    """

    relation: Relation
    x_count: int
    y_degree: int


def heavy_light_partition(
    relation: Relation, x: Iterable[str]
) -> list[PartitionPiece]:
    """Partition ``relation`` by the degree of its ``X``-projection (Lemma 6.1).

    Groups tuples into log-degree buckets ``[2^j, 2^{j+1})`` and then halves
    any bucket whose ``x_count * y_degree`` product still exceeds ``|T|``, so
    every returned piece satisfies

        piece.x_count * piece.y_degree <= len(relation).

    Returns at most ``2·log2|T| + O(1)`` pieces whose union is ``relation``.
    """
    x_attrs = tuple(sorted(frozenset(x)))
    if not frozenset(x_attrs) < relation.attributes:
        raise SchemaError(
            f"partition needs X ⊂ schema, got {x_attrs} vs {relation.schema}"
        )
    total = len(relation)
    if total == 0:
        return []

    groups: dict[tuple, list[tuple]] = {}
    positions = tuple(relation.position(a) for a in x_attrs)
    for row in relation:
        work_counter.tuples_scanned += 1
        groups.setdefault(tuple(row[p] for p in positions), []).append(row)

    buckets: dict[int, list[tuple[tuple, list[tuple]]]] = {}
    for key, rows in groups.items():
        buckets.setdefault(len(rows).bit_length() - 1, []).append((key, rows))

    pieces: list[PartitionPiece] = []
    counter = 0
    for j in sorted(buckets):
        # Each entry in the stack is a list of (x_key, rows) pairs sharing
        # log-degree bucket j; halve until the Lemma 6.1 product bound holds.
        stack = [buckets[j]]
        while stack:
            entries = stack.pop()
            x_count = len(entries)
            y_degree = max(len(rows) for _, rows in entries)
            if x_count * y_degree > total and x_count > 1:
                entries_sorted = sorted(entries, key=lambda e: e[0])
                half = len(entries_sorted) // 2
                stack.append(entries_sorted[:half])
                stack.append(entries_sorted[half:])
                continue
            all_rows = [row for _, rows in entries for row in rows]
            work_counter.tuples_emitted += len(all_rows)
            counter += 1
            piece = Relation(
                f"{relation.name}[{counter}]", relation.schema, all_rows
            )
            pieces.append(PartitionPiece(piece, x_count, y_degree))
    work_counter.partitions += 1
    return pieces
