"""Relational operators: join, semijoin, project, select, union, partition.

These are the only operations PANDA performs (§1.3: "join, horizontal
partition, union" — plus the projections of monotonicity steps and the
semijoins of the query drivers).  All of them run directly on the sorted
integer code columns of :mod:`repro.relational.columns`:

* projections and partitions are run scans over a column set sorted with the
  kept/grouping attributes first;
* the natural join is a sort-merge join on the shared-attribute prefix;
* the semijoin probes the right side's cached distinct-key set;
* union/difference are set algebra on code tuples (shared dictionaries make
  codes directly comparable across relations).

Every operator counts the tuple-level work it performs into the *current*
:class:`WorkCounter`, so benchmarks can report machine-independent work
alongside wall-clock time.  The counter is scoped through a
:class:`~contextvars.ContextVar` — concurrent or interleaved runs (parallel
pytest, async drivers) each see their own counter under
:func:`scoped_work_counter`, while the module-level :data:`work_counter`
proxy keeps the historical ``work_counter.reset()`` / ``work_counter.total``
call sites working against whichever counter is current.

The heavy/light partition implements Lemma 6.1: a table ``T(A_Y)`` with
``X ⊂ Y`` splits into ``O(log |T|)`` pieces ``T^(j)`` with

    |Π_X(T^(j))| * deg_{T^(j)}(Y | X)  <=  |T|.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.exceptions import SchemaError
from repro.relational.backend import current_backend
from repro.relational.columns import decode_row, merge_runs
from repro.relational.relation import Relation

#: Operator inputs at least this large route to the numpy kernels when the
#: vectorized backend is active (below it the ndarray overhead loses).
_VEC_MIN_ROWS = 256

__all__ = [
    "WorkCounter",
    "work_counter",
    "current_counter",
    "scoped_work_counter",
    "project",
    "select_equal",
    "natural_join",
    "semijoin",
    "union",
    "difference",
    "heavy_light_partition",
    "PartitionPiece",
]


@dataclass
class WorkCounter:
    """Counts tuple-level operations for machine-independent cost reporting."""

    tuples_scanned: int = 0
    tuples_emitted: int = 0
    joins: int = 0
    partitions: int = 0
    history: list = field(default_factory=list)

    def reset(self) -> None:
        self.tuples_scanned = 0
        self.tuples_emitted = 0
        self.joins = 0
        self.partitions = 0
        self.history.clear()

    @property
    def total(self) -> int:
        """Total work units (scans + emissions): the benchmarks' cost metric."""
        return self.tuples_scanned + self.tuples_emitted

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict — the wire format worker processes
        report back through (:mod:`repro.parallel.pool`)."""
        return {
            "tuples_scanned": self.tuples_scanned,
            "tuples_emitted": self.tuples_emitted,
            "joins": self.joins,
            "partitions": self.partitions,
        }

    def absorb(self, counts: "WorkCounter | dict") -> None:
        """Add another counter's numbers into this one.

        The parent-scope aggregation of partition-parallel execution: each
        worker runs its shard under its own scoped counter and ships the
        totals home, so ``repro run --stats`` stays truthful about the work
        actually performed regardless of the worker count.
        """
        if isinstance(counts, WorkCounter):
            counts = counts.as_dict()
        self.tuples_scanned += counts.get("tuples_scanned", 0)
        self.tuples_emitted += counts.get("tuples_emitted", 0)
        self.joins += counts.get("joins", 0)
        self.partitions += counts.get("partitions", 0)


#: Process-wide fallback counter (what un-scoped code observes).
_DEFAULT_COUNTER = WorkCounter()

_counter_var: ContextVar[WorkCounter] = ContextVar(
    "repro_work_counter", default=_DEFAULT_COUNTER
)


def current_counter() -> WorkCounter:
    """The :class:`WorkCounter` active in the current context."""
    return _counter_var.get()


@contextmanager
def scoped_work_counter(counter: WorkCounter | None = None) -> Iterator[WorkCounter]:
    """Run the body against its own work counter.

    Every operator inside the ``with`` block charges the scoped counter
    instead of the process-wide one, so interleaved runs cannot corrupt each
    other's scan/emit counts.  Scoping follows :mod:`contextvars` semantics:
    asyncio tasks spawned inside the block inherit the counter, but worker
    *threads* start from a fresh context and see the process-wide default —
    to count inside a thread, enter ``scoped_work_counter(counter)`` in the
    thread body (or run it under ``contextvars.copy_context()``)::

        with scoped_work_counter() as counter:
            generic_join(relations)
            print(counter.total)
    """
    if counter is None:
        counter = WorkCounter()
    token = _counter_var.set(counter)
    try:
        yield counter
    finally:
        _counter_var.reset(token)


class _WorkCounterProxy:
    """Module-level facade forwarding to the context's current counter.

    Keeps the historical ``from repro.relational import work_counter`` call
    sites (tests, benchmarks, downstream users) working unchanged: attribute
    reads, writes, and ``reset()`` all hit whatever counter is current.
    """

    __slots__ = ()

    def __getattr__(self, name: str):
        return getattr(_counter_var.get(), name)

    def __setattr__(self, name: str, value) -> None:
        setattr(_counter_var.get(), name, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"work_counter -> {_counter_var.get()!r}"


#: Context-following proxy used by legacy call sites.  Benchmarks reset it
#: around runs; new code should prefer :func:`scoped_work_counter`.
work_counter = _WorkCounterProxy()


def project(relation: Relation, attrs: Iterable[str], name: str | None = None) -> Relation:
    """``Π_attrs(relation)``; output schema order follows the input schema.

    A run scan over the column set sorted by the kept attributes: distinct
    projections are exactly the run starts, so no hashing is needed and the
    output rows come out pre-sorted.
    """
    attr_set = frozenset(attrs)
    if not attr_set <= relation.attributes:
        raise SchemaError(
            f"cannot project {relation.schema} onto {sorted(attr_set)}"
        )
    out_schema = tuple(a for a in relation.schema if a in attr_set)
    column_set = relation.column_set(out_schema)
    counter = _counter_var.get()
    if (
        out_schema
        and column_set.nrows >= _VEC_MIN_ROWS
        and current_backend() == "vectorized"
    ):
        # Run starts as one boolean change mask over the sorted columns;
        # the distinct rows gather straight into output columns.
        import numpy as np

        from repro.relational.vectorized import np_to_column

        cols = column_set.np_columns()
        keep = np.zeros(column_set.nrows, dtype=bool)
        keep[0] = True
        for col in cols:
            keep[1:] |= col[1:] != col[:-1]
        out_cols = tuple(np_to_column(col[keep]) for col in cols)
        counter.tuples_scanned += len(relation)
        counter.tuples_emitted += len(out_cols[0])
        return Relation.from_columns(
            name or f"Π({relation.name})", out_schema, out_cols
        )
    rows = column_set.rows
    out_rows: list[tuple] = []
    previous = None
    for row in rows:
        if row != previous:
            out_rows.append(row)
            previous = row
    counter.tuples_scanned += len(relation)
    counter.tuples_emitted += len(out_rows)
    return Relation.from_codes(
        name or f"Π({relation.name})",
        out_schema,
        out_rows,
        presorted=True,
        distinct=True,
    )


def select_equal(relation: Relation, attr: str, value, name: str | None = None) -> Relation:
    """``σ_{attr = value}(relation)`` via binary search on the sorted column."""
    position = relation.position(attr)
    code = relation.dictionaries[position].encode_existing(value)
    counter = _counter_var.get()
    if code is None or relation.is_empty():
        return Relation.from_codes(
            name or f"σ({relation.name})", relation.schema, [], presorted=True,
            distinct=True,
        )
    order = (attr,) + tuple(a for a in relation.schema if a != attr)
    column_set = relation.column_set(order)
    column = column_set.columns[0]
    lo = bisect_left(column, code)
    hi = bisect_right(column, code, lo)
    selected = column_set.rows[lo:hi]
    # Reorder each row back to schema layout; with the selected attribute
    # constant, sortedness under `order` implies sortedness under the schema.
    inverse = tuple(order.index(a) for a in relation.schema)
    out_rows = [tuple(row[i] for i in inverse) for row in selected]
    counter.tuples_scanned += len(out_rows)
    counter.tuples_emitted += len(out_rows)
    return Relation.from_codes(
        name or f"σ({relation.name})",
        relation.schema,
        out_rows,
        presorted=True,
        distinct=True,
    )


def natural_join(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """``left ⋈ right`` via sort-merge join on the shared attributes.

    Both sides are sorted shared-attributes-major; matching key runs are
    paired by a linear merge and their row blocks cross-multiplied.  The
    output schema is left's schema followed by right's private attributes.
    A cross product (no shared attributes) is supported but counted at full
    cost, as it should be.
    """
    shared = tuple(sorted(left.attributes & right.attributes))
    out_schema = left.schema + tuple(
        a for a in right.schema if a not in left.attributes
    )
    right_private = tuple(a for a in right.schema if a not in left.attributes)

    k = len(shared)
    left_order = shared + tuple(a for a in left.schema if a not in shared)
    right_order = shared + right_private
    left_set = left.column_set(left_order)
    right_set = right.column_set(right_order)

    counter = _counter_var.get()
    if (
        k == 1
        and left_set.nrows + right_set.nrows >= _VEC_MIN_ROWS
        and current_backend() == "vectorized"
    ):
        counter.tuples_scanned += left_set.nrows + right_set.nrows
        out_columns = _np_merge_join(
            left_set, right_set, left_order, right_order, out_schema
        )
        counter.tuples_emitted += len(out_columns[0])
        counter.joins += 1
        return Relation.from_columns(
            name or f"({left.name}⋈{right.name})", out_schema, out_columns
        )
    left_rows = left_set.rows
    right_rows = right_set.rows
    # Positions mapping a left-order row back to left-schema layout.
    left_inverse = tuple(left_order.index(a) for a in left.schema)

    counter.tuples_scanned += len(left_rows) + len(right_rows)
    out_rows: list[tuple] = []
    for i, i_end, j, j_end in merge_runs(
        left_rows, right_rows, lambda row: row[:k]
    ):
        for a in range(i, i_end):
            realigned = tuple(left_rows[a][p] for p in left_inverse)
            for b in range(j, j_end):
                out_rows.append(realigned + right_rows[b][k:])
    counter.tuples_emitted += len(out_rows)
    counter.joins += 1
    return Relation.from_codes(
        name or f"({left.name}⋈{right.name})", out_schema, out_rows,
        distinct=True,
    )


def _np_merge_join(left_set, right_set, left_order, right_order, out_schema):
    """Single-shared-attribute sort-merge ⋈ as numpy block kernels.

    Matching key runs are located with vectorized ``searchsorted`` over the
    shared-attribute-major columns; the per-run cross products expand with
    one ``repeat``/``tile``-style indexing pass, and the result columns are
    lex-sorted into the canonical ``out_schema`` row order — exactly the
    rows the interpreted merge emits after its ``from_codes`` sort.
    """
    import numpy as np

    from repro.relational.vectorized import np_to_column, sorted_unique

    left_cols = left_set.np_columns()
    right_cols = right_set.np_columns()
    left_key = left_cols[0]
    right_key = right_cols[0]
    empty = ()
    if len(left_key) and len(right_key):
        shared_codes = sorted_unique(left_key)
        pos = np.searchsorted(right_key, shared_codes)
        inside = pos < len(right_key)
        pos[~inside] = 0
        shared_codes = shared_codes[inside & (right_key[pos] == shared_codes)]
    else:
        shared_codes = None
    if shared_codes is None or not len(shared_codes):
        return tuple(np_to_column(np.empty(0, dtype=np.int64)) for _ in out_schema)
    left_lo = np.searchsorted(left_key, shared_codes, side="left")
    left_hi = np.searchsorted(left_key, shared_codes, side="right")
    right_lo = np.searchsorted(right_key, shared_codes, side="left")
    right_hi = np.searchsorted(right_key, shared_codes, side="right")
    left_counts = left_hi - left_lo
    right_counts = right_hi - right_lo
    pair_counts = left_counts * right_counts
    total = int(pair_counts.sum())
    # Per output slot: which key run, and the (left, right) offsets inside
    # its cross product — all index arithmetic, no per-run Python loop.
    slots = np.arange(total, dtype=np.int64)
    run = np.repeat(np.arange(len(shared_codes), dtype=np.int64), pair_counts)
    local = slots - np.repeat(np.cumsum(pair_counts) - pair_counts, pair_counts)
    left_index = left_lo[run] + local // right_counts[run]
    right_index = right_lo[run] + local % right_counts[run]
    columns = []
    for attr in out_schema:
        if attr in left_order:
            columns.append(left_cols[left_order.index(attr)][left_index])
        else:
            columns.append(right_cols[right_order.index(attr)][right_index])
    order = np.lexsort(tuple(reversed(columns)))
    return tuple(np_to_column(column[order]) for column in columns)


def semijoin(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """``left ⋉ right``: the left tuples with a join partner in right.

    Probes the right side's cached distinct-key set with code tuples; the
    left side streams in canonical order, so the output is pre-sorted.
    """
    shared = tuple(sorted(left.attributes & right.attributes))
    keys = right.key_set(shared)
    positions = tuple(left.position(a) for a in shared)
    counter = _counter_var.get()
    if (
        len(shared) == 1
        and len(left) >= _VEC_MIN_ROWS
        and current_backend() == "vectorized"
    ):
        import numpy as np

        from repro.relational.vectorized import membership_mask, np_to_column

        left_set = left.column_set(left.schema)
        right_key = right.column_set(shared).np_columns()[0]
        probe = left_set.np_columns()[positions[0]]
        mask = membership_mask(probe, right_key)
        counter.tuples_scanned += left_set.nrows
        counter.tuples_emitted += int(mask.sum())
        columns = tuple(
            np_to_column(np.asarray(col)[mask]) for col in left_set.np_columns()
        )
        return Relation.from_columns(name or left.name, left.schema, columns)
    out_rows = []
    for row in left.code_rows:
        counter.tuples_scanned += 1
        if tuple(row[p] for p in positions) in keys:
            out_rows.append(row)
            counter.tuples_emitted += 1
    return Relation.from_codes(
        name or left.name, left.schema, out_rows, presorted=True, distinct=True
    )


def union(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """Set union of two relations over the same attribute set.

    Schemas may order attributes differently; the left order wins.  Shared
    dictionaries let the realignment work purely on code tuples.
    """
    if left.attributes != right.attributes:
        raise SchemaError(
            f"union needs equal attribute sets, got {left.schema} vs {right.schema}"
        )
    positions = tuple(right.position(a) for a in left.schema)
    counter = _counter_var.get()
    counter.tuples_scanned += len(left) + len(right)
    rows = set(left.code_rows)
    rows.update(tuple(row[p] for p in positions) for row in right.code_rows)
    counter.tuples_emitted += len(rows)
    return Relation.from_codes(
        name or f"({left.name}∪{right.name})", left.schema, list(rows),
        distinct=True,
    )


def difference(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """Set difference ``left - right`` over the same attribute set."""
    if left.attributes != right.attributes:
        raise SchemaError(
            f"difference needs equal attribute sets, got {left.schema} vs {right.schema}"
        )
    positions = tuple(right.position(a) for a in left.schema)
    removed = {tuple(row[p] for p in positions) for row in right.code_rows}
    out_rows = [row for row in left.code_rows if row not in removed]
    counter = _counter_var.get()
    counter.tuples_scanned += len(left) + len(right)
    counter.tuples_emitted += len(out_rows)
    return Relation.from_codes(
        name or f"({left.name}-{right.name})", left.schema, out_rows,
        presorted=True, distinct=True,
    )


@dataclass(frozen=True)
class PartitionPiece:
    """One piece of a Lemma 6.1 heavy/light partition.

    Attributes:
        relation: the sub-table ``T^(j)``.
        x_count: ``N^(j)_{X|∅} = |Π_X(T^(j))|``.
        y_degree: ``N^(j)_{Y|X} = max deg_{T^(j)}(Y | t_X)``.
    """

    relation: Relation
    x_count: int
    y_degree: int


def heavy_light_partition(
    relation: Relation, x: Iterable[str]
) -> list[PartitionPiece]:
    """Partition ``relation`` by the degree of its ``X``-projection (Lemma 6.1).

    Groups tuples into log-degree buckets ``[2^j, 2^{j+1})`` and then halves
    any bucket whose ``x_count * y_degree`` product still exceeds ``|T|``, so
    every returned piece satisfies

        piece.x_count * piece.y_degree <= len(relation).

    Returns at most ``2·log2|T| + O(1)`` pieces whose union is ``relation``.
    The ``X``-groups are the runs of the ``X``-major sorted column set — one
    linear scan, no hashing.
    """
    x_attrs = tuple(sorted(frozenset(x)))
    if not frozenset(x_attrs) < relation.attributes:
        raise SchemaError(
            f"partition needs X ⊂ schema, got {x_attrs} vs {relation.schema}"
        )
    total = len(relation)
    if total == 0:
        return []

    k = len(x_attrs)
    order = x_attrs + tuple(a for a in relation.schema if a not in x_attrs)
    rows = relation.column_set(order).rows
    inverse = tuple(order.index(a) for a in relation.schema)
    counter = _counter_var.get()
    counter.tuples_scanned += len(rows)

    # X-groups = runs of the X-prefix; rows realigned back to schema layout.
    groups: list[tuple[tuple, list[tuple]]] = []
    i = 0
    n = len(rows)
    while i < n:
        key = rows[i][:k]
        i_end = i + 1
        while i_end < n and rows[i_end][:k] == key:
            i_end += 1
        groups.append(
            (key, [tuple(row[p] for p in inverse) for row in rows[i:i_end]])
        )
        i = i_end

    buckets: dict[int, list[tuple[tuple, list[tuple]]]] = {}
    for key, group_rows in groups:
        buckets.setdefault(len(group_rows).bit_length() - 1, []).append(
            (key, group_rows)
        )

    # Bucket halving sorts by decoded x-*values*, not codes: codes order by
    # process-global first-appearance, so splitting on them would make the
    # partition (and every PANDA run built on it) depend on interning
    # history rather than on the relation's contents.
    x_dicts = tuple(relation.dictionaries[relation.position(a)] for a in x_attrs)

    def decoded_x(entry: tuple) -> tuple:
        return decode_row(x_dicts, entry[0])

    pieces: list[PartitionPiece] = []
    piece_count = 0
    for j in sorted(buckets):
        # Each entry in the stack is a list of (x_key, rows) pairs sharing
        # log-degree bucket j; halve until the Lemma 6.1 product bound holds.
        stack = [buckets[j]]
        while stack:
            entries = stack.pop()
            x_count = len(entries)
            y_degree = max(len(group_rows) for _, group_rows in entries)
            if x_count * y_degree > total and x_count > 1:
                entries_sorted = sorted(entries, key=decoded_x)
                half = len(entries_sorted) // 2
                stack.append(entries_sorted[:half])
                stack.append(entries_sorted[half:])
                continue
            all_rows = [row for _, group_rows in entries for row in group_rows]
            counter.tuples_emitted += len(all_rows)
            piece_count += 1
            piece = Relation.from_codes(
                f"{relation.name}[{piece_count}]",
                relation.schema,
                all_rows,
                distinct=True,
            )
            pieces.append(PartitionPiece(piece, x_count, y_degree))
    counter.partitions += 1
    return pieces
