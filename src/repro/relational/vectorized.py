"""The numpy block-at-a-time join executor (the ``"vectorized"`` backend).

This module mirrors :func:`repro.relational.execution.execute_join` — the
recursion both WCOJ baselines, the Yannakakis sweeps, and the delta-rule
terms share — but replaces the tuple-at-a-time depth-first recursion with a
breadth-first **frontier** over the zero-copy int64 numpy views of the
sorted ``array('q')`` code columns (:meth:`ColumnSet.np_columns`), in the
EmptyHeaded/LevelHeaded tradition of vectorized execution over sorted
columnar tries:

* **the frontier** — all partial bindings of length ``depth`` live at once
  as dense columns, with one ``(lo, hi)`` node-range pair per binding per
  relation; one level of the trie walk is a handful of whole-frontier numpy
  passes instead of ``frontier``-many Python iterations;
* **ragged candidate gather** — the block analogue of the per-node
  smallest-candidate-set choice that keeps Generic Join worst-case
  optimal: one relation drives the whole frontier while its total key-run
  span stays within a small factor of the per-row-minimum sum, and on
  skewed frontiers — where a whole-level driver would gather
  Θ(frontier·heavy-run) candidates — each row gathers from its *own*
  argmin relation instead; the selected runs are gathered in one
  ``repeat``/``arange`` indexing pass and deduplicated by a run-boundary
  mask (the last local column is strictly increasing per node, so
  leaf-level runs need no dedup at all);
* **segmented binary search** — every other active relation answers
  membership for *all* candidates at once with a bounded vectorized
  bisection (``log₂(max node span)`` whole-array steps), the block twin of
  the leapfrog seek; the surviving candidates' child ranges fall out of the
  same searches;
* **columnar emission** — after the last level the frontier's binding
  columns *are* the result columns; they are adopted through
  :meth:`Relation.from_columns` and the O(N · arity) transpose back into
  Python row tuples is deferred until a consumer actually asks for rows.

The contract (ROADMAP Architecture layer 9): **code-domain only** (int64
codes; exact-``Fraction`` annotation/witness/proof paths never enter this
module), **bit-identical outputs** (candidates are enumerated ascending
within a lexicographically sorted frontier, so the output columns hold the
same canonical sorted duplicate-free code rows as the interpreted driver),
and **truthful counters** (``tuples_emitted`` equals the interpreted
driver's exactly; scan charges are the per-level candidate-block sizes,
which may differ from the interpreted driver's per-seek charges the same
way the PR 4 shard counters may differ from serial ones).
"""

from __future__ import annotations

from array import array
from typing import Sequence

import numpy as np

from repro.exceptions import QueryError
from repro.relational.operators import current_counter
from repro.relational.relation import Relation

__all__ = [
    "membership_mask",
    "np_to_column",
    "sorted_unique",
    "vectorized_execute_join",
]


def sorted_unique(block):
    """Distinct values of an already-sorted array (run-boundary mask)."""
    n = len(block)
    if n == 0:
        return block
    keep = np.empty(n, dtype=bool)
    keep[0] = True
    np.not_equal(block[1:], block[:-1], out=keep[1:])
    return block[keep]


def np_to_column(values) -> array:
    """An int64 ndarray as an ``array('q')`` (one memcpy).

    The ``memoryview`` cast hands ``frombytes`` the ndarray's own buffer —
    measurably cheaper than materializing an intermediate ``bytes`` copy on
    multi-million-row join outputs.
    """
    out = array("q")
    buffer = np.ascontiguousarray(values, dtype=np.int64)
    out.frombytes(memoryview(buffer).cast("B"))
    return out


def membership_mask(values, block):
    """Boolean membership of ``values`` in the sorted ``block``."""
    n = len(block)
    if n == 0:
        return np.zeros(len(values), dtype=bool)
    pos = np.searchsorted(block, values)
    inside = pos < n
    pos[~inside] = 0
    return inside & (block[pos] == values)


#: Probes-per-distinct-node threshold above which the grouped flat-search
#: strategy beats the all-probes-bisect-together strategy (one C-level
#: ``searchsorted`` per node amortizes its Python dispatch over the batch).
_GROUP_MIN_BATCH = 32


def _segmented_searchsorted(col, probes, lo, hi, side="left"):
    """``searchsorted`` with per-probe bounds: probe ``i`` within
    ``col[lo[i]:hi[i])``.

    ``col`` is sorted within each segment (a trie node's run), not
    globally, so one flat ``np.searchsorted`` cannot answer.  Two block
    strategies, chosen by batch shape:

    * **grouped** — consecutive probes sharing one segment (a frontier run
      descending one node) resolve with one flat C-level ``searchsorted``
      per distinct node; wins when nodes are few and batches long;
    * **bisect-together** — all probes binary-search simultaneously in
      ``log₂(max segment span)`` whole-array steps; wins when nearly every
      probe has its own (small) segment.

    Entries with empty segments come back as ``lo`` unchanged.
    """
    lo = np.ascontiguousarray(lo, dtype=np.int64)
    hi = np.ascontiguousarray(hi, dtype=np.int64)
    n = len(col)
    m = len(probes)
    if n == 0 or m == 0:
        return lo.copy()
    change = np.empty(m, dtype=bool)
    change[0] = True
    np.logical_or(lo[1:] != lo[:-1], hi[1:] != hi[:-1], out=change[1:])
    run_starts = np.flatnonzero(change)
    if m >= _GROUP_MIN_BATCH * len(run_starts):
        run_ends = np.append(run_starts[1:], m)
        out = np.empty(m, dtype=np.int64)
        for start, end in zip(run_starts.tolist(), run_ends.tolist()):
            base = lo[start]
            out[start:end] = base + np.searchsorted(
                col[base : hi[start]], probes[start:end], side=side
            )
        return out
    lo = lo.copy()
    hi = hi.copy()
    top = n - 1
    open_mask = lo < hi
    while open_mask.any():
        mid = np.minimum((lo + hi) >> 1, top)
        if side == "left":
            go_right = open_mask & (col[mid] < probes)
        else:
            go_right = open_mask & (col[mid] <= probes)
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(open_mask & ~go_right, mid, hi)
        open_mask = lo < hi
    return lo


def _ragged_probe(col, seg_lo, seg_hi, row_id, values, m, need_bounds):
    """Membership (and child bounds) via composite-key flat search.

    ``seg_lo``/``seg_hi`` hold one segment of ``col`` per frontier row;
    ``values`` are candidate keys with frontier ``row_id``.  When the total
    segment span is comparable to the candidate count, gathering every
    segment once and flat-searching the composite ``(row, value)`` keys —
    both sides are lexicographically sorted by construction — beats the
    per-segment bisection: two C-level ``searchsorted`` passes, no Python
    loop.  Returns ``(found, child_lo, child_hi)`` (bounds ``None`` unless
    requested), or ``None`` when the composite key would overflow int64.
    """
    lengths = seg_hi - seg_lo
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(len(values), dtype=bool), None, None
    starts = np.cumsum(lengths) - lengths
    gidx = np.arange(total, dtype=np.int64) - np.repeat(starts - seg_lo, lengths)
    rid = np.repeat(np.arange(m, dtype=np.int64), lengths)
    vals = col[gidx]
    base = max(int(vals.max()), int(values.max()) if len(values) else 0) + 1
    if m * base >= 1 << 62:  # pragma: no cover - would need ~2^62 codes
        return None
    keys = rid * base + vals
    probes = row_id * base + values
    pos = np.searchsorted(keys, probes)
    safe = np.minimum(pos, total - 1)
    found = (pos < total) & (keys[safe] == probes)
    if not need_bounds:
        return found, None, None
    # The run of equal composite keys is one segment's key run, so its
    # first/last gather positions are the child node's absolute bounds.
    child_lo = gidx[safe]
    pos_right = np.searchsorted(keys, probes, side="right")
    child_hi = gidx[np.maximum(pos_right, 1) - 1] + 1
    return found, child_lo, child_hi


#: Total-segment-span budget (as a multiple of the candidate count) under
#: which :func:`_ragged_probe` is preferred over the segmented bisection.
_RAGGED_SPAN_FACTOR = 4

#: A single whole-level driver is kept (skipping per-row bookkeeping and
#: its own membership probe) while its total key-run span stays within
#: this multiple of the per-row-minimum sum; the gathered candidate block
#: is then within the same factor of the Generic-Join-optimal size, so
#: the worst-case-optimality slope is preserved.
_DRIVER_SPAN_SLACK = 2


def vectorized_execute_join(
    relations: Sequence[Relation],
    order: tuple[str, ...],
    name: str,
    root_ranges: Sequence[tuple[int, int] | None] | None = None,
) -> Relation:
    """Block-at-a-time twin of :func:`~repro.relational.execution.execute_join`.

    ``order`` is the already-validated global variable order; the algorithm
    parameterization collapses here because every registered intersection
    (hash-set, leapfrog, delta-probe) computes the same set and the block
    kernel subsumes all three: the smallest-span relation drives, the
    others answer by segmented binary search.
    """
    counter = current_counter()
    if not order:
        counter.tuples_emitted += 1
        return Relation.from_codes(name, order, [()], presorted=True, distinct=True)

    count = len(relations)
    attrs_of: list[tuple[str, ...]] = []
    cols_of: list[tuple] = []
    lo_of: list = []
    hi_of: list = []
    for index, relation in enumerate(relations):
        attrs = tuple(v for v in order if v in relation.attributes)
        column_set = relation.column_set(attrs)
        bounds = root_ranges[index] if root_ranges is not None else None
        lo, hi = bounds if bounds is not None else (0, column_set.nrows)
        attrs_of.append(attrs)
        cols_of.append(column_set.np_columns())
        lo_of.append(np.array([lo], dtype=np.int64))
        hi_of.append(np.array([hi], dtype=np.int64))

    #: Per level: the active ``(relation index, local depth)`` pairs.  A
    #: relation's attrs follow the global order, so when ``var`` is its
    #: local attr number ``d``, its first ``d`` attrs are already resolved.
    active_at: list[list[tuple[int, int]]] = []
    for var in order:
        active = [
            (i, attrs.index(var))
            for i, attrs in enumerate(attrs_of)
            if var in attrs
        ]
        if not active:
            raise QueryError(f"variable {var!r} appears in no relation")
        active_at.append(active)

    bind_cols: list = []  # resolved variable columns, frontier-aligned
    m = 1  # frontier size (the nullary root binding)
    last = len(order) - 1
    for depth in range(len(order)):
        active = active_at[depth]
        # At the last variable every active relation sits on its *final*
        # attribute (attrs follow the global order), so each node's key run
        # is already strictly increasing and nothing descends further: the
        # leaf level skips the dedup mask and the child-range bookkeeping.
        leaf = depth == last
        # Driver: the per-node smallest-candidate-set choice that keeps
        # Generic Join worst-case optimal, blockwise.  The cheap common
        # case is one relation driving the whole frontier (it skips the
        # per-row bookkeeping *and* its own membership probe); it is sound
        # as long as its total span stays within ``_DRIVER_SPAN_SLACK`` of
        # the per-row-minimum sum.  Beyond that — skewed instances where
        # the heavy node's best driver differs from the light nodes' — a
        # whole-level driver would gather Θ(frontier · heavy-run)
        # candidates, a quadratic blowup the interpreted driver never
        # pays, so each row gathers from its own argmin relation instead.
        lens = np.stack([hi_of[i] - lo_of[i] for i, _ in active])
        totals = lens.sum(axis=1)
        min_lens = lens.min(axis=0)
        best_single = int(totals.argmin())
        single = int(totals[best_single]) <= _DRIVER_SPAN_SLACK * int(
            min_lens.sum()
        )
        if single:
            driver, d_local = active[best_single]
            lengths = lens[best_single]
            total = int(lengths.sum())
            if total == 0:
                m = 0
                break
            # Ragged gather: every row's key run, in one indexing pass.
            row_starts = np.cumsum(lengths) - lengths
            gidx = np.arange(total, dtype=np.int64) - np.repeat(
                row_starts - lo_of[driver], lengths
            )
            row_id = np.repeat(np.arange(m, dtype=np.int64), lengths)
            values = cols_of[driver][d_local][gidx]
        else:
            # Mixed drivers: gather each row's run from its argmin relation
            # (ties break to the first active, deterministically).  Rows
            # stay in frontier order and runs ascend within a row, so the
            # candidate block is lex-sorted exactly as in the uniform path.
            driver = None
            drv_pos = lens.argmin(axis=0)
            lengths = min_lens
            total = int(lengths.sum())
            if total == 0:
                m = 0
                break
            sel_lo = np.empty(m, dtype=np.int64)
            for p, (i, _) in enumerate(active):
                rows = drv_pos == p
                if rows.any():
                    sel_lo[rows] = lo_of[i][rows]
            row_starts = np.cumsum(lengths) - lengths
            gidx = np.arange(total, dtype=np.int64) - np.repeat(
                row_starts - sel_lo, lengths
            )
            row_id = np.repeat(np.arange(m, dtype=np.int64), lengths)
            drv_of = np.repeat(drv_pos, lengths)
            values = np.empty(total, dtype=np.int64)
            for p, (i, local) in enumerate(active):
                sel = drv_of == p
                if sel.any():
                    values[sel] = cols_of[i][local][gidx[sel]]
        if not leaf:
            # Dedup within each row (run-boundary mask); under a single
            # driver the kept index also yields each value run's absolute
            # ``[lo, hi)`` — the driver's child ranges — for free.
            keep = np.empty(total, dtype=bool)
            keep[0] = True
            np.logical_or(
                row_id[1:] != row_id[:-1], values[1:] != values[:-1],
                out=keep[1:],
            )
            keep_idx = np.flatnonzero(keep)
            if single:
                run_ends = np.append(keep_idx[1:], total)
                drv_child_lo = gidx[keep_idx]
                drv_child_hi = drv_child_lo + (run_ends - keep_idx)
            row_id = row_id[keep_idx]
            values = values[keep_idx]
        counter.tuples_scanned += len(values)

        # Every non-driving active relation answers membership for the whole
        # candidate block (under mixed drivers that is *all* of them — a
        # relation's own rows probe as trivial hits): by one composite-key
        # flat search when its total segment span is candidate-sized, else
        # by segmented bisection.
        mask = None
        child_lo: dict[int, object] = {}  # absolute child bounds (flat path)
        child_hi: dict[int, object] = {}
        seg_lo: dict[int, object] = {}  # first occurrence + node end (bisect)
        seg_hi: dict[int, object] = {}
        for i, local in active:
            if i == driver:
                continue
            col = cols_of[i][local]
            span = int((hi_of[i] - lo_of[i]).sum())
            probed = None
            if len(col) and span <= _RAGGED_SPAN_FACTOR * len(values) + 1024:
                probed = _ragged_probe(
                    col, lo_of[i], hi_of[i], row_id, values, m,
                    need_bounds=not leaf,
                )
            if probed is not None:
                found, child_lo[i], child_hi[i] = probed
                if leaf:
                    del child_lo[i], child_hi[i]
            else:
                node_lo = lo_of[i][row_id]
                node_hi = hi_of[i][row_id]
                left = _segmented_searchsorted(col, values, node_lo, node_hi)
                found = left < node_hi
                if len(col):
                    found &= col[np.minimum(left, len(col) - 1)] == values
                if not leaf:
                    seg_lo[i] = left
                    seg_hi[i] = node_hi
            mask = found if mask is None else mask & found
        if mask is not None and not mask.all():
            row_id = row_id[mask]
            values = values[mask]
            for ranges in (child_lo, child_hi, seg_lo, seg_hi):
                for i in ranges:
                    ranges[i] = ranges[i][mask]
            if not leaf and single:
                drv_child_lo = drv_child_lo[mask]
                drv_child_hi = drv_child_hi[mask]
        m = len(values)
        if m == 0:
            break

        # Advance the frontier: extend the bindings and (below the leaf)
        # open every surviving candidate's child node in each relation.
        bind_cols = [column[row_id] for column in bind_cols]
        bind_cols.append(values)
        if leaf:
            break
        opened = {i for i, _ in active}
        for i, local in active:
            if local == len(attrs_of[i]) - 1:
                # The relation's attrs are exhausted; it is never active
                # (nor consulted) again — stop tracking its ranges.
                lo_of[i] = hi_of[i] = None
                continue
            if i == driver:
                lo_of[i], hi_of[i] = drv_child_lo, drv_child_hi
            elif i in child_lo:
                # The flat probe already located both run bounds.
                lo_of[i], hi_of[i] = child_lo[i], child_hi[i]
            else:
                # ``seg_lo`` is each value's first occurrence; the run end
                # needs one more bisection, now only over the survivors.
                lo_of[i] = seg_lo[i]
                hi_of[i] = _segmented_searchsorted(
                    cols_of[i][local], values, seg_lo[i], seg_hi[i],
                    side="right",
                )
        for i in range(count):
            if i not in opened and lo_of[i] is not None:
                lo_of[i] = lo_of[i][row_id]
                hi_of[i] = hi_of[i][row_id]

    if m == 0:
        return Relation.from_codes(name, order, [], presorted=True, distinct=True)
    counter.tuples_emitted += m
    return Relation.from_columns(
        name, order, [np_to_column(column) for column in bind_cols]
    )
