"""The one shared sorted-trie iterator every join algorithm drives.

A sorted :class:`~repro.relational.columns.ColumnSet` *is* a trie: fixing the
first ``d`` codes of a row selects a contiguous index range, the distinct
codes at depth ``d`` within that range are its children, and each child's
subtree is again a contiguous sub-range.  :class:`SortedTrieIterator` exposes
that implicit trie through the Leapfrog-Triejoin iterator protocol
[47, §3.2]:

=============  ==============================================================
``open()``     descend to the first child of the current node
``up()``       return to the parent node
``key()``      the code at the current position
``next()``     advance to the next sibling (``False`` when exhausted)
``seek(c)``    advance to the least sibling ``>= c`` (``False`` when none)
``at_end()``   whether the current level is exhausted
=============  ==============================================================

``seek`` gallops on the level's ``array('q')`` column — ``O(log(distance
moved))``, the property Veldhuizen's analysis needs for the ``O~(2^rho*)``
worst-case-optimality bound — while ``open``/``next``/``open_at`` are
C-level binary searches over the node's range.

Both WCOJ baselines (:mod:`repro.relational.wcoj` Generic Join and
:mod:`repro.relational.leapfrog` Leapfrog Triejoin), the Yannakakis semijoin
sweeps, and the FAQ semiring folds run over this single iterator (or over the
same sorted runs directly); there is no per-algorithm trie anymore.

Iteration is over *codes* (see :mod:`repro.relational.columns`); all
relations sharing an attribute share its dictionary, so codes are directly
comparable across iterators and the intersection of levels is exact.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator

from repro.relational.columns import ColumnSet, gallop_left

try:  # numpy accelerates node key-run materialization for both backends
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

__all__ = ["SortedTrieIterator", "leapfrog_search"]

#: Node ranges at least this wide materialize their key run via numpy
#: (below it the fixed ndarray overhead loses to the bisect loop).
_NP_KEYS_MIN_SPAN = 64


class SortedTrieIterator:
    """Cursor over the implicit sorted trie of one :class:`ColumnSet`.

    The iterator starts at the (virtual) root; ``open()`` enters depth 0.
    A level's state is ``(lo, hi, blo, bhi, key)``: the parent's index range,
    the current key's run ``[blo, bhi)`` inside it, and the key itself.
    ``None`` keys mark an exhausted level (``at_end``).

    ``lo``/``hi`` bound the virtual root to the row range ``[lo, hi)`` —
    zero-copy shard restriction for partition-parallel execution
    (:mod:`repro.parallel`): the iterator then walks only the sub-trie of
    that contiguous slice, with no row or column data materialized.
    """

    __slots__ = (
        "_cset",
        "_cols",
        "_root_lo",
        "_root_hi",
        "_stack",
        "_keys_cache",
        "_sets_cache",
    )

    def __init__(
        self, column_set: ColumnSet, lo: int = 0, hi: int | None = None
    ) -> None:
        self._cset = column_set
        self._cols = column_set.columns
        if hi is None:
            hi = column_set.nrows
        if not 0 <= lo <= hi <= column_set.nrows:
            raise IndexError(
                f"root bounds [{lo}, {hi}) outside 0..{column_set.nrows}"
            )
        self._root_lo = lo
        self._root_hi = hi
        #: stack of [lo, hi, blo, bhi, key] per open depth.
        self._stack: list[list] = []
        # (depth, lo, hi) -> that node's distinct child keys (list) / the
        # same keys as a frozenset.  Shared across every iterator over the
        # column set (see :meth:`ColumnSet.trie_caches`), so concurrent or
        # repeated walks — shard tasks, repeated executes — materialize each
        # node once.
        self._keys_cache, self._sets_cache = column_set.trie_caches()

    # -- position ---------------------------------------------------------------

    @property
    def root_bounds(self) -> tuple[int, int]:
        """The ``[lo, hi)`` row range this iterator's virtual root is bound to.

        The full relation unless a shard (:mod:`repro.parallel`) or a
        delta-scoped term (:func:`repro.relational.execution.delta_root_ranges`)
        restricted it.
        """
        return self._root_lo, self._root_hi

    @property
    def depth(self) -> int:
        """Current depth; ``-1`` at the root."""
        return len(self._stack) - 1

    def key(self) -> int:
        """The code at the current position (undefined when ``at_end``)."""
        return self._stack[-1][4]

    def at_end(self) -> bool:
        """Whether the current level is exhausted."""
        return self._stack[-1][4] is None

    # -- movement ---------------------------------------------------------------

    def open(self) -> bool:
        """Descend to the first key one level down; ``False`` on empty trie.

        From the root the child range is the whole relation; from a key it is
        that key's run.  Only an empty relation can make ``open`` fail.
        """
        if self._stack:
            frame = self._stack[-1]
            lo, hi = frame[2], frame[3]
        else:
            lo, hi = self._root_lo, self._root_hi
        if lo >= hi:
            self._stack.append([lo, hi, lo, lo, None])
            return False
        column = self._cols[len(self._stack)]
        code = column[lo]
        end = bisect_right(column, code, lo, hi)
        self._stack.append([lo, hi, lo, end, code])
        return True

    def up(self) -> None:
        """Return to the parent node."""
        self._stack.pop()

    def next(self) -> bool:
        """Advance to the next distinct key at this level; ``False`` at end."""
        frame = self._stack[-1]
        hi = frame[1]
        start = frame[3]
        if start >= hi:
            frame[2] = frame[3] = hi
            frame[4] = None
            return False
        column = self._cols[len(self._stack) - 1]
        code = column[start]
        frame[2] = start
        frame[3] = bisect_right(column, code, start, hi)
        frame[4] = code
        return True

    def seek(self, code: int) -> bool:
        """Advance to the least key ``>= code``; ``False`` when none remains.

        Never moves backwards (codes sought must be non-decreasing within a
        level, as in [47]); a no-op when already at or past ``code``.  The
        search gallops from the current run's end
        (:func:`~repro.relational.columns.gallop_left`), so the cost is
        logarithmic in the *distance moved* — the property [47, Thm 3.4]'s
        amortized analysis needs.
        """
        frame = self._stack[-1]
        current = frame[4]
        if current is None:
            return False
        if current >= code:
            return True
        hi = frame[1]
        column = self._cols[len(self._stack) - 1]
        start = gallop_left(column, code, frame[3], hi)
        if start >= hi:
            frame[2] = frame[3] = hi
            frame[4] = None
            return False
        found = column[start]
        frame[2] = start
        frame[3] = bisect_right(column, found, start, hi)
        frame[4] = found
        return True

    def open_at(self, code: int) -> None:
        """Descend directly to child ``code`` (which must be present).

        The fast descent for callers that already intersected the child key
        sets: two binary searches locate the child's run, with no iterator
        state touched in between.
        """
        if self._stack:
            frame = self._stack[-1]
            lo, hi = frame[2], frame[3]
        else:
            lo, hi = self._root_lo, self._root_hi
        column = self._cols[len(self._stack)]
        start = bisect_left(column, code, lo, hi)
        end = bisect_right(column, code, start, hi)
        self._stack.append([lo, hi, start, end, code])

    # -- level views ------------------------------------------------------------

    def _node_keys(self, depth: int, lo: int, hi: int) -> list[int]:
        if lo >= hi:
            # Exhausted ranges are not cached: real (non-empty) nodes at one
            # depth have pairwise-distinct ranges, but an exhausted level
            # (``lo == hi``) may coincide with a sibling's start index and
            # must not poison its cache entry.
            return []
        # ``hi`` is part of the key: root bounds can truncate a node's range
        # to the same ``lo`` with a different ``hi``.
        cache_key = (depth, lo, hi)
        cached = self._keys_cache.get(cache_key)
        if cached is not None:
            return cached
        if _np is not None and hi - lo >= _NP_KEYS_MIN_SPAN:
            # Run-boundary unique over the (already sorted) node slice —
            # one vectorized pass, shared with the vectorized backend
            # through the column set's numpy cache.  ``tolist`` yields
            # plain Python ints, so the cached list is indistinguishable
            # from the bisect-built one.
            keys = self._np_node_keys(depth, lo, hi).tolist()
        else:
            column = self._cols[depth]
            keys = []
            index = lo
            while index < hi:
                code = column[index]
                keys.append(code)
                index = bisect_right(column, code, index, hi)
        self._keys_cache[cache_key] = keys
        return keys

    def _np_node_keys(self, depth: int, lo: int, hi: int):
        """The node's distinct-key run as a cached int64 ndarray."""
        np_cache = self._cset.np_trie_cache()
        cache_key = (depth, lo, hi)
        run = np_cache.get(cache_key)
        if run is None:
            block = self._cset.np_columns()[depth][lo:hi]
            keep = _np.empty(hi - lo, dtype=bool)
            keep[0] = True
            _np.not_equal(block[1:], block[:-1], out=keep[1:])
            run = block[keep]
            np_cache[cache_key] = run
        return run

    def level_keys(self) -> list[int]:
        """All distinct keys of the *current level*, from its beginning.

        Materialized once per trie node and cached — the candidate lists of
        Generic Join; each distinct prefix's extension list is charged once,
        like the dict-trie memo it replaces.  Does not move the iterator.
        """
        frame = self._stack[-1]
        return self._node_keys(len(self._stack) - 1, frame[0], frame[1])

    def child_keys(self) -> list[int]:
        """The sorted distinct keys one level below, without descending.

        At the root these are the depth-0 keys; on a key they are its
        extensions.  Cached per node, shared with :meth:`level_keys`.
        """
        if self._stack:
            frame = self._stack[-1]
            lo, hi = frame[2], frame[3]
        else:
            lo, hi = self._root_lo, self._root_hi
        return self._node_keys(len(self._stack), lo, hi)

    def child_span(self) -> int:
        """Row count of the child range — an O(1) upper bound on child keys.

        Lets intersections pick a driver *without* materializing any key
        list: the node with the smallest span is never larger than the node
        with the smallest key set.
        """
        if self._stack:
            frame = self._stack[-1]
            return frame[3] - frame[2]
        return self._root_hi - self._root_lo

    def contains_child(self, code: int) -> bool:
        """Whether ``code`` is a child key, by one binary search — no
        materialization of the node's key list/set (the probe side of the
        delta-term intersections in :mod:`repro.incremental.ivm`)."""
        if self._stack:
            frame = self._stack[-1]
            lo, hi = frame[2], frame[3]
        else:
            lo, hi = self._root_lo, self._root_hi
        column = self._cols[len(self._stack)]
        pos = bisect_left(column, code, lo, hi)
        return pos < hi and column[pos] == code

    def node_token(self) -> int:
        """Cheap identity of the *child* node this iterator stands over.

        Node ranges at a fixed depth are disjoint, so the child range's start
        index identifies the node; joins key their per-depth intersection
        memos on the tuple of active tokens (the columnar analogue of the
        bound-prefix memo of the dict-trie engines).
        """
        if self._stack:
            return self._stack[-1][2]
        return self._root_lo

    def child_key_set(self) -> frozenset:
        """:meth:`child_keys` as a frozenset (cached; C-speed intersections)."""
        if self._stack:
            frame = self._stack[-1]
            lo = frame[2]
            hi = frame[3]
        else:
            lo, hi = self._root_lo, self._root_hi
        if lo >= hi:
            return frozenset()
        depth = len(self._stack)
        cache_key = (depth, lo, hi)
        cached = self._sets_cache.get(cache_key)
        if cached is None:
            cached = frozenset(self._node_keys(depth, lo, hi))
            self._sets_cache[cache_key] = cached
        return cached


def leapfrog_search(iterators: list, counter=None) -> Iterator[int]:
    """Yield the intersection of the iterators' current levels by leapfrogging.

    The classic leapfrog join [47, §3.1]: keep the iterators sorted by key,
    repeatedly seek the smallest to the current maximum; every time all agree
    a match is yielded with *every* iterator positioned on it (so callers can
    ``open()`` them, recurse, and ``up()`` between yields).

    Args:
        iterators: :class:`SortedTrieIterator`\\ s positioned at a level.
        counter: optional work counter; each seek/next bumps
            ``tuples_scanned`` by one (machine-independent cost accounting).
    """
    if not iterators:
        return
    for iterator in iterators:
        if iterator.at_end():
            return
    if len(iterators) == 1:
        iterator = iterators[0]
        while True:
            if counter is not None:
                counter.tuples_scanned += 1
            yield iterator.key()
            if not iterator.next():
                return
    its = sorted(iterators, key=lambda it: it.key())
    k = len(its)
    p = 0
    x_max = its[-1].key()
    while True:
        iterator = its[p]
        x = iterator.key()
        if x == x_max:
            # All k iterators sit on x_max (each was seeked to >= the
            # previous max and none overshot): a match.
            yield x
            if counter is not None:
                counter.tuples_scanned += 1
            if not iterator.next():
                return
        else:
            if counter is not None:
                counter.tuples_scanned += 1
            if not iterator.seek(x_max):
                return
        x_max = iterator.key()
        p = (p + 1) % k
