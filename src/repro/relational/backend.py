"""Runtime selection of the join-execution backend.

Two backends execute the code-domain hot paths (trie intersection, leapfrog
seeks, block leaves):

* ``"interpreted"`` — the pure-Python driver in
  :mod:`repro.relational.execution`, always available;
* ``"vectorized"`` — the numpy block-at-a-time kernels in
  :mod:`repro.relational.vectorized`, used when numpy is importable and
  **bit-identical** to the interpreted driver (same sorted code rows, same
  emitted totals; see ROADMAP Architecture layer 9 for the contract).

Selection, in decreasing precedence:

1. an explicit :func:`scoped_backend` context (what
   ``QueryEngine(execution_backend=...)`` and the pool workers enter);
2. the ``REPRO_BACKEND`` environment variable;
3. the default, ``"vectorized"`` when numpy is present else ``"interpreted"``.

Requesting ``"vectorized"`` without numpy degrades gracefully to the
interpreted driver — the base install carries no third-party dependency
(numpy ships under the ``fast`` extra: ``pip install repro-panda[fast]``).
Only int64 code-domain execution ever vectorizes; exact-``Fraction``
annotation/witness/proof paths never route through this module.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar

from repro.exceptions import QueryError

__all__ = [
    "BACKENDS",
    "current_backend",
    "have_numpy",
    "resolve_backend",
    "scoped_backend",
]

#: The recognized backend names.
BACKENDS = ("interpreted", "vectorized")

_BACKEND_VAR: ContextVar = ContextVar("repro_backend", default=None)

_numpy = None
_numpy_checked = False


def have_numpy() -> bool:
    """Whether numpy is importable (checked once, cached)."""
    global _numpy, _numpy_checked
    if not _numpy_checked:
        try:
            import numpy
        except ImportError:
            numpy = None
        _numpy = numpy
        _numpy_checked = True
    return _numpy is not None


def resolve_backend(name: str | None) -> str:
    """Validate ``name`` (or pick the default) without the numpy fallback."""
    if name is None:
        name = os.environ.get("REPRO_BACKEND") or None
    if name is None:
        return "vectorized" if have_numpy() else "interpreted"
    if name not in BACKENDS:
        raise QueryError(
            f"unknown execution backend {name!r}; expected one of {BACKENDS}"
        )
    return name


def current_backend() -> str:
    """The backend joins execute on *right now*, after the numpy fallback.

    ``"vectorized"`` is only ever returned when numpy is actually
    importable; a vectorized request on a numpy-less install silently runs
    interpreted (same outputs, just slower) rather than failing.
    """
    name = _BACKEND_VAR.get()
    if name is None:
        name = resolve_backend(None)
    if name == "vectorized" and not have_numpy():
        return "interpreted"
    return name


@contextmanager
def scoped_backend(name: str | None):
    """Pin the backend for the duration of the context.

    ``None`` re-resolves from the environment/default — what the pool
    workers do so an engine-level override shipped with the task wins over
    the worker's inherited environment.
    """
    token = _BACKEND_VAR.set(resolve_backend(name) if name is not None else None)
    try:
        yield
    finally:
        _BACKEND_VAR.reset(token)
