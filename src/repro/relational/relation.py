"""Columnar, dictionary-encoded in-memory relations.

A :class:`Relation` is a named set of tuples over a fixed schema (an ordered
tuple of attribute names).  Internally the tuples live as *code* tuples —
each attribute's values interned to dense integers by the shared
per-attribute :class:`~repro.relational.columns.Dictionary` — kept in one
canonical sorted :class:`~repro.relational.columns.ColumnSet` per requested
attribute order.  Every operator, join algorithm, degree computation, and
statistic runs on those sorted integer columns (via the shared
:class:`~repro.relational.trie.SortedTrieIterator` or direct run scans);
values are decoded only at the API boundary.

The historical tuple-facing API survives as thin adapters: ``__iter__`` /
``tuples`` / ``index_on`` / ``key_of`` decode on demand (and cache), so
bounds/width/PANDA consumers are unchanged.  Relations remain immutable once
constructed — every operator in :mod:`repro.relational.operators` returns a
new relation — which keeps sharing across PANDA's recursive branches safe.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import SchemaError
from repro.relational.columns import ColumnSet, Dictionary, decode_row
from repro.relational.trie import SortedTrieIterator

__all__ = ["Relation"]


def _np_degree(column_set: ColumnSet, split: int) -> int:
    """``max`` distinct-row count per ``X``-group, as numpy run boundaries.

    The vectorized twin of the :meth:`Relation.degree` run scan: group
    boundaries are change points of the first ``split`` columns, distinct
    ``Y``-extensions change points of all columns, and the degree is the
    largest gap between consecutive group boundaries measured in extension
    boundaries.  Only called under the vectorized backend (numpy present).
    """
    import numpy as np

    cols = column_set.np_columns()
    n = column_set.nrows
    full_change = np.zeros(n, dtype=bool)
    full_change[0] = True
    for col in cols:
        full_change[1:] |= col[1:] != col[:-1]
    group_change = np.zeros(n, dtype=bool)
    group_change[0] = True
    for col in cols[:split]:
        group_change[1:] |= col[1:] != col[:-1]
    full_starts = np.flatnonzero(full_change)
    group_starts = np.flatnonzero(group_change)
    # Every group boundary is also a full-row boundary, so the per-group
    # extension count is the index gap between consecutive group starts.
    positions = np.searchsorted(full_starts, group_starts)
    counts = np.diff(np.append(positions, len(full_starts)))
    return int(counts.max())


class Relation:
    """A named set of tuples over an ordered schema, stored columnar.

    Attributes:
        name: display name (targets are ``T_...``, inputs ``R_...``).
        schema: ordered attribute names; ``len(schema)`` is the arity.
    """

    __slots__ = (
        "name",
        "schema",
        "_positions",
        "_dicts",
        "_rows",
        "_row_set",
        "_column_sets",
        "_key_sets",
        "_decoded",
        "_indexes",
        "_store",
    )

    def __init__(
        self,
        name: str,
        schema: Iterable[str],
        tuples: Iterable[tuple] = (),
    ) -> None:
        self.name = name
        self.schema: tuple[str, ...] = tuple(schema)
        if len(set(self.schema)) != len(self.schema):
            raise SchemaError(f"duplicate attributes in schema {self.schema}")
        self._positions = {attr: i for i, attr in enumerate(self.schema)}
        self._dicts: tuple[Dictionary, ...] = tuple(
            Dictionary.of(attr) for attr in self.schema
        )
        arity = len(self.schema)
        encoders = tuple(d.encode for d in self._dicts)
        rows: set[tuple[int, ...]] = set()
        for row in tuples:
            row = tuple(row)
            if len(row) != arity:
                raise SchemaError(
                    f"tuple {row} has arity {len(row)}, schema {self.schema} "
                    f"expects {arity}"
                )
            rows.add(tuple(enc(v) for enc, v in zip(encoders, row)))
        self._init_storage(sorted(rows))

    def _init_storage(self, sorted_rows: list) -> None:
        """Install the canonical (schema-order) sorted code rows."""
        self._rows: list = sorted_rows
        self._row_set: frozenset | None = None
        self._column_sets: dict[tuple[str, ...], ColumnSet] = {
            self.schema: ColumnSet(self.schema, sorted_rows, presorted=True)
        }
        self._key_sets: dict[tuple[str, ...], frozenset] = {}
        self._decoded: frozenset | None = None
        self._indexes: dict[tuple[str, ...], dict[tuple, list[tuple]]] = {}
        self._store = None

    @classmethod
    def from_codes(
        cls,
        name: str,
        schema: Iterable[str],
        code_rows: Iterable[tuple],
        presorted: bool = False,
        distinct: bool = False,
    ) -> "Relation":
        """Build a relation directly from already-encoded code tuples.

        The fast path for operators and join outputs: codes must come from
        the schema attributes' shared dictionaries.  ``presorted`` asserts
        the rows are already in ascending order, ``distinct`` that they are
        duplicate-free; both skip the corresponding normalization pass.
        """
        relation = cls.__new__(cls)
        relation.name = name
        relation.schema = tuple(schema)
        if len(set(relation.schema)) != len(relation.schema):
            raise SchemaError(f"duplicate attributes in schema {relation.schema}")
        relation._positions = {a: i for i, a in enumerate(relation.schema)}
        relation._dicts = tuple(Dictionary.of(a) for a in relation.schema)
        rows = code_rows if isinstance(code_rows, list) else list(code_rows)
        if not distinct:
            rows = sorted(set(rows))
        elif not presorted:
            rows = sorted(rows)
        relation._init_storage(rows)
        return relation

    @classmethod
    def from_columns(
        cls, name: str, schema: Iterable[str], columns: Sequence
    ) -> "Relation":
        """Build a relation from sorted-aligned ``array('q')`` code columns.

        The emission path of the vectorized backend
        (:mod:`repro.relational.vectorized`): the join result arrives
        columnar and *stays* columnar — the canonical
        :class:`~repro.relational.columns.ColumnSet` adopts the buffers and
        the row-tuple transpose is deferred until something asks for
        ``code_rows`` (lazily resolved through ``__getattr__``).  The
        columns must hold the canonical sorted duplicate-free rows, exactly
        what ``from_codes(..., presorted=True, distinct=True)`` would store.
        """
        relation = cls.__new__(cls)
        relation.name = name
        relation.schema = tuple(schema)
        if len(set(relation.schema)) != len(relation.schema):
            raise SchemaError(f"duplicate attributes in schema {relation.schema}")
        relation._positions = {a: i for i, a in enumerate(relation.schema)}
        relation._dicts = tuple(Dictionary.of(a) for a in relation.schema)
        # ``_rows`` is deliberately left unset: it materializes on first
        # access from the canonical column set's lazy transpose.
        relation._row_set = None
        relation._column_sets = {
            relation.schema: ColumnSet.from_columns(relation.schema, columns)
        }
        relation._key_sets = {}
        relation._decoded = None
        relation._indexes = {}
        relation._store = None
        return relation

    def __getattr__(self, name: str):
        # Only ``_rows`` is ever lazily absent (see :meth:`from_columns`).
        if name == "_rows":
            rows = self._column_sets[self.schema].rows
            object.__setattr__(self, "_rows", rows)
            return rows
        raise AttributeError(name)

    # -- columnar internals -------------------------------------------------------

    @property
    def dictionaries(self) -> tuple[Dictionary, ...]:
        """The shared per-attribute dictionaries, schema-aligned."""
        return self._dicts

    @property
    def store(self):
        """The persisted column store this relation is bound to, or None.

        Set by :mod:`repro.relational.storage` when a relation is saved
        into — or opened from — a database directory, and carried across
        versions by incremental maintenance
        (:func:`repro.incremental.delta.advance_relation`), so compaction
        knows where to persist the fresh base artifact.
        """
        return self._store

    def attach_store(self, store) -> None:
        """Bind this relation to a persisted column store."""
        self._store = store

    @property
    def code_rows(self) -> list:
        """Canonical sorted code rows in schema order (do not mutate)."""
        return self._rows

    def column_set(self, order: Sequence[str]) -> ColumnSet:
        """The rows sorted under ``order`` (any distinct schema attributes).

        Cached per order; the schema-order set exists from construction.
        Partial orders keep one row per relation tuple (duplicates under the
        projection preserved) so run boundaries give exact distinct counts.
        """
        order = tuple(order)
        cached = self._column_sets.get(order)
        if cached is not None:
            return cached
        positions = tuple(self.position(a) for a in order)
        if len(set(positions)) != len(positions):
            raise SchemaError(f"column order {order} repeats an attribute")
        rows = sorted(
            [tuple(row[p] for p in positions) for row in self._rows]
        )
        cached = ColumnSet(order, rows, presorted=True)
        self._column_sets[order] = cached
        return cached

    def cached_full_orders(self) -> list[tuple[tuple[str, ...], ColumnSet]]:
        """The non-canonical full-arity sorted orders materialized so far.

        The incremental subsystem (:mod:`repro.incremental`) carries these
        forward across versions: a delta-first join order needs the big
        relations sorted under permuted attribute orders, and re-sorting
        them per batch would dominate maintenance — instead the signed
        delta merges into each cached order, so a sort is paid once per
        order per *relation lifetime*, not per batch.
        """
        arity = len(self.schema)
        return [
            (order, column_set)
            for order, column_set in self._column_sets.items()
            if len(order) == arity and order != self.schema
        ]

    def install_sorted_order(self, order: Sequence[str], rows: list) -> None:
        """Adopt an externally maintained sorted row list for ``order``.

        ``rows`` must be exactly what :meth:`column_set` would compute —
        the relation's tuples permuted into ``order`` and sorted — which is
        what a signed merge into the previous version's order produces.
        """
        order = tuple(order)
        if sorted(order) != sorted(self.schema):
            raise SchemaError(
                f"order {order} is not a permutation of schema {self.schema}"
            )
        self._column_sets[order] = ColumnSet(order, rows, presorted=True)

    def trie_iterator(
        self, order: Sequence[str], bounds: tuple[int, int] | None = None
    ) -> SortedTrieIterator:
        """A :class:`SortedTrieIterator` over the rows sorted under ``order``.

        ``bounds`` restricts the virtual root to the row range ``[lo, hi)``
        of that order's column set — the zero-copy shard restriction of the
        partition-parallel subsystem.
        """
        column_set = self.column_set(tuple(order))
        if bounds is None:
            return SortedTrieIterator(column_set)
        return SortedTrieIterator(column_set, bounds[0], bounds[1])

    def key_set(self, attrs: Sequence[str]) -> frozenset:
        """The distinct code-tuples of the ``attrs`` projection (cached).

        The probe side of semijoins: one frozenset of small int tuples per
        attribute order, shared across sweeps.
        """
        attrs = tuple(attrs)
        cached = self._key_sets.get(attrs)
        if cached is None:
            positions = tuple(self.position(a) for a in attrs)
            cached = frozenset(
                tuple(row[p] for p in positions) for row in self._rows
            )
            self._key_sets[attrs] = cached
        return cached

    def encode_key(self, attrs: Sequence[str], values: tuple) -> tuple | None:
        """Encode a value tuple for ``attrs``; ``None`` if any value is unseen."""
        out = []
        for attr, value in zip(attrs, values):
            code = self._dicts[self.position(attr)].encode_existing(value)
            if code is None:
                return None
            out.append(code)
        return tuple(out)

    def decode_row(self, code_row: tuple) -> tuple:
        """Decode one schema-aligned code tuple back to values."""
        return decode_row(self._dicts, code_row)

    def _code_set(self) -> frozenset:
        row_set = self._row_set
        if row_set is None:
            row_set = frozenset(self._rows)
            self._row_set = row_set
        return row_set

    # -- basic protocol ---------------------------------------------------------

    def __len__(self) -> int:
        # Through the canonical column set so columnar-born relations
        # (:meth:`from_columns`) answer without transposing rows.
        return self._column_sets[self.schema].nrows

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.tuples)

    def __contains__(self, row: tuple) -> bool:
        row = tuple(row)
        if len(row) != len(self.schema):
            return False
        coded = self.encode_key(self.schema, row)
        return coded is not None and coded in self._code_set()

    def __eq__(self, other: object) -> bool:
        """Content equality over the same attribute set (order-insensitive).

        Two relations are equal when they have the same attributes and the
        same tuples once columns are aligned; names are display only.  The
        comparison runs on codes — shared dictionaries make code equality
        coincide with value equality.
        """
        if not isinstance(other, Relation):
            return NotImplemented
        if self.attributes != other.attributes:
            return False
        if len(self) != len(other):
            return False
        if self.schema == other.schema:
            return self._rows == other._rows
        positions = tuple(other.position(a) for a in self.schema)
        realigned = {tuple(row[p] for p in positions) for row in other._rows}
        return self._code_set() == realigned

    def __hash__(self) -> int:
        canonical = tuple(sorted(self.schema))
        positions = tuple(self._positions[a] for a in canonical)
        rows = frozenset(tuple(row[p] for p in positions) for row in self._rows)
        return hash((canonical, rows))

    def __repr__(self) -> str:
        return f"Relation({self.name}({', '.join(self.schema)}): {len(self)} tuples)"

    @property
    def attributes(self) -> frozenset:
        """The schema as an (unordered) variable set."""
        return frozenset(self.schema)

    @property
    def tuples(self) -> frozenset:
        """The decoded value tuples (adapter boundary; cached)."""
        decoded = self._decoded
        if decoded is None:
            values = tuple(d.values for d in self._dicts)
            decoded = frozenset(
                tuple(col[c] for col, c in zip(values, row))
                for row in self._rows
            )
            self._decoded = decoded
        return decoded

    def is_empty(self) -> bool:
        return not len(self)

    # -- tuple access -------------------------------------------------------------

    def position(self, attr: str) -> int:
        try:
            return self._positions[attr]
        except KeyError:
            raise SchemaError(
                f"attribute {attr!r} not in schema {self.schema}"
            ) from None

    def value_of(self, row: tuple, attr: str):
        """The value of ``attr`` in a tuple of this relation."""
        return row[self.position(attr)]

    def key_of(self, row: tuple, attrs: tuple[str, ...]) -> tuple:
        """Project a tuple onto an ordered attribute list."""
        return tuple(row[self._positions[a]] for a in attrs)

    def as_dicts(self) -> list[dict[str, object]]:
        """Human-friendly dump: each tuple as an attr->value dict."""
        return [dict(zip(self.schema, row)) for row in sorted(self.tuples)]

    # -- indexes ---------------------------------------------------------------------

    def index_on(self, attrs: Iterable[str]) -> Mapping[tuple, list[tuple]]:
        """A hash index from ``attrs``-keys to the (decoded) tuples carrying them.

        Tuple-facing compatibility adapter (the join algorithms themselves
        now run on sorted code columns).  The key order is the sorted
        attribute order, so callers on both sides of a join agree on key
        layout.  Indexes are cached per relation.
        """
        key_attrs = tuple(sorted(frozenset(attrs)))
        for attr in key_attrs:
            self.position(attr)
        cached = self._indexes.get(key_attrs)
        if cached is not None:
            return cached
        index: dict[tuple, list[tuple]] = {}
        positions = tuple(self._positions[a] for a in key_attrs)
        for row in self.tuples:
            key = tuple(row[p] for p in positions)
            index.setdefault(key, []).append(row)
        self._indexes[key_attrs] = index
        return index

    def distinct_keys(self, attrs: Iterable[str]) -> int:
        """Number of distinct ``attrs``-projections (``|Π_attrs(R)|``).

        A run count over the sorted code columns — no hashing.
        """
        key_attrs = tuple(sorted(frozenset(attrs)))
        column_set = self.column_set(key_attrs)
        return column_set.distinct_prefix_count(len(key_attrs))

    # -- degrees (Definition 2.10) -----------------------------------------------------

    def degree(self, y: Iterable[str], x: Iterable[str]) -> int:
        """``deg_R(Y | X) = max_t |Π_Y(σ_{X=t}(R))|`` (0 for an empty relation).

        ``X`` may be empty, in which case this is ``|Π_Y(R)|``.  Requires
        ``X ⊆ Y ⊆ schema``.  Computed as one linear scan over the rows
        sorted ``X``-major: group boundaries are ``X``-prefix changes,
        distinct ``Y``-extensions are row changes inside a group.
        """
        x_set = frozenset(x)
        y_set = frozenset(y)
        if not x_set <= y_set:
            raise SchemaError(
                f"degree needs X ⊆ Y, got {sorted(x_set)} vs {sorted(y_set)}"
            )
        if not y_set <= self.attributes:
            raise SchemaError(
                f"degree attrs {sorted(y_set)} not all in schema {self.schema}"
            )
        if not self._rows:
            return 0
        order = tuple(sorted(x_set)) + tuple(sorted(y_set - x_set))
        split = len(x_set)
        if split == 0:
            return self.column_set(order).distinct_prefix_count(len(order))
        column_set = self.column_set(order)
        if column_set.nrows >= 256:
            from repro.relational.backend import current_backend

            if current_backend() == "vectorized":
                return _np_degree(column_set, split)
        rows = column_set.rows
        best = 0
        count = 0
        previous = None
        for row in rows:
            if previous is None or row[:split] != previous[:split]:
                if count > best:
                    best = count
                count = 1
            elif row != previous:
                count += 1
            previous = row
        return best if best >= count else count

    def guards(self, constraint) -> bool:
        """True if this relation guards a degree constraint (Def. 2.10)."""
        if not constraint.y <= self.attributes:
            return False
        return self.degree(constraint.y, constraint.x) <= constraint.bound

    # -- convenience constructors --------------------------------------------------------

    @classmethod
    def from_pairs(
        cls, name: str, a: str, b: str, pairs: Iterable[tuple]
    ) -> "Relation":
        """A binary relation (the common case in the paper's examples)."""
        return cls(name, (a, b), pairs)

    def renamed(self, name: str) -> "Relation":
        """The same content under a different display name (storage shared)."""
        clone = Relation.__new__(Relation)
        clone.name = name
        clone.schema = self.schema
        clone._positions = self._positions
        clone._dicts = self._dicts
        try:
            # Don't force a lazily-columnar relation's row transpose just to
            # rename it; the clone resolves ``_rows`` through the shared
            # column sets exactly like the original.
            clone._rows = object.__getattribute__(self, "_rows")
        except AttributeError:
            pass
        clone._row_set = self._row_set
        clone._column_sets = self._column_sets
        clone._key_sets = self._key_sets
        clone._decoded = self._decoded
        clone._indexes = self._indexes
        clone._store = self._store
        return clone

    def relabeled(self, name: str, schema: Sequence[str]) -> "Relation":
        """The same rows under positionally renamed attributes.

        Used by atom binding (``R(x, y)`` read as ``R(A, B)``): column ``i``
        keeps its data but is re-interned into attribute ``schema[i]``'s
        dictionary via a per-column code-translation table — one dictionary
        lookup per *distinct* value instead of one per tuple occurrence.
        """
        schema = tuple(schema)
        if len(schema) != len(self.schema):
            raise SchemaError(
                f"relabel needs {len(self.schema)} attributes, got {schema}"
            )
        if schema == self.schema:
            return self.renamed(name)
        translations: list[dict[int, int]] = []
        for old_dict, attr in zip(self._dicts, schema):
            new_dict = Dictionary.of(attr)
            if new_dict is old_dict:
                translations.append(None)  # type: ignore[arg-type]
            else:
                translations.append({})
        new_rows = []
        values = tuple(d.values for d in self._dicts)
        encoders = tuple(Dictionary.of(a).encode for a in schema)
        for row in self._rows:
            out = []
            for i, code in enumerate(row):
                table = translations[i]
                if table is None:
                    out.append(code)
                    continue
                new_code = table.get(code)
                if new_code is None:
                    new_code = encoders[i](values[i][code])
                    table[code] = new_code
                out.append(new_code)
            new_rows.append(tuple(out))
        return Relation.from_codes(name, schema, new_rows, distinct=True)
