"""In-memory relations with hash indexes.

A :class:`Relation` is a named set of tuples over a fixed schema (an ordered
tuple of attribute names).  Tuples are plain Python tuples aligned with the
schema.  Hash indexes on attribute subsets are built lazily and cached; they
back the join, semijoin, and degree computations that PANDA and the baseline
algorithms perform.

Relations are treated as immutable once constructed — every operator in
:mod:`repro.relational.operators` returns a new relation — which makes the
sharing of inputs across PANDA's recursive branches safe.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.exceptions import SchemaError

__all__ = ["Relation"]


class Relation:
    """A named set of tuples over an ordered schema.

    Attributes:
        name: display name (targets are ``T_...``, inputs ``R_...``).
        schema: ordered attribute names; ``len(schema)`` is the arity.
    """

    __slots__ = ("name", "schema", "_tuples", "_indexes", "_positions")

    def __init__(
        self,
        name: str,
        schema: Iterable[str],
        tuples: Iterable[tuple] = (),
    ) -> None:
        self.name = name
        self.schema: tuple[str, ...] = tuple(schema)
        if len(set(self.schema)) != len(self.schema):
            raise SchemaError(f"duplicate attributes in schema {self.schema}")
        self._positions = {attr: i for i, attr in enumerate(self.schema)}
        arity = len(self.schema)
        data = set()
        for row in tuples:
            row = tuple(row)
            if len(row) != arity:
                raise SchemaError(
                    f"tuple {row} has arity {len(row)}, schema {self.schema} "
                    f"expects {arity}"
                )
            data.add(row)
        self._tuples: frozenset = frozenset(data)
        self._indexes: dict[tuple[str, ...], dict[tuple, list[tuple]]] = {}

    # -- basic protocol ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._tuples)

    def __contains__(self, row: tuple) -> bool:
        return tuple(row) in self._tuples

    def __eq__(self, other: object) -> bool:
        """Content equality over the same attribute set (order-insensitive).

        Two relations are equal when they have the same attributes and the
        same tuples once columns are aligned; names are display only.
        """
        if not isinstance(other, Relation):
            return NotImplemented
        if self.attributes != other.attributes:
            return False
        if len(self) != len(other):
            return False
        if self.schema == other.schema:
            return self._tuples == other._tuples
        positions = tuple(other.position(a) for a in self.schema)
        realigned = {tuple(row[p] for p in positions) for row in other._tuples}
        return self._tuples == realigned

    def __hash__(self) -> int:
        canonical = tuple(sorted(self.schema))
        positions = tuple(self._positions[a] for a in canonical)
        rows = frozenset(tuple(row[p] for p in positions) for row in self._tuples)
        return hash((canonical, rows))

    def __repr__(self) -> str:
        return f"Relation({self.name}({', '.join(self.schema)}): {len(self)} tuples)"

    @property
    def attributes(self) -> frozenset:
        """The schema as an (unordered) variable set."""
        return frozenset(self.schema)

    @property
    def tuples(self) -> frozenset:
        return self._tuples

    def is_empty(self) -> bool:
        return not self._tuples

    # -- tuple access -------------------------------------------------------------

    def position(self, attr: str) -> int:
        try:
            return self._positions[attr]
        except KeyError:
            raise SchemaError(
                f"attribute {attr!r} not in schema {self.schema}"
            ) from None

    def value_of(self, row: tuple, attr: str):
        """The value of ``attr`` in a tuple of this relation."""
        return row[self.position(attr)]

    def key_of(self, row: tuple, attrs: tuple[str, ...]) -> tuple:
        """Project a tuple onto an ordered attribute list."""
        return tuple(row[self._positions[a]] for a in attrs)

    def as_dicts(self) -> list[dict[str, object]]:
        """Human-friendly dump: each tuple as an attr->value dict."""
        return [dict(zip(self.schema, row)) for row in sorted(self._tuples)]

    # -- indexes ---------------------------------------------------------------------

    def index_on(self, attrs: Iterable[str]) -> Mapping[tuple, list[tuple]]:
        """A hash index from ``attrs``-keys to the tuples carrying them.

        The key order is the sorted attribute order, so callers on both sides
        of a join agree on key layout.  Indexes are cached per relation.
        """
        key_attrs = tuple(sorted(frozenset(attrs)))
        for attr in key_attrs:
            self.position(attr)
        cached = self._indexes.get(key_attrs)
        if cached is not None:
            return cached
        index: dict[tuple, list[tuple]] = {}
        positions = tuple(self._positions[a] for a in key_attrs)
        for row in self._tuples:
            key = tuple(row[p] for p in positions)
            index.setdefault(key, []).append(row)
        self._indexes[key_attrs] = index
        return index

    def distinct_keys(self, attrs: Iterable[str]) -> int:
        """Number of distinct ``attrs``-projections (``|Π_attrs(R)|``)."""
        return len(self.index_on(attrs))

    # -- degrees (Definition 2.10) -----------------------------------------------------

    def degree(self, y: Iterable[str], x: Iterable[str]) -> int:
        """``deg_R(Y | X) = max_t |Π_Y(σ_{X=t}(R))|`` (0 for an empty relation).

        ``X`` may be empty, in which case this is ``|Π_Y(R)|``.
        Requires ``X ⊆ Y ⊆ schema``.
        """
        x_set = frozenset(x)
        y_set = frozenset(y)
        if not x_set <= y_set:
            raise SchemaError(f"degree needs X ⊆ Y, got {sorted(x_set)} vs {sorted(y_set)}")
        if not y_set <= self.attributes:
            raise SchemaError(
                f"degree attrs {sorted(y_set)} not all in schema {self.schema}"
            )
        if not self._tuples:
            return 0
        if not x_set:
            return self.distinct_keys(y_set)
        x_attrs = tuple(sorted(x_set))
        y_attrs = tuple(sorted(y_set))
        groups: dict[tuple, set] = {}
        x_positions = tuple(self._positions[a] for a in x_attrs)
        y_positions = tuple(self._positions[a] for a in y_attrs)
        for row in self._tuples:
            key = tuple(row[p] for p in x_positions)
            groups.setdefault(key, set()).add(tuple(row[p] for p in y_positions))
        return max(len(v) for v in groups.values())

    def guards(self, constraint) -> bool:
        """True if this relation guards a degree constraint (Def. 2.10)."""
        if not constraint.y <= self.attributes:
            return False
        return self.degree(constraint.y, constraint.x) <= constraint.bound

    # -- convenience constructors --------------------------------------------------------

    @classmethod
    def from_pairs(
        cls, name: str, a: str, b: str, pairs: Iterable[tuple]
    ) -> "Relation":
        """A binary relation (the common case in the paper's examples)."""
        return cls(name, (a, b), pairs)

    def renamed(self, name: str) -> "Relation":
        """The same content under a different display name (indexes shared)."""
        clone = Relation.__new__(Relation)
        clone.name = name
        clone.schema = self.schema
        clone._positions = self._positions
        clone._tuples = self._tuples
        clone._indexes = self._indexes
        return clone
