"""Dictionary encoding and sorted columnar code storage (the relation kernel).

This is the storage layer the whole relational engine sits on, mirroring what
the bitmask kernel (``core/varmap.py``) did for the entropy/LP layers: replace
per-operation hashing of arbitrary Python objects with dense machine integers
fixed once at ingestion time.

* A :class:`Dictionary` interns the values of one *attribute* to dense integer
  codes.  Dictionaries are shared per attribute name (:meth:`Dictionary.of`),
  so two relations mentioning the same attribute always agree on codes and
  every join/semijoin/intersection can run directly on the integers — no
  decode, no value hashing, no cross-relation translation.
* A :class:`ColumnSet` materializes one relation's code-tuples *sorted
  lexicographically* under a chosen attribute order, with one ``array('q')``
  per attribute built on demand.  Sorted columns are what the shared
  :class:`~repro.relational.trie.SortedTrieIterator` walks: a trie level is a
  contiguous code range, descents are C-level binary searches, and seeks
  gallop (:func:`gallop_left`) instead of probing dicts.

Codes order values by *first appearance*, not by ``<`` on the values — the
engine only ever needs a total order that all participating relations share,
which the per-attribute sharing guarantees.  Anything user-facing (CSV dumps,
``as_dicts``) decodes back to values at the boundary.
"""

from __future__ import annotations

import hashlib
from array import array
from bisect import bisect_left
from typing import Iterator, Sequence

__all__ = [
    "Dictionary",
    "ColumnSet",
    "apply_plan_to_columns",
    "apply_signed_rows",
    "decode_row",
    "gallop_left",
    "merge_runs",
    "signed_merge_plan",
]


class Dictionary:
    """Interns one attribute's values to dense integer codes.

    Attributes:
        attribute: the attribute name this dictionary encodes.

    The code space is append-only: ``encode`` assigns ``0, 1, 2, ...`` in
    first-appearance order and never re-assigns, so codes handed out earlier
    stay valid for the lifetime of the process.  Values must be hashable
    (exactly the constraint tuple-set relations already imposed).
    """

    __slots__ = ("attribute", "_codes", "_values")

    #: shared per-attribute-name instances (see :meth:`of`).
    _registry: dict = {}

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute
        self._codes: dict = {}
        self._values: list = []

    @classmethod
    def of(cls, attribute: str) -> "Dictionary":
        """The shared dictionary for ``attribute`` (one per name per process).

        The registry is append-only and retains every value ever encoded, so
        a long-lived process cycling through many unrelated datasets should
        call :meth:`reset_registry` at workload boundaries.
        """
        found = cls._registry.get(attribute)
        if found is None:
            found = cls(attribute)
            cls._registry[attribute] = found
        return found

    @classmethod
    def reset_registry(cls) -> None:
        """Drop all shared dictionaries (reclaiming their interned values).

        Only safe at a workload boundary: relations built *before* the reset
        keep their (still-valid) dictionary objects, but they no longer share
        codes with relations built afterwards, so mixing the two in one join
        is undefined.  Intended for long-running processes and test harnesses
        that churn through many unrelated datasets.
        """
        cls._registry.clear()

    def __len__(self) -> int:
        return len(self._values)

    def encode(self, value) -> int:
        """The code of ``value``, interning it on first sight."""
        code = self._codes.get(value)
        if code is None:
            code = len(self._values)
            self._codes[value] = code
            self._values.append(value)
        return code

    def encode_existing(self, value) -> int | None:
        """The code of ``value`` if already interned, else ``None``."""
        return self._codes.get(value)

    def decode(self, code: int):
        """The value behind ``code``."""
        return self._values[code]

    @property
    def values(self) -> list:
        """The interned values, indexable by code (do not mutate)."""
        return self._values

    def __repr__(self) -> str:
        return f"Dictionary({self.attribute!r}: {len(self)} values)"


def decode_row(dictionaries: Sequence[Dictionary], code_row: tuple) -> tuple:
    """Decode one code tuple through its aligned dictionaries."""
    return tuple(d.values[c] for d, c in zip(dictionaries, code_row))


class _RowsView:
    """A zero-copy window ``[lo, hi)`` over another row sequence.

    Backs :meth:`ColumnSet.restrict_range`: a contiguous range of sorted
    rows shares the parent's tuples instead of copying pointer lists.
    Supports the read-only sequence protocol the engine uses (indexing,
    slicing, iteration, ``len``).
    """

    __slots__ = ("_base", "_lo", "_hi")

    def __init__(self, base, lo: int, hi: int) -> None:
        self._base = base
        self._lo = lo
        self._hi = hi

    def __len__(self) -> int:
        return self._hi - self._lo

    def __getitem__(self, index):
        n = self._hi - self._lo
        if isinstance(index, slice):
            start, stop, step = index.indices(n)
            if step != 1:
                return [self._base[self._lo + i] for i in range(start, stop, step)]
            return self._base[self._lo + start : self._lo + stop]
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(index)
        return self._base[self._lo + index]

    def __iter__(self):
        base = self._base
        for i in range(self._lo, self._hi):
            yield base[i]


class ColumnSet:
    """Code-tuples over an ordered attribute list, lexicographically sorted.

    ``rows`` is the full multiset of the owning relation's tuples projected
    onto ``attrs`` (duplicates preserved, one entry per relation tuple), kept
    sorted so that

    * every trie level (a fixed prefix) is a contiguous index range,
    * distinct prefixes are run boundaries (projection/degree = linear scan),
    * per-attribute ``array('q')`` columns support C-speed binary search.

    Columns are materialized lazily — operators that only need row tuples
    (merge joins, partitions) never pay for the arrays.  Symmetrically, a
    set built :meth:`from_columns` (the vectorized join-output path) keeps
    its row *tuples* lazy: consumers that stay columnar never pay the
    O(N · arity) transpose back into Python tuples.
    """

    __slots__ = (
        "attrs",
        "_rows",
        "_nrows",
        "_columns",
        "_trie_keys",
        "_trie_sets",
        "_np_cols",
        "_np_keys",
        "_digest",
        "_backing",
    )

    def __init__(self, attrs: Sequence[str], rows: list, presorted: bool = False) -> None:
        self.attrs: tuple[str, ...] = tuple(attrs)
        if not presorted:
            rows = sorted(rows)
        self._rows: list | None = rows
        self._nrows: int = len(rows)
        self._columns: tuple | None = None
        self._trie_keys: dict | None = None
        self._trie_sets: dict | None = None
        self._np_cols: tuple | None = None
        self._np_keys: dict | None = None
        self._digest: str | None = None
        self._backing = None

    @classmethod
    def from_columns(cls, attrs: Sequence[str], columns: Sequence) -> "ColumnSet":
        """Adopt sorted-aligned ``array('q')`` columns; row tuples stay lazy.

        The output path of the vectorized backend
        (:mod:`repro.relational.vectorized`): join results arrive as dense
        code columns, and the row-tuple transpose — the single most
        expensive step of emission — is deferred until something actually
        asks for :attr:`rows`.
        """
        attrs = tuple(attrs)
        columns = tuple(columns)
        if not columns or len(columns) != len(attrs):
            raise ValueError(
                f"from_columns needs one column per attribute {attrs}, "
                f"got {len(columns)}"
            )
        nrows = len(columns[0])
        if any(len(col) != nrows for col in columns):
            raise ValueError("from_columns needs equal-length columns")
        self = cls.__new__(cls)
        self.attrs = attrs
        self._rows = None
        self._nrows = nrows
        self._columns = columns
        self._trie_keys = None
        self._trie_sets = None
        self._np_cols = None
        self._np_keys = None
        self._digest = None
        self._backing = None
        return self

    @property
    def rows(self) -> list:
        """The sorted code tuples (transposed from the columns on demand)."""
        rows = self._rows
        if rows is None:
            rows = list(zip(*self._columns)) if self._nrows else []
            self._rows = rows
        return rows

    def trie_caches(self) -> tuple[dict, dict]:
        """The shared per-node key-run/key-set caches of this column set.

        Every :class:`~repro.relational.trie.SortedTrieIterator` over this
        column set shares them (keys are ``(depth, lo, hi)`` node ranges), so
        a node's distinct-key list materializes once per *relation*, not once
        per iterator — the difference between O(shards · nodes) and O(nodes)
        when partition-parallel workers walk many shard iterators over one
        shared relation.
        """
        if self._trie_keys is None:
            self._trie_keys = {}
            self._trie_sets = {}
        return self._trie_keys, self._trie_sets

    def np_trie_cache(self) -> dict:
        """The shared ``(depth, lo, hi) -> int64 ndarray`` node key-run cache.

        The vectorized backend's twin of :meth:`trie_caches`: each trie
        node's distinct-key run materializes once per column set as a numpy
        array and is shared by every block kernel (and, via ``tolist``, with
        the interpreted caches) instead of being rebuilt per iterator.
        """
        if self._np_keys is None:
            self._np_keys = {}
        return self._np_keys

    def np_columns(self) -> tuple:
        """Zero-copy ``int64`` numpy views of :attr:`columns` (cached).

        Only callable when numpy is importable (the vectorized backend
        guarantees it); the views share the ``array('q')`` buffers through
        ``np.frombuffer``, so no column data is copied.
        """
        cols = self._np_cols
        if cols is None:
            import numpy

            cols = tuple(
                numpy.frombuffer(col, dtype=numpy.int64) for col in self.columns
            )
            self._np_cols = cols
        return cols

    @property
    def nrows(self) -> int:
        return self._nrows

    @property
    def columns(self) -> tuple:
        """One sorted-aligned ``array('q')`` per attribute (built on demand).

        Materialized by one C-level ``zip(*rows)`` transpose instead of one
        Python generator pass per column — relations are rebuilt per version
        under incremental maintenance, so this runs often enough to matter.
        """
        cols = self._columns
        if cols is None:
            rows = self.rows
            if rows:
                cols = tuple(array("q", column) for column in zip(*rows))
            else:
                cols = tuple(array("q") for _ in self.attrs)
            self._columns = cols
        return cols

    @property
    def materialized_columns(self) -> tuple | None:
        """The column arrays if already built, without forcing the build.

        Incremental maintenance advances materialized columns by array
        splicing (:func:`apply_plan_to_columns`) — but only for versions
        that actually built them; unmaterialized columns stay lazy.
        """
        return self._columns

    def content_digest(self) -> str:
        """A content fingerprint of this column set (cached per version).

        SHA-1 over the attribute list and the column-major code buffers:
        two column sets over the same attributes digest equal exactly when
        they hold the same rows.  Immutable column sets cache it, which is
        what makes *per-relation* digest tokens cheap — the parallel pool
        (:mod:`repro.parallel.pool`) and the incremental engine's delta-aware
        shipping (:mod:`repro.incremental`) compare digests relation by
        relation, so an unchanged relation is recognized (and never
        reshipped) without rescanning its rows.

        The canonical byte stream is always column-major.  When only the
        row tuples exist, each column position is hashed in bounded chunks
        straight off the rows instead of materializing (and caching) the
        full ``array('q')`` transpose just to fingerprint it; file-backed
        sets (:mod:`repro.relational.storage`) carry their manifest digest
        and never rescan at all.
        """
        digest = self._digest
        if digest is None:
            hasher = hashlib.sha1()
            hasher.update(",".join(self.attrs).encode())
            columns = self._columns
            if columns is not None:
                for column in columns:
                    hasher.update(memoryview(column))
            else:
                rows = self.rows
                for position in range(len(self.attrs)):
                    for start in range(0, self._nrows, 65536):
                        chunk = rows[start : start + 65536]
                        hasher.update(
                            memoryview(array("q", [row[position] for row in chunk]))
                        )
            digest = hasher.hexdigest()
            self._digest = digest
        return digest

    @property
    def backing(self):
        """The persisted artifact behind this column set, if file-backed.

        ``None`` for ordinary in-heap sets; a
        :class:`~repro.relational.storage.ColumnBacking` (digest +
        column-file paths) for sets opened from — or persisted into — a
        database directory.  The parallel pool ships backed sets as *paths*
        instead of buffers (:func:`repro.parallel.pool._pack_entry`).
        """
        return self._backing

    def attach_backing(self, backing, digest: str | None = None) -> None:
        """Bind this column set to its persisted artifact.

        ``digest`` (the manifest digest of the artifact bytes) pre-seeds the
        cached :meth:`content_digest` so a file-backed set fingerprints
        without ever touching its data.
        """
        self._backing = backing
        if digest is not None:
            self._digest = digest

    def adopt_columns(self, columns: Sequence) -> None:
        """Install already-materialized per-attribute columns.

        Used by the parallel workers, which receive a shard's columns as raw
        ``array('q')`` buffers: adopting them skips the Python-level rebuild
        from the row tuples.  The columns must be sorted-aligned with
        ``rows`` — callers ship them from exactly that layout.
        """
        columns = tuple(columns)
        if len(columns) != len(self.attrs) or any(
            len(col) != self._nrows for col in columns
        ):
            raise ValueError(
                f"adopted columns do not match {len(self.attrs)} attrs x "
                f"{self._nrows} rows"
            )
        self._columns = columns
        self._np_cols = None

    def code_range(
        self,
        code_lo: int,
        code_hi: int,
        lo: int = 0,
        hi: int | None = None,
        depth: int = 0,
    ) -> tuple[int, int]:
        """Row-index range of rows with ``column[depth]`` in ``[code_lo, code_hi)``.

        Searched within rows ``[lo, hi)``, which must already fix the first
        ``depth`` codes (so the depth column is sorted there); ``depth`` 0 is
        the whole sorted row list.  Two binary searches — the shard-boundary
        primitive of :mod:`repro.parallel.partition`.
        """
        if hi is None:
            hi = self._nrows
        column = self.columns[depth]
        start = bisect_left(column, code_lo, lo, hi)
        end = bisect_left(column, code_hi, start, hi)
        return start, end

    def restrict_range(self, lo: int, hi: int) -> "ColumnSet":
        """A zero-copy view of rows ``[lo, hi)`` (same attrs, same sort order).

        The rows are shared through a bounded :class:`_RowsView` and any
        already-materialized columns through ``memoryview`` slices, so
        restricting costs O(arity) regardless of the range size.  This is
        the in-process restriction utility; the hot shard paths restrict
        without views at all — trie iterators through their root bounds,
        the worker pool by slicing columns directly
        (:func:`repro.parallel.pool.pack_column_range`).
        """
        if not 0 <= lo <= hi <= self._nrows:
            raise IndexError(f"range [{lo}, {hi}) outside 0..{self._nrows}")
        view = ColumnSet.__new__(ColumnSet)
        view.attrs = self.attrs
        base_rows = self.rows
        if isinstance(base_rows, _RowsView):
            # Re-slice the underlying list instead of stacking views.
            view._rows = _RowsView(
                base_rows._base, base_rows._lo + lo, base_rows._lo + hi
            )
        else:
            view._rows = _RowsView(base_rows, lo, hi)
        view._nrows = hi - lo
        cols = self._columns
        if cols is None:
            view._columns = None
        else:
            view._columns = tuple(memoryview(col)[lo:hi] for col in cols)
        # A view's row indices are shifted, so it cannot share the base
        # set's node caches (nor the base set's content digest).
        view._trie_keys = None
        view._trie_sets = None
        view._np_cols = None
        view._np_keys = None
        view._digest = None
        view._backing = None
        return view

    def distinct_prefix_count(self, depth: int) -> int:
        """Number of distinct length-``depth`` prefixes among the rows."""
        if depth == 0:
            return 1 if self._nrows else 0
        if self._nrows >= 256:
            from repro.relational.backend import current_backend

            if current_backend() == "vectorized":
                import numpy

                change = numpy.zeros(self._nrows, dtype=bool)
                change[0] = True
                for col in self.np_columns()[:depth]:
                    change[1:] |= col[1:] != col[:-1]
                return int(change.sum())
        rows = self.rows
        count = 0
        previous = None
        for row in rows:
            head = row[:depth]
            if head != previous:
                count += 1
                previous = head
        return count

    def __repr__(self) -> str:
        return f"ColumnSet({self.attrs}: {self.nrows} rows)"


def gallop_left(column, code: int, lo: int, hi: int) -> int:
    """First index in ``[lo, hi)`` with ``column[i] >= code``.

    Exponential (galloping) probe from ``lo`` followed by a binary search in
    the located bracket — the LFTJ seek primitive [47, §3.1]: cost is
    logarithmic in the *distance moved*, not in the range size, which is what
    keeps leapfrogging within the AGM bound.
    """
    step = 1
    probe = lo
    while probe < hi and column[probe] < code:
        lo = probe + 1
        probe += step
        step <<= 1
    return bisect_left(column, code, lo, min(probe, hi))


def signed_merge_plan(
    rows: Sequence,
    delta_rows: Sequence,
    signs: Sequence[int],
    strict: bool = True,
) -> list:
    """The splice plan merging a sorted signed delta into sorted ``rows``.

    Returns a delta-sized list of instructions — ``slice(lo, hi)`` objects
    for kept stretches of the base, interleaved with inserted row tuples
    (the two are type-distinguishable) — that :func:`apply_signed_rows`
    materializes as a row list and :func:`apply_plan_to_columns` as
    per-attribute ``array('q')`` columns.  Each delta row costs one binary
    search; everything between delta rows moves as one C-speed slice.

    With ``strict`` (the default) an insert of a present row or a delete of
    an absent row raises :class:`~repro.exceptions.DeltaError`; the
    incremental engine validates batches up front, so a strict failure here
    means a maintenance bug, not bad user input.
    """
    from repro.exceptions import DeltaError

    plan: list = []
    n = len(rows)
    prev = 0
    for row, sign in zip(delta_rows, signs):
        pos = bisect_left(rows, row, prev, n)
        if pos > prev:
            plan.append(slice(prev, pos))
        present = pos < n and rows[pos] == row
        if sign > 0:
            if present:
                if strict:
                    raise DeltaError(f"insert of already-present row {row}")
                prev = pos
                continue
            plan.append(row)
            prev = pos
        else:
            if not present:
                if strict:
                    raise DeltaError(f"delete of absent row {row}")
                prev = pos
                continue
            prev = pos + 1
    if n > prev:
        plan.append(slice(prev, n))
    return plan


def apply_signed_rows(
    rows: Sequence,
    delta_rows: Sequence,
    signs: Sequence[int],
    strict: bool = True,
    plan: list | None = None,
) -> list:
    """Merge a sorted signed delta into sorted, duplicate-free ``rows``.

    The sorted-run merge of the log-structured storage
    (:mod:`repro.incremental.delta`): ``delta_rows`` are ascending distinct
    code tuples with aligned ``signs`` (``+1`` insert, ``-1`` delete), and
    the result is the new sorted row list — built by C-speed slices from
    the :func:`signed_merge_plan` (pass ``plan`` to reuse one already
    computed), so merging a small batch into a large base never pays a
    per-row Python pass.
    """
    if not isinstance(rows, list):
        rows = list(rows)
    if plan is None:
        plan = signed_merge_plan(rows, delta_rows, signs, strict=strict)
    out: list = []
    for step in plan:
        if type(step) is slice:
            out.extend(rows[step])
        else:
            out.append(step)
    return out


def apply_plan_to_columns(columns: Sequence, plan: list) -> tuple:
    """Apply a :func:`signed_merge_plan` to materialized ``array('q')`` columns.

    The column-side twin of :func:`apply_signed_rows`: kept stretches move
    as C-level array slices, inserted rows contribute one code per column —
    so a relation version's columns advance in O(|delta| + memcpy) instead
    of a fresh O(N · arity) transpose per batch.  Under the vectorized
    backend the splice runs as one preallocated numpy fill per column
    (same output buffers, bit for bit).
    """
    from repro.relational.backend import current_backend

    if len(plan) > 8 and current_backend() == "vectorized":
        return _np_apply_plan(columns, plan)
    # array-slice extends hit the C same-typecode fast path; a memoryview
    # here would fall back to per-item iteration.
    out = [array("q") for _ in columns]
    for step in plan:
        if type(step) is slice:
            for target, column in zip(out, columns):
                target.extend(column[step])
        else:
            for target, code in zip(out, step):
                target.append(code)
    return tuple(out)


def _np_apply_plan(columns: Sequence, plan: list) -> tuple:
    """:func:`apply_plan_to_columns` as one numpy fill per column.

    Kept stretches are int64 slice assignments into a preallocated output
    buffer, inserted rows scalar stores — one pass over the plan per column
    instead of one ``array.extend`` dispatch per step per column.
    """
    import numpy

    total = sum(
        (step.stop - step.start) if type(step) is slice else 1 for step in plan
    )
    out = []
    for position, column in enumerate(columns):
        view = numpy.frombuffer(column, dtype=numpy.int64)
        merged = numpy.empty(total, dtype=numpy.int64)
        at = 0
        for step in plan:
            if type(step) is slice:
                width = step.stop - step.start
                merged[at : at + width] = view[step]
                at += width
            else:
                merged[at] = step[position]
                at += 1
        target = array("q")
        target.frombytes(merged.tobytes())
        out.append(target)
    return tuple(out)


def merge_runs(left: Sequence, right: Sequence, key) -> Iterator[tuple[int, int, int, int]]:
    """Pair up matching key runs of two ``key``-sorted sequences.

    The shared inner loop of every sort-merge ⋈ in the engine (set joins in
    :mod:`repro.relational.operators`, ⊗-joins in
    :mod:`repro.faq.annotated`): for each key present on both sides, yields
    the half-open index ranges ``(i, i_end, j, j_end)`` of its left and
    right runs; the caller cross-combines the two blocks however it likes.
    """
    i = j = 0
    n_left, n_right = len(left), len(right)
    while i < n_left and j < n_right:
        left_key = key(left[i])
        right_key = key(right[j])
        if left_key < right_key:
            i += 1
            continue
        if left_key > right_key:
            j += 1
            continue
        i_end = i + 1
        while i_end < n_left and key(left[i_end]) == left_key:
            i_end += 1
        j_end = j + 1
        while j_end < n_right and key(right[j_end]) == left_key:
            j_end += 1
        yield i, i_end, j, j_end
        i, j = i_end, j_end
