"""The shared execution driver both WCOJ baselines run on.

Generic Join (:mod:`repro.relational.wcoj`) and Leapfrog Triejoin
(:mod:`repro.relational.leapfrog`) differ only in *how they intersect the
active trie levels at inner depths*; everything else — the per-depth
iterator plan, the node-token memoization, the fused block leaves, the
C-speed emission — is common machinery and lives here, in a module neutral
to both algorithms:

* :func:`global_variable_order` validates/normalizes the variable order;
* :func:`level_plan` builds one shared
  :class:`~repro.relational.trie.SortedTrieIterator` per relation and the
  per-depth active/descend lists;
* :func:`set_intersection` is the hash-set intersection charging the
  smallest candidate set (Generic Join's mechanism, and the leaf-block
  intersection for both algorithms);
* :func:`execute_join` is the recursion itself, parameterized by the
  inner-level intersection.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import QueryError
from repro.relational.backend import current_backend
from repro.relational.operators import current_counter
from repro.relational.relation import Relation

__all__ = [
    "delta_root_ranges",
    "execute_join",
    "global_variable_order",
    "level_plan",
    "register_vectorizable",
    "set_intersection",
]

#: Intersection functions the vectorized backend is proven bit-identical
#: against.  ``execute_join`` only delegates to the block executor when both
#: the inner and the leaf intersection are registered — a caller-supplied
#: custom intersection always runs interpreted, preserving its semantics.
VECTORIZABLE_INTERSECTIONS: set = set()


def register_vectorizable(fn):
    """Mark an intersection as subsumed by the vectorized block kernels.

    All three registered intersections (hash-set, leapfrog, delta-probe)
    compute the same candidate set; the block kernel replaces them with one
    smallest-span-driver probe intersection, so the outputs — and the
    emitted totals — are identical by construction.
    """
    VECTORIZABLE_INTERSECTIONS.add(fn)
    return fn


def delta_root_ranges(
    relations: Sequence[Relation],
    order: tuple[str, ...],
    delta_index: int,
) -> list[tuple[int, int] | None] | None:
    """Root bounds restricting a delta-rule join term to the delta's key span.

    ``relations[delta_index]`` is the (tiny) delta relation of one term of
    the delta-rule expansion d(R₁⋈…⋈Rₖ) = Σᵢ R₁'⋈…⋈dRᵢ⋈…⋈Rₖ.  When the
    delta mentions the first variable of the global order, every output
    binding's ``order[0]`` code lies inside the delta's code span on that
    variable, so each relation anchored on ``order[0]`` can bound its trie
    root to that span — two binary searches per relation, the same zero-copy
    restriction the partition-parallel shards use
    (:class:`~repro.relational.trie.SortedTrieIterator` root bounds).

    Returns ``None`` (no restriction possible) when the delta is empty or
    does not contain ``order[0]``.
    """
    if not order:
        return None
    v0 = order[0]
    delta = relations[delta_index]
    if v0 not in delta.attributes:
        return None
    delta_attrs = tuple(v for v in order if v in delta.attributes)
    delta_column = delta.column_set(delta_attrs)
    if not delta_column.nrows:
        return None
    v0_column = delta_column.columns[0]
    code_lo, code_hi = v0_column[0], v0_column[-1] + 1
    ranges: list[tuple[int, int] | None] = []
    for index, relation in enumerate(relations):
        if index == delta_index or v0 not in relation.attributes:
            ranges.append(None)
            continue
        attrs = tuple(v for v in order if v in relation.attributes)
        ranges.append(relation.column_set(attrs).code_range(code_lo, code_hi))
    return ranges


def global_variable_order(
    relations: Sequence[Relation], variable_order: Sequence[str] | None
) -> tuple[str, ...]:
    """Validate and normalize the shared variable resolution order."""
    all_vars: set[str] = set()
    for relation in relations:
        all_vars |= relation.attributes
    if variable_order is None:
        return tuple(sorted(all_vars))
    order = tuple(variable_order)
    if set(order) != all_vars:
        raise QueryError(
            f"variable order {order} does not cover variables {sorted(all_vars)}"
        )
    return order


def level_plan(
    relations: Sequence[Relation],
    order: tuple[str, ...],
    root_ranges: Sequence[tuple[int, int] | None] | None = None,
) -> tuple[list, list]:
    """Per-depth iterator plan shared by both WCOJ baselines.

    Returns ``(active_at, descend_at)``: for each depth, the shared trie
    iterators whose relation contains that variable, and the subset whose
    attribute list continues past it (only those must ``open_at``/``up``
    around the recursive call — an iterator positioned on its last attribute
    contributes candidates from where it already stands).

    ``root_ranges`` optionally bounds each relation's iterator root to a row
    range of its order-restricted column set (``None`` entries mean the full
    relation) — the zero-copy shard restriction of :mod:`repro.parallel`.

    Raises:
        QueryError: if some variable appears in no relation.
    """
    entries = []
    for index, relation in enumerate(relations):
        attrs = tuple(v for v in order if v in relation.attributes)
        bounds = root_ranges[index] if root_ranges is not None else None
        entries.append((attrs, relation.trie_iterator(attrs, bounds=bounds)))
    active_at: list[list] = []
    descend_at: list[list] = []
    for var in order:
        active = [it for attrs, it in entries if var in attrs]
        if not active:
            raise QueryError(f"variable {var!r} appears in no relation")
        active_at.append(active)
        descend_at.append(
            [it for attrs, it in entries if attrs and var in attrs and attrs[-1] != var]
        )
    return active_at, descend_at


@register_vectorizable
def set_intersection(active: list, counter) -> list[int]:
    """Sorted intersection of the active iterators' child key sets.

    The per-node cost is charged as the smallest candidate set — the Generic
    Join charging argument — and the intersection itself runs at C speed on
    the cached per-node frozensets.
    """
    if len(active) == 2:
        first = active[0].child_key_set()
        second = active[1].child_key_set()
        if len(first) > len(second):
            first, second = second, first
        counter.tuples_scanned += len(first)
        return sorted(first & second)
    key_sets = [iterator.child_key_set() for iterator in active]
    smallest = min(key_sets, key=len)
    counter.tuples_scanned += len(smallest)
    return sorted(
        smallest.intersection(*[s for s in key_sets if s is not smallest])
    )


def execute_join(
    relations: Sequence[Relation],
    variable_order: Sequence[str] | None,
    name: str,
    inner_intersect,
    root_ranges: Sequence[tuple[int, int] | None] | None = None,
    leaf_intersect=None,
) -> Relation:
    """The recursion both WCOJ baselines share over the trie iterators.

    ``inner_intersect(active, counter)`` supplies the algorithm-specific
    intersection of two-or-more active levels at *inner* depths (Generic
    Join: hash-set intersection iterating the smallest candidate set;
    Leapfrog Triejoin: the §3.1 leapfrog over the sorted key runs).
    Everything else is common machinery:

    * ``active_at[d]`` / ``descend_at[d]`` from :func:`level_plan`;
    * per-depth memos keyed by the active iterators' node tokens, so each
      distinct combination of trie nodes is intersected exactly once (the
      columnar analogue of the dict-trie engines' bound-prefix memo);
    * leaf levels (nothing to descend into) always intersect whole blocks
      over the cached key sets and emit them with C-speed prefix concats,
      with the leaf fused into its parent loop and memoized by
      ``(value, pre-descent node tokens)`` — a leaf active's node is a
      function of its standing node and the value being opened, so repeated
      combinations skip the descent altogether.

    The recursion enumerates bindings in ascending code order, so the output
    rows arrive sorted and duplicate-free.  ``root_ranges`` restricts each
    relation's trie root to a row range (see :func:`level_plan`): with every
    relation containing the first variable bounded to one code range, the
    call computes exactly that shard of the join — the serial building block
    of :class:`repro.parallel.ParallelQueryEngine`.

    ``leaf_intersect`` overrides the leaf-block intersection (default: the
    whole-block hash-set intersection).  The delta-maintenance terms pass
    their probe intersection here too — a term touches each leaf node once,
    so materializing its cached key set would never pay off.

    When the ``"vectorized"`` backend is active
    (:mod:`repro.relational.backend`) and both intersections are registered
    as vectorizable, the whole recursion delegates to the numpy block
    executor (:mod:`repro.relational.vectorized`) — same sorted code rows,
    same emitted totals, block-sized scan charges.
    """
    order = global_variable_order(relations, variable_order)
    if (
        (inner_intersect in VECTORIZABLE_INTERSECTIONS)
        and (leaf_intersect is None or leaf_intersect in VECTORIZABLE_INTERSECTIONS)
        and current_backend() == "vectorized"
    ):
        from repro.relational.vectorized import vectorized_execute_join

        return vectorized_execute_join(relations, order, name, root_ranges)
    active_at, descend_at = level_plan(relations, order, root_ranges)

    counter = current_counter()
    out_rows: list[tuple] = []
    binding: list[int] = []
    last = len(order) - 1
    memos: list[dict] = [{} for _ in order]
    if leaf_intersect is None:
        leaf_intersect = set_intersection

    def matches_at(depth: int) -> list[int]:
        active = active_at[depth]
        if len(active) == 1:
            candidates = active[0].child_keys()
            counter.tuples_scanned += len(candidates)
            return candidates
        if len(active) == 2:
            # Explicit pair instead of tuple(generator): same value, but the
            # generator protocol costs ~2-3x on this per-node hot path.
            token = (active[0].node_token(), active[1].node_token())
        else:
            token = tuple(iterator.node_token() for iterator in active)
        memo = memos[depth]
        cached = memo.get(token)
        if cached is not None:
            counter.tuples_scanned += len(cached)
            return cached
        if depth == last:
            matched = leaf_intersect(active, counter)
        else:
            matched = inner_intersect(active, counter)
        memo[token] = matched
        return matched

    def leaf_block(leaf_active: list) -> list[int]:
        if len(leaf_active) == 1:
            matched = leaf_active[0].child_keys()
            counter.tuples_scanned += len(matched)
            return matched
        return leaf_intersect(leaf_active, counter)

    def recurse(depth: int) -> None:
        matched = matches_at(depth)
        if depth == last:
            prefix = tuple(binding)
            out_rows.extend(map(prefix.__add__, zip(matched)))
            counter.tuples_emitted += len(matched)
            return
        descend = descend_at[depth]
        if depth + 1 == last:
            base = tuple(binding)
            leaf_active = active_at[last]
            static_tokens = tuple(it.node_token() for it in leaf_active)
            memo = memos[last]
            for value in matched:
                key = (value,) + static_tokens
                leaf_matched = memo.get(key)
                if leaf_matched is None:
                    for iterator in descend:
                        iterator.open_at(value)
                    leaf_matched = leaf_block(leaf_active)
                    for iterator in descend:
                        iterator.up()
                    memo[key] = leaf_matched
                else:
                    counter.tuples_scanned += len(leaf_matched)
                prefix = base + (value,)
                out_rows.extend(map(prefix.__add__, zip(leaf_matched)))
                counter.tuples_emitted += len(leaf_matched)
            return
        for value in matched:
            for iterator in descend:
                iterator.open_at(value)
            binding.append(value)
            recurse(depth + 1)
            binding.pop()
            for iterator in descend:
                iterator.up()

    if last >= 0:
        recurse(0)
    else:
        out_rows.append(())
        counter.tuples_emitted += 1
    return Relation.from_codes(name, order, out_rows, presorted=True, distinct=True)
