"""CSV import/export for relations and databases.

Plain-text interchange so the CLI (``python -m repro``) and downstream users
can run the paper's machinery on their own data.  One CSV file per relation:
the header row is the schema, every following row a tuple.  Values are
integer-coerced when the whole column parses as integers (the bounds and
PANDA are domain-agnostic; coercion only normalizes equality).
"""

from __future__ import annotations

import csv
from pathlib import Path
from repro.exceptions import SchemaError
from repro.relational.database import Database
from repro.relational.relation import Relation

__all__ = ["load_relation_csv", "save_relation_csv", "load_database_dir"]


def _coerce_columns(rows: list[list[str]]) -> list[tuple]:
    """Convert columns that are all-integer to ints, per column."""
    if not rows:
        return []
    width = len(rows[0])
    numeric = [True] * width
    for row in rows:
        for i, value in enumerate(row):
            if numeric[i]:
                try:
                    int(value)
                except ValueError:
                    numeric[i] = False
    return [
        tuple(int(v) if numeric[i] else v for i, v in enumerate(row))
        for row in rows
    ]


def load_relation_csv(
    path: str | Path, name: str | None = None, delimiter: str = ","
) -> Relation:
    """Read one relation from a CSV file (header row = schema).

    Args:
        path: the CSV file.
        name: relation name; defaults to the file stem.
        delimiter: CSV delimiter.

    Raises:
        SchemaError: on an empty file or ragged rows.
    """
    path = Path(path)
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = [row for row in reader if row]
    if not rows:
        raise SchemaError(f"{path} is empty (need a header row)")
    header = tuple(column.strip() for column in rows[0])
    body = rows[1:]
    for row in body:
        if len(row) != len(header):
            raise SchemaError(
                f"{path}: row {row} does not match header {header}"
            )
    return Relation(name or path.stem, header, _coerce_columns(body))


def save_relation_csv(
    relation: Relation, path: str | Path, delimiter: str = ","
) -> None:
    """Write a relation as CSV (header row = schema, sorted rows)."""
    path = Path(path)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(relation.schema)
        for row in sorted(relation, key=repr):
            writer.writerow(row)


def load_database_dir(
    directory: str | Path, pattern: str = "*.csv", delimiter: str = ","
) -> Database:
    """Load every matching CSV in a directory as one database.

    Relation names are the file stems (``R12.csv`` -> relation ``R12``).
    """
    directory = Path(directory)
    relations = [
        load_relation_csv(path, delimiter=delimiter)
        for path in sorted(directory.glob(pattern))
    ]
    if not relations:
        raise SchemaError(f"no {pattern} files in {directory}")
    return Database(relations)
