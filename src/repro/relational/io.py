"""CSV import/export for relations and databases.

Plain-text interchange so the CLI (``python -m repro``) and downstream users
can run the paper's machinery on their own data.  One CSV file per relation:
the header row is the schema, every following row a tuple.  Values are
integer-coerced when the whole column parses as integers (the bounds and
PANDA are domain-agnostic; coercion only normalizes equality).

Ingestion streams straight into dictionary codes: each cell is interned into
a per-column staging dictionary as it is read, so the loader holds one code
tuple per row plus one string per *distinct* value — never an all-string row
list.  After the stream ends, each column's distinct values are coerced (or
not) in one pass and translated into the schema attributes' shared
:class:`~repro.relational.columns.Dictionary` codes, and the relation is
built directly from the final code tuples.
"""

from __future__ import annotations

import csv
from pathlib import Path
from repro.exceptions import SchemaError
from repro.relational.columns import Dictionary
from repro.relational.database import Database
from repro.relational.relation import Relation

__all__ = [
    "load_relation_csv",
    "save_relation_csv",
    "load_database_dir",
    "load_changes_csv",
    "iter_change_feed",
    "load_change_feed",
    "save_changes_csv",
]


def load_relation_csv(
    path: str | Path, name: str | None = None, delimiter: str = ","
) -> Relation:
    """Read one relation from a CSV file (header row = schema).

    Args:
        path: the CSV file.
        name: relation name; defaults to the file stem.
        delimiter: CSV delimiter.

    Raises:
        SchemaError: on an empty file or ragged rows.
    """
    path = Path(path)
    header: tuple[str, ...] | None = None
    staging: list[dict[str, int]] = []
    distinct: list[list[str]] = []
    code_rows: list[tuple[int, ...]] = []
    with open(path, newline="") as handle:
        for row in csv.reader(handle, delimiter=delimiter):
            if not row:
                continue
            if header is None:
                header = tuple(column.strip() for column in row)
                staging = [{} for _ in header]
                distinct = [[] for _ in header]
                continue
            if len(row) != len(header):
                raise SchemaError(
                    f"{path}: row {row} does not match header {header}"
                )
            coded = []
            for i, cell in enumerate(row):
                column = staging[i]
                code = column.get(cell)
                if code is None:
                    code = len(distinct[i])
                    column[cell] = code
                    distinct[i].append(cell)
                coded.append(code)
            code_rows.append(tuple(coded))
    if header is None:
        raise SchemaError(f"{path} is empty (need a header row)")

    # Per column: coerce the distinct values to int when they all parse,
    # then translate staging codes into the attribute's shared dictionary.
    translations: list[list[int]] = []
    for attr, values in zip(header, distinct):
        coerced: list[object] = []
        numeric = True
        for value in values:
            try:
                coerced.append(int(value))
            except ValueError:
                numeric = False
                break
        final_values = coerced if numeric else values
        encode = Dictionary.of(attr).encode
        translations.append([encode(v) for v in final_values])

    rows = [
        tuple(translation[code] for translation, code in zip(translations, row))
        for row in code_rows
    ]
    return Relation.from_codes(name or path.stem, header, rows)


def save_relation_csv(
    relation: Relation, path: str | Path, delimiter: str = ","
) -> None:
    """Write a relation as CSV (header row = schema, sorted rows)."""
    path = Path(path)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(relation.schema)
        for row in sorted(relation, key=repr):
            writer.writerow(row)


def load_changes_csv(
    path: str | Path, delimiter: str = ","
) -> tuple[tuple[str, ...], list[tuple], list[tuple]]:
    """Read one relation's change feed from a CSV file.

    The change-feed format is the relation CSV prefixed with an ``op``
    column: the header is ``op,<attr>,...`` and every row starts with ``+``
    (insert) or ``-`` (delete) followed by the tuple.  Values get the same
    whole-column integer coercion as :func:`load_relation_csv`, so a feed
    against an integer-loaded relation matches its values exactly.

    Returns ``(schema, inserts, deletes)`` — validation against the target
    relation (absent deletes, cancellation) happens in
    :class:`repro.incremental.SignedDelta`, not here.
    """
    path = Path(path)
    header: tuple[str, ...] | None = None
    ops: list[str] = []
    raw_rows: list[tuple[str, ...]] = []
    with open(path, newline="") as handle:
        for row in csv.reader(handle, delimiter=delimiter):
            if not row:
                continue
            if header is None:
                header = tuple(column.strip() for column in row)
                if not header or header[0] != "op":
                    raise SchemaError(
                        f"{path}: change feed header must start with 'op', "
                        f"got {header}"
                    )
                header = header[1:]
                continue
            if len(row) != len(header) + 1:
                raise SchemaError(
                    f"{path}: row {row} does not match header {('op',) + header}"
                )
            op = row[0].strip()
            if op not in ("+", "-"):
                raise SchemaError(
                    f"{path}: op column must be '+' or '-', got {op!r}"
                )
            ops.append(op)
            raw_rows.append(tuple(row[1:]))
    if header is None:
        raise SchemaError(f"{path} is empty (need an op,... header row)")

    # Whole-column integer coercion, matching load_relation_csv.
    columns: list[list[object]] = []
    for i in range(len(header)):
        values: list[object] = [row[i] for row in raw_rows]
        try:
            values = [int(v) for v in values]
        except ValueError:
            pass
        columns.append(values)
    inserts: list[tuple] = []
    deletes: list[tuple] = []
    for j, op in enumerate(ops):
        row = tuple(column[j] for column in columns)
        (inserts if op == "+" else deletes).append(row)
    return header, inserts, deletes


def save_changes_csv(
    schema,
    inserts,
    deletes,
    path: str | Path,
    delimiter: str = ",",
) -> None:
    """Write a change feed (inverse of :func:`load_changes_csv`)."""
    path = Path(path)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(("op",) + tuple(schema))
        for row in inserts:
            writer.writerow(("+",) + tuple(row))
        for row in deletes:
            writer.writerow(("-",) + tuple(row))


def iter_change_feed(
    directory: str | Path, pattern: str = "*.changes.csv", delimiter: str = ","
):
    """Yield change-feed batches from a directory, in sorted (batch) order.

    Feed files are named ``<relation>.changes.csv`` (or anything matching
    ``pattern`` whose stem's first dot-component names the relation); each
    file is one batch against that relation, yielded as
    ``(relation_name, schema, inserts, deletes)``.

    Lazy: one file is parsed per step, so a long feed never materializes
    up front — ``repro serve`` applies (or sheds) batch *k* before batch
    *k+1* is even read, keeping memory flat at one batch.  The directory
    listing is snapshotted at the first step.
    """
    directory = Path(directory)
    for path in sorted(directory.glob(pattern)):
        name = path.name.split(".", 1)[0]
        schema, inserts, deletes = load_changes_csv(path, delimiter=delimiter)
        yield name, schema, inserts, deletes


def load_change_feed(
    directory: str | Path, pattern: str = "*.changes.csv", delimiter: str = ","
) -> list[tuple[str, tuple[str, ...], list[tuple], list[tuple]]]:
    """Every change-feed batch, materialized (see :func:`iter_change_feed`)."""
    return list(iter_change_feed(directory, pattern=pattern, delimiter=delimiter))


def load_database_dir(
    directory: str | Path, pattern: str = "*.csv", delimiter: str = ","
) -> Database:
    """Load every matching CSV in a directory as one database.

    Relation names are the file stems (``R12.csv`` -> relation ``R12``).
    """
    directory = Path(directory)
    relations = [
        load_relation_csv(path, delimiter=delimiter)
        for path in sorted(directory.glob(pattern))
    ]
    if not relations:
        raise SchemaError(f"no {pattern} files in {directory}")
    return Database(relations)
