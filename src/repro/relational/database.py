"""Database instances: named relations + constraint verification.

A :class:`Database` maps atom names to :class:`~repro.relational.relation.Relation`
objects and knows how to check that it *satisfies* a
:class:`~repro.core.constraints.ConstraintSet` (every constraint has a guard
among the relations, Def. 2.10) and how to *extract* the tightest degree
constraints it actually satisfies (§2.2: "degree constraints come from more
refined statistics of the input relations").
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.constraints import ConstraintSet, DegreeConstraint
from repro.core.hypergraph import Hypergraph
from repro.exceptions import SchemaError
from repro.relational.relation import Relation

__all__ = ["Database"]


class Database:
    """A named collection of relations (one per atom)."""

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: dict[str, Relation] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: Relation) -> None:
        if relation.name in self._relations:
            raise SchemaError(f"duplicate relation name {relation.name!r}")
        self._relations[relation.name] = relation

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no relation named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> list[str]:
        return list(self._relations)

    def updated(self, replacements: Iterable[Relation]) -> "Database":
        """A new database with some relations replaced (same name order).

        The change-feed primitive of the incremental subsystem
        (:mod:`repro.incremental`): each replacement swaps in for the
        resident relation of the same name, every other relation is shared
        untouched, and the original database is never mutated — callers
        holding bindings or digests keyed on the old instance stay valid.

        Raises:
            SchemaError: if a replacement names a relation not present.
        """
        by_name = {}
        for relation in replacements:
            if relation.name not in self._relations:
                raise SchemaError(
                    f"cannot replace unknown relation {relation.name!r}"
                )
            by_name[relation.name] = relation
        fresh = Database()
        for name, relation in self._relations.items():
            fresh._relations[name] = by_name.get(name, relation)
        return fresh

    @property
    def max_relation_size(self) -> int:
        """``N`` of Eq. (27): the largest materialized relation size."""
        return max((len(r) for r in self._relations.values()), default=0)

    def total_tuples(self) -> int:
        return sum(len(r) for r in self._relations.values())

    # -- constraints ------------------------------------------------------------------

    def satisfies(self, constraints: ConstraintSet) -> bool:
        """True if every constraint has a guard among the relations."""
        return all(self.find_guard(c) is not None for c in constraints)

    def find_guard(self, constraint: DegreeConstraint) -> Relation | None:
        """A relation guarding ``constraint``, or None.

        Prefers the relation whose attribute set matches ``Y`` exactly, then
        any superset relation with a satisfying degree.
        """
        candidates = sorted(
            (
                r
                for r in self._relations.values()
                if constraint.y <= r.attributes
            ),
            key=lambda r: (len(r.attributes), r.name),
        )
        for relation in candidates:
            if relation.guards(constraint):
                return relation
        return None

    def extract_cardinalities(self) -> ConstraintSet:
        """The cardinality constraints ``|R| <= len(R)`` of every relation."""
        return ConstraintSet(
            DegreeConstraint.make((), r.schema, max(1, len(r)))
            for r in self._relations.values()
        )

    def extract_degree_constraints(
        self, include_projections: bool = True
    ) -> ConstraintSet:
        """The tightest degree constraints each relation satisfies.

        For every relation ``R`` and every pair ``X ⊂ Y ⊆ attrs(R)`` (or just
        cardinalities when ``include_projections`` is False) emit
        ``(X, Y, deg_R(Y|X))``; the per-relation profiling is
        :func:`repro.relational.stats.relation_statistics` — pairs enumerated
        on the mask kernel, degrees as run scans over sorted code columns.
        """
        from repro.relational.stats import relation_statistics

        constraints: list[DegreeConstraint] = []
        for relation in self._relations.values():
            attrs = tuple(sorted(relation.attributes))
            constraints.append(
                DegreeConstraint.make((), attrs, max(1, len(relation)))
            )
            if include_projections:
                constraints.extend(relation_statistics(relation))
        return ConstraintSet(constraints)

    # -- hypergraph view -----------------------------------------------------------------

    def hypergraph(self) -> Hypergraph:
        """The multi-hypergraph whose edges are the relations' attribute sets."""
        return Hypergraph.from_edges(
            [tuple(sorted(r.attributes)) for r in self._relations.values()]
        )
