"""File-backed columnar storage: persisted database directories.

The out-of-core twin of :mod:`repro.relational.io`: where the CSV loader
streams *values* into heap relations, this module persists and reopens the
engine's own storage format — the sorted, dictionary-encoded code columns of
:class:`~repro.relational.columns.ColumnSet` — as flat files the OS pages in
on demand.  Nothing above the storage layer needs the data on a heap: every
join algorithm, shard restriction, and signed-splice merge consumes the
columns through the sequence/buffer protocols, which an ``mmap``-backed
``memoryview(...).cast('q')`` satisfies bit-for-bit (MonetDB/X100 lineage;
the PODS'17 algorithms only ever walk sorted integer columns).

A *persisted database directory* looks like::

    <dir>/
        manifest.json           format, per-relation schema/nrows/digest,
                                per-attribute dictionary metadata
        columns/<digest>.c<i>   one fixed-width little-endian int64 file per
                                column of each relation's canonical
                                (schema-order) column set
        dicts/<attr>.json       the attribute's interned values, code order

Artifacts are **content-addressed** by the relation's existing
:meth:`~repro.relational.columns.ColumnSet.content_digest` — the digest *is*
the filename stem, so the manifest digest can seed the in-memory digest
cache at open (no rescan), the parallel pool can ship paths + digests
instead of buffers (workers ``mmap`` the named artifacts), and incremental
compaction can drop a fresh base next to the old one without invalidating
anything.

Entry points:

* :func:`save_database_dir` — persist a database (beside the CSV
  :func:`~repro.relational.io.load_database_dir`);
* :func:`open_database_dir` — reopen it with ``mmap``-backed columns and
  lazily hydrated dictionaries (a cold start touches no column bytes);
* :class:`ColumnStore` — the content-addressed ``columns/`` directory, with
  a streaming :meth:`~ColumnStore.writer` for ingests too large to sort (or
  even hold) in one heap.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import sys
from array import array
from pathlib import Path
from typing import Iterable, Sequence

from repro.exceptions import StorageError
from repro.relational.columns import ColumnSet, Dictionary
from repro.relational.database import Database
from repro.relational.relation import Relation

__all__ = [
    "ColumnBacking",
    "ColumnFileWriter",
    "ColumnStore",
    "LazyDictionary",
    "load_dictionary_file",
    "open_database_dir",
    "open_file_columns",
    "read_manifest",
    "save_database_dir",
    "write_dictionary_file",
    "write_manifest",
]

#: Manifest format tag; bump on any incompatible layout change.
MANIFEST_FORMAT = "repro-db/1"
MANIFEST_NAME = "manifest.json"
COLUMNS_SUBDIR = "columns"
DICTS_SUBDIR = "dicts"
#: Chunk size for streaming reads (digest verification, writer finalize).
_READ_CHUNK = 1 << 20


def _require_little_endian() -> None:
    if sys.byteorder != "little":
        raise StorageError(
            "persisted database directories are little-endian int64; this "
            "host is big-endian"
        )


def _column_view(column) -> memoryview:
    """A C-contiguous 8-byte-item view of one column buffer.

    Accepts ``array('q')``, int64 numpy arrays, and ``'q'``-cast
    memoryviews — everything the engine hands around as a column.
    """
    view = memoryview(column)
    if view.itemsize != 8 or not view.c_contiguous or view.ndim != 1:
        raise StorageError(
            "column buffers must be contiguous 64-bit integer sequences "
            "(array('q') or int64 ndarray)"
        )
    return view


class ColumnBacking:
    """Where a file-backed column set's bytes live on disk.

    ``mmaps`` holds the open maps (empty for sets that were *written* from
    heap columns rather than opened from files) — the backing keeps them
    alive for exactly as long as the column set's views need them.
    """

    __slots__ = ("digest", "paths", "nrows", "mmaps")

    def __init__(
        self,
        digest: str | None,
        paths: tuple[str, ...],
        nrows: int,
        mmaps: tuple = (),
    ) -> None:
        self.digest = digest
        self.paths = paths
        self.nrows = nrows
        self.mmaps = mmaps

    def __repr__(self) -> str:
        return (
            f"ColumnBacking({self.digest and self.digest[:12]}..., "
            f"{len(self.paths)} file(s), {self.nrows} rows)"
        )


def open_file_columns(
    paths: Sequence[str | Path], nrows: int, digest: str | None = None
) -> tuple[tuple, ColumnBacking]:
    """``mmap`` the named column files read-only as ``'q'``-cast views.

    Returns ``(columns, backing)``; the backing object owns the maps.  File
    sizes are validated against ``nrows`` up front — a truncated artifact
    fails here, not mid-join.
    """
    _require_little_endian()
    paths = tuple(Path(p) for p in paths)
    expected = nrows * 8
    columns: list = []
    maps: list = []
    for path in paths:
        try:
            size = path.stat().st_size
        except OSError as error:
            raise StorageError(f"missing column artifact {path}") from error
        if size != expected:
            raise StorageError(
                f"column artifact {path} holds {size} bytes, expected "
                f"{expected} ({nrows} rows x 8)"
            )
        if nrows == 0:
            columns.append(array("q"))
            continue
        with open(path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        maps.append(mapped)
        columns.append(memoryview(mapped).cast("q"))
    backing = ColumnBacking(
        digest, tuple(str(p) for p in paths), nrows, tuple(maps)
    )
    return tuple(columns), backing


class ColumnFileWriter:
    """Stream one relation's sorted code columns into digest-named files.

    The out-of-core ingest path: blocks of already-sorted, duplicate-free
    rows (as per-attribute int64 buffers) append to per-column temp files —
    the writer never holds more than one block — and :meth:`finalize`
    streams the temp files through one SHA-1 (the exact
    :meth:`~repro.relational.columns.ColumnSet.content_digest` byte stream)
    before renaming them into the content-addressed store.  Blocks must
    arrive in ascending row order; the block boundary is validated (last
    row of one block < first row of the next), the *interior* of a block is
    the caller's contract, exactly like ``presorted=True`` construction.
    """

    def __init__(self, store: "ColumnStore", attrs: Sequence[str]) -> None:
        _require_little_endian()
        self.store = store
        self.attrs = tuple(attrs)
        if not self.attrs:
            raise StorageError("cannot stream a nullary relation to files")
        store.root.mkdir(parents=True, exist_ok=True)
        token = f"tmp-{os.getpid()}-{id(self):x}"
        self._temp_paths = tuple(
            store.root / f"{token}.c{i}" for i in range(len(self.attrs))
        )
        self._handles = [open(path, "wb") for path in self._temp_paths]
        self._nrows = 0
        self._last_row: tuple | None = None
        self._result: tuple | None = None

    @property
    def nrows(self) -> int:
        return self._nrows

    def append_block(self, columns: Sequence) -> None:
        """Append one sorted block (per-attribute aligned int64 buffers)."""
        if self._handles is None:
            raise StorageError("writer already finalized")
        views = [_column_view(column) for column in columns]
        if len(views) != len(self.attrs):
            raise StorageError(
                f"block has {len(views)} columns, schema {self.attrs} "
                f"expects {len(self.attrs)}"
            )
        length = len(views[0])
        if any(len(view) != length for view in views):
            raise StorageError("block columns must be equal-length")
        if length == 0:
            return
        first = tuple(int(view[0]) for view in views)
        if self._last_row is not None and first <= self._last_row:
            raise StorageError(
                f"blocks must ascend: first row {first} does not follow "
                f"{self._last_row}"
            )
        self._last_row = tuple(int(view[-1]) for view in views)
        for handle, view in zip(self._handles, views):
            handle.write(view)
        self._nrows += length

    def finalize(self) -> tuple[str, tuple[str, ...], int]:
        """Seal the artifact: hash, rename, return ``(digest, paths, nrows)``."""
        if self._result is not None:
            return self._result
        if self._handles is None:
            raise StorageError("writer already aborted")
        for handle in self._handles:
            handle.close()
        self._handles = None
        hasher = hashlib.sha1()
        hasher.update(",".join(self.attrs).encode())
        for path in self._temp_paths:
            with open(path, "rb") as handle:
                while True:
                    chunk = handle.read(_READ_CHUNK)
                    if not chunk:
                        break
                    hasher.update(chunk)
        digest = hasher.hexdigest()
        paths = self.store.paths(digest, len(self.attrs))
        for temp, final in zip(self._temp_paths, paths):
            os.replace(temp, final)
        self._result = (digest, tuple(str(p) for p in paths), self._nrows)
        return self._result

    def abort(self) -> None:
        """Discard the partial artifact (close + unlink the temp files)."""
        if self._handles is not None:
            for handle in self._handles:
                handle.close()
            self._handles = None
        if self._result is None:
            for temp in self._temp_paths:
                try:
                    os.unlink(temp)
                except OSError:
                    pass

    def __enter__(self) -> "ColumnFileWriter":
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        if exc_type is not None:
            self.abort()


class ColumnStore:
    """The content-addressed ``columns/`` directory of a database dir.

    Artifact naming is pure content addressing: relation ``R``'s canonical
    column set with digest ``d`` lives in ``<root>/d.c0, d.c1, ...`` — so
    writing is idempotent, compaction never overwrites the artifact a live
    pool baseline may still be mapping, and "is this relation already
    persisted?" is a stat call.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def paths(self, digest: str, arity: int) -> tuple[Path, ...]:
        """The column-file paths of the ``digest`` artifact."""
        return tuple(
            self.root / f"{digest}.c{i}" for i in range(arity)
        )

    def contains(self, digest: str, arity: int) -> bool:
        return all(path.is_file() for path in self.paths(digest, arity))

    def writer(self, attrs: Sequence[str]) -> ColumnFileWriter:
        """A streaming writer for one relation's sorted code columns."""
        return ColumnFileWriter(self, attrs)

    def ensure(self, column_set: ColumnSet) -> str:
        """Persist ``column_set`` (idempotently); bind it to the artifact.

        Returns the content digest naming the artifact.  The column set
        comes back file-*bound* — its :attr:`~ColumnSet.backing` carries the
        paths — so the parallel pool ships it as paths from here on; the
        in-heap columns it already holds stay untouched.
        """
        _require_little_endian()
        digest = column_set.content_digest()
        arity = len(column_set.attrs)
        paths = self.paths(digest, arity)
        if not self.contains(digest, arity):
            self.root.mkdir(parents=True, exist_ok=True)
            token = f"tmp-{os.getpid()}-{id(column_set):x}"
            columns = column_set.columns
            for position, (column, final) in enumerate(zip(columns, paths)):
                temp = self.root / f"{token}.c{position}"
                with open(temp, "wb") as handle:
                    handle.write(_column_view(column))
                os.replace(temp, final)
        if column_set.backing is None:
            column_set.attach_backing(
                ColumnBacking(
                    digest, tuple(str(p) for p in paths), column_set.nrows
                ),
                digest,
            )
        return digest

    def open_column_set(
        self, attrs: Sequence[str], nrows: int, digest: str, verify: bool = False
    ) -> ColumnSet:
        """The ``digest`` artifact as an ``mmap``-backed :class:`ColumnSet`."""
        attrs = tuple(attrs)
        paths = self.paths(digest, len(attrs))
        if verify:
            self.verify_digest(attrs, digest)
        columns, backing = open_file_columns(paths, nrows, digest=digest)
        column_set = ColumnSet.from_columns(attrs, columns)
        column_set.attach_backing(backing, digest)
        return column_set

    def verify_digest(self, attrs: Sequence[str], digest: str) -> None:
        """Re-hash the artifact bytes and compare against ``digest``."""
        hasher = hashlib.sha1()
        hasher.update(",".join(attrs).encode())
        for path in self.paths(digest, len(attrs)):
            try:
                with open(path, "rb") as handle:
                    while True:
                        chunk = handle.read(_READ_CHUNK)
                        if not chunk:
                            break
                        hasher.update(chunk)
            except OSError as error:
                raise StorageError(f"missing column artifact {path}") from error
        actual = hasher.hexdigest()
        if actual != digest:
            raise StorageError(
                f"column artifact {digest} re-hashes to {actual}: the "
                f"persisted bytes were corrupted"
            )


# -- dictionaries -------------------------------------------------------------------


def write_dictionary_file(path: str | Path, values: Iterable) -> int:
    """Persist one attribute's interned values (code order) as a JSON array.

    Streams in bounded batches — an out-of-core ingest can pass a generator
    over a domain that never exists as one Python list.  Values must be
    ``int`` or ``str`` (the two types CSV ingestion produces); anything else
    does not round-trip JSON bit-for-bit and is rejected.

    Returns the value count.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(path.name + f".tmp-{os.getpid()}")
    count = 0
    try:
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write("[")
            batch: list[str] = []
            for value in values:
                kind = type(value)
                if kind is int:
                    batch.append(str(value))
                elif kind is str:
                    batch.append(json.dumps(value))
                else:
                    raise StorageError(
                        f"dictionary value {value!r} ({kind.__name__}) is "
                        f"not persistable; only int and str survive a JSON "
                        f"round trip exactly"
                    )
                count += 1
                if len(batch) >= 8192:
                    handle.write(("," if count > len(batch) else "")
                                 + ",".join(batch))
                    batch.clear()
            if batch:
                handle.write(("," if count > len(batch) else "")
                             + ",".join(batch))
            handle.write("]")
        os.replace(temp, path)
    except BaseException:
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise
    return count


def load_dictionary_file(path: str | Path) -> list:
    """Load one attribute's persisted values (inverse of the writer)."""
    path = Path(path)
    try:
        with open(path, encoding="utf-8") as handle:
            values = json.load(handle)
    except OSError as error:
        raise StorageError(f"cannot read dictionary file {path}") from error
    except json.JSONDecodeError as error:
        raise StorageError(f"corrupt dictionary file {path}: {error}") from error
    if not isinstance(values, list):
        raise StorageError(f"dictionary file {path} is not a JSON array")
    return values


class LazyDictionary(Dictionary):
    """A shared per-attribute dictionary hydrated from its file on demand.

    Installed into the :class:`Dictionary` registry by
    :func:`open_database_dir`: the join pipeline runs entirely on codes, so
    a cold start that never decodes pays nothing for million-value
    dictionaries.  The first ``encode``/``decode``/``values`` access loads
    the persisted value list; new values interned afterwards append on top
    of the persisted code space exactly like ordinary ingestion.
    """

    __slots__ = ("_source", "_count", "_hydrated")

    def __init__(self, attribute: str, source: str | Path, count: int) -> None:
        super().__init__(attribute)
        self._source = Path(source)
        self._count = int(count)
        self._hydrated = False

    def _hydrate(self) -> None:
        if self._hydrated:
            return
        stored = load_dictionary_file(self._source)
        if len(stored) < self._count:
            raise StorageError(
                f"dictionary file {self._source} holds {len(stored)} "
                f"values, manifest promises {self._count}"
            )
        codes = {value: code for code, value in enumerate(stored)}
        if len(codes) != len(stored):
            raise StorageError(
                f"dictionary file {self._source} repeats a value"
            )
        self._codes = codes
        self._values = stored
        self._hydrated = True

    def encode(self, value) -> int:
        self._hydrate()
        return Dictionary.encode(self, value)

    def encode_existing(self, value) -> int | None:
        self._hydrate()
        return Dictionary.encode_existing(self, value)

    def decode(self, code: int):
        self._hydrate()
        return Dictionary.decode(self, code)

    @property
    def values(self) -> list:
        self._hydrate()
        return self._values

    def __len__(self) -> int:
        return len(self._values) if self._hydrated else self._count

    def __repr__(self) -> str:
        state = "hydrated" if self._hydrated else "lazy"
        return f"LazyDictionary({self.attribute!r}: {len(self)} values, {state})"


def _install_dictionary(attribute: str, source: Path, count: int) -> None:
    """Bind ``attribute``'s registry slot to the persisted dictionary.

    An empty (or absent) slot takes a :class:`LazyDictionary`.  A non-empty
    dictionary is compatible exactly when the persisted values are a prefix
    of its interned values — then the artifact's codes are already valid —
    with a shorter live dictionary extended in place.  Anything else means
    the process interned conflicting codes for this attribute, and joining
    the two code spaces would silently mismatch values: fail loudly.
    """
    existing = Dictionary._registry.get(attribute)
    if (
        isinstance(existing, LazyDictionary)
        and not existing._hydrated
        and existing._source == source
    ):
        return
    if existing is None or len(existing) == 0:
        Dictionary._registry[attribute] = LazyDictionary(
            attribute, source, count
        )
        return
    stored = load_dictionary_file(source)
    current = existing.values
    prefix = current[: len(stored)]
    if prefix != stored[: len(prefix)]:
        raise StorageError(
            f"attribute {attribute!r} already holds interned values that "
            f"conflict with the persisted dictionary {source}; open the "
            f"database at a workload boundary (after "
            f"Dictionary.reset_registry()) or in a fresh process"
        )
    if len(current) < len(stored):
        encode = existing.encode
        for value in stored[len(current):]:
            encode(value)


# -- manifest -----------------------------------------------------------------------


def write_manifest(
    directory: str | Path, relations: dict, attributes: dict
) -> Path:
    """Write the directory manifest (atomically).

    ``relations`` maps name to ``{"schema": [...], "nrows": n, "digest": d}``;
    ``attributes`` maps attribute to ``{"count": n, "file": relpath}``.
    """
    directory = Path(directory)
    manifest = {
        "format": MANIFEST_FORMAT,
        "byte_order": "little",
        "relations": relations,
        "attributes": attributes,
    }
    path = directory / MANIFEST_NAME
    temp = path.with_name(path.name + f".tmp-{os.getpid()}")
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(temp, path)
    return path


def read_manifest(directory: str | Path) -> dict:
    """Read and validate a directory manifest.

    Raises :class:`StorageError` on anything short of a well-formed,
    current-format manifest — a truncated or hand-edited file fails here
    with a message naming the defect, never as a downstream type error.
    """
    directory = Path(directory)
    path = directory / MANIFEST_NAME
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise StorageError(
            f"{directory} is not a persisted database directory "
            f"(no readable {MANIFEST_NAME})"
        ) from error
    try:
        manifest = json.loads(text)
    except json.JSONDecodeError as error:
        raise StorageError(f"corrupt manifest {path}: {error}") from error
    if not isinstance(manifest, dict):
        raise StorageError(f"corrupt manifest {path}: not a JSON object")
    if manifest.get("format") != MANIFEST_FORMAT:
        raise StorageError(
            f"manifest {path} has format {manifest.get('format')!r}, "
            f"this build reads {MANIFEST_FORMAT!r}"
        )
    if manifest.get("byte_order") != "little":
        raise StorageError(
            f"manifest {path} declares byte order "
            f"{manifest.get('byte_order')!r}; only little-endian artifacts "
            f"are supported"
        )
    relations = manifest.get("relations")
    attributes = manifest.get("attributes")
    if not isinstance(relations, dict) or not isinstance(attributes, dict):
        raise StorageError(
            f"manifest {path} is missing its relations/attributes tables"
        )
    for name, meta in relations.items():
        if (
            not isinstance(meta, dict)
            or not isinstance(meta.get("schema"), list)
            or not all(isinstance(a, str) for a in meta["schema"])
            or not isinstance(meta.get("nrows"), int)
            or meta["nrows"] < 0
            or not isinstance(meta.get("digest"), str)
        ):
            raise StorageError(
                f"manifest {path}: relation {name!r} entry is malformed "
                f"(need schema/nrows/digest)"
            )
    for attribute, meta in attributes.items():
        if (
            not isinstance(meta, dict)
            or not isinstance(meta.get("count"), int)
            or meta["count"] < 0
        ):
            raise StorageError(
                f"manifest {path}: attribute {attribute!r} entry is "
                f"malformed (need count)"
            )
    return manifest


def _dictionary_filename(attribute: str) -> str:
    if not attribute or any(c in attribute for c in "/\\\0"):
        raise StorageError(
            f"attribute name {attribute!r} cannot name a dictionary file"
        )
    return f"{DICTS_SUBDIR}/{attribute}.json"


# -- save / open --------------------------------------------------------------------


def save_database_dir(database: Database, directory: str | Path) -> Path:
    """Persist every relation of ``database`` into a database directory.

    The file-backed twin of the CSV loader's directory convention: each
    relation's canonical column set becomes a digest-named column artifact,
    each attribute's dictionary one JSON value file, and the manifest ties
    them together.  Saving is idempotent per content (unchanged relations
    re-use their artifacts) and leaves every saved relation *bound* to the
    store, so a parallel bind right after a save already ships paths.
    """
    _require_little_endian()
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    store = ColumnStore(directory / COLUMNS_SUBDIR)
    relations_meta: dict = {}
    dictionaries: dict[str, Dictionary] = {}
    for relation in sorted(database, key=lambda r: r.name):
        if not relation.schema:
            raise StorageError(
                f"cannot persist nullary relation {relation.name!r}"
            )
        column_set = relation.column_set(relation.schema)
        digest = store.ensure(column_set)
        relations_meta[relation.name] = {
            "schema": list(relation.schema),
            "nrows": column_set.nrows,
            "digest": digest,
        }
        for attribute, dictionary in zip(
            relation.schema, relation.dictionaries
        ):
            dictionaries[attribute] = dictionary
        relation.attach_store(store)
    attributes_meta: dict = {}
    for attribute, dictionary in sorted(dictionaries.items()):
        filename = _dictionary_filename(attribute)
        count = write_dictionary_file(directory / filename, dictionary.values)
        attributes_meta[attribute] = {"count": count, "file": filename}
    write_manifest(directory, relations_meta, attributes_meta)
    return directory


def open_database_dir(
    directory: str | Path, verify: bool = False
) -> Database:
    """Open a persisted database directory as ``mmap``-backed relations.

    The cold-start path: columns are read-only maps of the digest-named
    artifacts (the OS pages them in as joins touch them), content digests
    come straight from the manifest, and dictionaries hydrate lazily on
    first decode — opening touches metadata only.  ``verify=True`` re-hashes
    every artifact against its manifest digest first (reads all bytes).

    Raises:
        StorageError: on a missing/corrupt manifest, missing or truncated
            artifacts, or dictionary state conflicting with this process's
            interned codes.
    """
    directory = Path(directory)
    manifest = read_manifest(directory)
    for attribute, meta in sorted(manifest["attributes"].items()):
        source = directory / meta.get("file", _dictionary_filename(attribute))
        if not source.is_file():
            raise StorageError(f"missing dictionary file {source}")
        _install_dictionary(attribute, source, meta["count"])
    store = ColumnStore(directory / COLUMNS_SUBDIR)
    relations = []
    for name, meta in sorted(manifest["relations"].items()):
        schema = tuple(meta["schema"])
        nrows = meta["nrows"]
        digest = meta["digest"]
        if not schema:
            raise StorageError(
                f"manifest relation {name!r} has an empty schema"
            )
        column_set = store.open_column_set(schema, nrows, digest, verify=verify)
        relation = Relation.from_columns(name, schema, column_set.columns)
        relation.column_set(schema).attach_backing(
            column_set.backing, digest
        )
        relation.attach_store(store)
        relations.append(relation)
    return Database(relations)
