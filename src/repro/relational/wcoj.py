"""Worst-case optimal join: Generic Join [42, 43, 47].

Generic Join evaluates a full natural join ``⋈_F R_F`` in time
``O~(AGM(Q))`` — the fractional-edge-cover bound of Eq. (30) — by resolving
one variable at a time and intersecting the candidate value sets contributed
by every relation containing that variable, always iterating the smallest
candidate set.

This is the paper's §2.1.1 baseline ("there are known algorithms with runtime
``O~(2^{ρ*})``: they are worst-case optimal").  The execution substrate is
the shared :class:`~repro.relational.trie.SortedTrieIterator` driven through
:func:`repro.relational.execution.execute_join`: each relation is viewed as a
sorted trie keyed by the global variable order restricted to its attributes,
a variable's candidate set is the current trie level's distinct-key set
(materialized once per node, like the memoized dict tries this replaces), and
the per-level intersection iterates the smallest candidate set against the
others at C speed (:func:`~repro.relational.execution.set_intersection`).
The contrasting *binary* join plan — which is provably not worst-case optimal
on e.g. the triangle query — is :func:`binary_join_plan`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import QueryError
from repro.relational.execution import execute_join, set_intersection
from repro.relational.operators import natural_join
from repro.relational.relation import Relation

__all__ = ["generic_join", "binary_join_plan"]


def generic_join(
    relations: Sequence[Relation],
    variable_order: Sequence[str] | None = None,
    name: str = "Q",
    root_ranges: Sequence[tuple[int, int] | None] | None = None,
) -> Relation:
    """Compute the full natural join of ``relations`` with Generic Join.

    Args:
        relations: the input atoms; every query variable must appear in at
            least one of them.
        variable_order: order in which variables are resolved.  Defaults to
            sorted order (any order is worst-case optimal).
        name: name for the output relation.
        root_ranges: optional per-relation trie-root row bounds — computes
            one shard of the join (see
            :func:`repro.relational.execution.execute_join`).

    Returns:
        The join result over all variables (sorted schema unless an order is
        given, in which case that order).
    """
    if not relations:
        raise QueryError("generic join needs at least one relation")
    return execute_join(
        relations, variable_order, name, set_intersection, root_ranges
    )


def binary_join_plan(
    relations: Sequence[Relation], order: Iterable[int] | None = None, name: str = "Q"
) -> Relation:
    """Left-deep binary hash-join plan (the non-worst-case-optimal baseline).

    Joins the relations pairwise in the given order (default: input order).
    On the triangle query with the AGM-tight instance this materializes a
    quadratic intermediate, while :func:`generic_join` stays at ``N^{3/2}``.
    """
    relations = list(relations)
    if not relations:
        raise QueryError("binary join plan needs at least one relation")
    sequence = list(order) if order is not None else list(range(len(relations)))
    result = relations[sequence[0]]
    for idx in sequence[1:]:
        result = natural_join(result, relations[idx])
    return result.renamed(name)
