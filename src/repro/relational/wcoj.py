"""Worst-case optimal join: Generic Join [42, 43, 47].

Generic Join evaluates a full natural join ``⋈_F R_F`` in time
``O~(AGM(Q))`` — the fractional-edge-cover bound of Eq. (30) — by resolving
one variable at a time and intersecting the candidate value sets contributed
by every relation containing that variable, always iterating the smallest
candidate set.

This is the paper's §2.1.1 baseline ("there are known algorithms with runtime
``O~(2^{ρ*})``: they are worst-case optimal").  The contrasting *binary* join
plan — which is provably not worst-case optimal on e.g. the triangle query —
is :func:`binary_join_plan`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import QueryError
from repro.relational.operators import natural_join, work_counter
from repro.relational.relation import Relation

__all__ = ["generic_join", "binary_join_plan"]


def generic_join(
    relations: Sequence[Relation],
    variable_order: Sequence[str] | None = None,
    name: str = "Q",
) -> Relation:
    """Compute the full natural join of ``relations`` with Generic Join.

    Args:
        relations: the input atoms; every query variable must appear in at
            least one of them.
        variable_order: order in which variables are resolved.  Defaults to
            sorted order (any order is worst-case optimal).
        name: name for the output relation.

    Returns:
        The join result over all variables (sorted schema unless an order is
        given, in which case that order).
    """
    if not relations:
        raise QueryError("generic join needs at least one relation")
    all_vars: set[str] = set()
    for relation in relations:
        all_vars |= relation.attributes
    if variable_order is None:
        order = tuple(sorted(all_vars))
    else:
        order = tuple(variable_order)
        if set(order) != all_vars:
            raise QueryError(
                f"variable order {order} does not cover variables {sorted(all_vars)}"
            )

    out_rows: list[tuple] = []
    # Candidate-set memo: (relation index, var, bound key) -> value set.
    # This is the trie structure of Leapfrog Triejoin: each distinct prefix's
    # extension list is materialized (and charged) exactly once.
    memo: dict[tuple, frozenset] = {}

    def candidates_from(rel_idx: int, var: str, binding: dict) -> frozenset:
        relation = relations[rel_idx]
        bound_attrs = tuple(
            sorted(a for a in relation.attributes if a in binding)
        )
        key = tuple(binding[a] for a in bound_attrs)
        memo_key = (rel_idx, var, bound_attrs, key)
        cached = memo.get(memo_key)
        if cached is not None:
            return cached
        if bound_attrs:
            rows = relation.index_on(bound_attrs).get(key, ())
            pos = relation.position(var)
            values = frozenset(row[pos] for row in rows)
            work_counter.tuples_scanned += len(rows)
        else:
            values = frozenset(k[0] for k in relation.index_on((var,)))
            work_counter.tuples_scanned += len(values)
        memo[memo_key] = values
        return values

    def recurse(depth: int, binding: dict[str, object]) -> None:
        if depth == len(order):
            out_rows.append(tuple(binding[v] for v in order))
            work_counter.tuples_emitted += 1
            return
        var = order[depth]
        candidate_sets = [
            candidates_from(i, var, binding)
            for i, relation in enumerate(relations)
            if var in relation.attributes
        ]
        if not candidate_sets:
            raise QueryError(f"variable {var!r} appears in no relation")
        # Iterate the smallest set and probe the others (hash intersection):
        # the per-node cost is the min candidate-set size.
        candidate_sets.sort(key=len)
        smallest = candidate_sets[0]
        work_counter.tuples_scanned += len(smallest)
        for value in smallest:
            if any(value not in other for other in candidate_sets[1:]):
                continue
            binding[var] = value
            recurse(depth + 1, binding)
            del binding[var]

    recurse(0, {})
    return Relation(name, order, out_rows)


def binary_join_plan(
    relations: Sequence[Relation], order: Iterable[int] | None = None, name: str = "Q"
) -> Relation:
    """Left-deep binary hash-join plan (the non-worst-case-optimal baseline).

    Joins the relations pairwise in the given order (default: input order).
    On the triangle query with the AGM-tight instance this materializes a
    quadratic intermediate, while :func:`generic_join` stays at ``N^{3/2}``.
    """
    relations = list(relations)
    if not relations:
        raise QueryError("binary join plan needs at least one relation")
    sequence = list(order) if order is not None else list(range(len(relations)))
    result = relations[sequence[0]]
    for idx in sequence[1:]:
        result = natural_join(result, relations[idx])
    return result.renamed(name)
