"""Leapfrog Triejoin — the sorted-iterator WCOJ algorithm of Veldhuizen [47].

The second worst-case optimal baseline of §2.1.1, distinct from Generic Join
(:mod:`repro.relational.wcoj`) in mechanism: per variable, the unary
iterators of the participating tries are intersected by *leapfrogging* —
repeatedly seeking the lagging iterator to the current maximum with a
galloping binary search.  The total work is within a log factor of the AGM
bound ``2^{ρ*}`` [47, Thm 3.4]; the bench cross-checks both baselines
against the naive join and against each other.

The tries are the *implicit* sorted tries of the columnar storage: every
relation contributes one shared
:class:`~repro.relational.trie.SortedTrieIterator` keyed by the global
variable order restricted to its attributes.  Per inner level the active
tries' cached sorted key runs are intersected with the §3.1 leapfrog loop
(:func:`_leapfrog_intersection`, memoized per node combination); the leaf
level — with nothing left to descend into — intersects whole blocks over the
cached per-node key sets and emits them at C speed.
:func:`~repro.relational.trie.leapfrog_search` is the pipelined
iterator-protocol form of the same loop, and :func:`build_trie` a decoded
reference trie; tests use both as oracles for the columnar path.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from repro.exceptions import QueryError
from repro.relational.execution import execute_join, register_vectorizable
from repro.relational.operators import current_counter
from repro.relational.relation import Relation

__all__ = ["leapfrog_triejoin", "build_trie"]


def build_trie(relation: Relation, attr_order: Sequence[str]) -> dict:
    """The (decoded) sorted trie of ``relation`` keyed by ``attr_order``.

    Each level is a dict ``value -> child``; leaves are empty dicts.  This is
    the value-level *reference* trie — the join itself walks the implicit
    columnar trie via :meth:`Relation.trie_iterator` — kept for tests,
    debugging, and downstream users who want a materialized view.

    Raises:
        QueryError: if ``attr_order`` is not a permutation of the schema.
    """
    if set(attr_order) != relation.attributes or len(attr_order) != len(
        relation.schema
    ):
        raise QueryError(
            f"trie order {tuple(attr_order)} must permute schema "
            f"{relation.schema}"
        )
    positions = tuple(relation.position(a) for a in attr_order)
    root: dict = {}
    for row in relation:
        node = root
        for p in positions:
            node = node.setdefault(row[p], {})
    return root


def _leapfrog_intersection(key_lists: list[list]) -> list:
    """Intersect sorted lists by leapfrogging (galloping seeks) [47, §3.1].

    The inner-level intersection of the triejoin: repeatedly binary-search
    the lagging list to the current maximum.  Each seek charges one scan to
    the current work counter.
    """
    counter = current_counter()
    if any(not keys for keys in key_lists):
        return []
    if len(key_lists) == 1:
        counter.tuples_scanned += len(key_lists[0])
        return list(key_lists[0])
    positions = [0] * len(key_lists)
    out = []
    # Start from the list with the largest first element.
    current = max(keys[0] for keys in key_lists)
    index = 0
    while True:
        keys = key_lists[index]
        pos = bisect_left(keys, current, positions[index])
        counter.tuples_scanned += 1
        if pos >= len(keys):
            return out
        positions[index] = pos
        value = keys[pos]
        if value == current:
            index += 1
            if index == len(key_lists):
                out.append(current)
                # Advance the last-checked list past the match.
                last = key_lists[-1]
                pos = positions[-1] + 1
                if pos >= len(last):
                    return out
                positions[-1] = pos
                current = last[pos]
                index = 0
        else:
            current = value
            index = 0


def leapfrog_triejoin(
    relations: Sequence[Relation],
    variable_order: Sequence[str] | None = None,
    name: str = "Q",
    root_ranges: Sequence[tuple[int, int] | None] | None = None,
) -> Relation:
    """Compute the full natural join with Leapfrog Triejoin [47].

    Args:
        relations: the input atoms.
        variable_order: global variable order shared by all tries; defaults
            to sorted.  Any order is worst-case optimal.
        name: output relation name.
        root_ranges: optional per-relation trie-root row bounds — computes
            one shard of the join (see
            :func:`repro.relational.execution.execute_join`).

    Returns:
        The join result with schema in the variable order.
    """
    if not relations:
        raise QueryError("leapfrog triejoin needs at least one relation")
    return execute_join(
        relations, variable_order, name, _leapfrog_inner, root_ranges
    )


@register_vectorizable
def _leapfrog_inner(active: list, counter) -> list[int]:
    """Inner-level intersection by leapfrogging the sorted key runs.

    The algorithm-specific half of the shared
    :func:`~repro.relational.execution.execute_join` driver: where Generic
    Join hash-intersects candidate sets, the triejoin leapfrogs the active
    levels' sorted unary iterators per [47, §3.1] (seek charging happens
    inside :func:`_leapfrog_intersection`, which reads the current work
    counter itself).  Registered vectorizable: under the numpy backend the
    seek loop becomes the galloping ``searchsorted`` probe of the block
    executor, which computes the same intersection.
    """
    return _leapfrog_intersection(
        [iterator.child_keys() for iterator in active]
    )
