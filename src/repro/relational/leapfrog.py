"""Leapfrog Triejoin — the sorted-iterator WCOJ algorithm of Veldhuizen [47].

The second worst-case optimal baseline of §2.1.1, distinct from Generic Join
(:mod:`repro.relational.wcoj`) in mechanism: every relation is stored as a
*trie* keyed by the global variable order, and per variable the unary
iterators of the participating tries are intersected by *leapfrogging* —
repeatedly seeking the lagging iterator to the current maximum with a
galloping/binary search.  The total work is within a log factor of the
AGM bound ``2^{ρ*}`` [47, Thm 3.4]; the bench cross-checks both baselines
against the naive join and against each other.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from repro.exceptions import QueryError
from repro.relational.operators import work_counter
from repro.relational.relation import Relation

__all__ = ["leapfrog_triejoin", "build_trie"]


def build_trie(relation: Relation, attr_order: Sequence[str]) -> dict:
    """The sorted trie of ``relation`` keyed by ``attr_order``.

    Each level is a dict ``value -> child``; leaves are empty dicts.  Key
    *sorting* is applied lazily by the join (dicts preserve nothing useful);
    the trie itself is plain nested dicts so construction is linear.

    Raises:
        QueryError: if ``attr_order`` is not a permutation of the schema.
    """
    if set(attr_order) != relation.attributes or len(attr_order) != len(
        relation.schema
    ):
        raise QueryError(
            f"trie order {tuple(attr_order)} must permute schema "
            f"{relation.schema}"
        )
    positions = tuple(relation.position(a) for a in attr_order)
    root: dict = {}
    for row in relation:
        node = root
        for p in positions:
            node = node.setdefault(row[p], {})
    return root


class _TrieIterator:
    """One relation's cursor: a stack of (sorted keys, node) levels."""

    __slots__ = ("stack",)

    def __init__(self, root: dict) -> None:
        self.stack: list[dict] = [root]

    def keys(self) -> list:
        """Sorted keys at the current level (materialized once per node)."""
        node = self.stack[-1]
        cached = node.get(_KEYS_SENTINEL)
        if cached is None:
            cached = sorted(k for k in node if k is not _KEYS_SENTINEL)
            node[_KEYS_SENTINEL] = cached
        return cached

    def open(self, value) -> None:
        self.stack.append(self.stack[-1][value])

    def up(self) -> None:
        self.stack.pop()


class _KeysSentinel:
    """Private dict key caching each trie node's sorted key list."""

    def __repr__(self) -> str:
        return "<keys>"


_KEYS_SENTINEL = _KeysSentinel()


def _leapfrog_intersection(key_lists: list[list]) -> list:
    """Intersect sorted lists by leapfrogging (galloping seeks) [47, §3.1]."""
    if any(not keys for keys in key_lists):
        return []
    if len(key_lists) == 1:
        work_counter.tuples_scanned += len(key_lists[0])
        return list(key_lists[0])
    positions = [0] * len(key_lists)
    out = []
    # Start from the list with the largest first element.
    current = max(keys[0] for keys in key_lists)
    index = 0
    while True:
        keys = key_lists[index]
        pos = bisect_left(keys, current, positions[index])
        work_counter.tuples_scanned += 1
        if pos >= len(keys):
            return out
        positions[index] = pos
        value = keys[pos]
        if value == current:
            index += 1
            if index == len(key_lists):
                out.append(current)
                # Advance the last-checked list past the match.
                last = key_lists[-1]
                pos = positions[-1] + 1
                if pos >= len(last):
                    return out
                positions[-1] = pos
                current = last[pos]
                index = 0
        else:
            current = value
            index = 0


def leapfrog_triejoin(
    relations: Sequence[Relation],
    variable_order: Sequence[str] | None = None,
    name: str = "Q",
) -> Relation:
    """Compute the full natural join with Leapfrog Triejoin [47].

    Args:
        relations: the input atoms.
        variable_order: global variable order shared by all tries; defaults
            to sorted.  Any order is worst-case optimal.
        name: output relation name.

    Returns:
        The join result with schema in the variable order.
    """
    if not relations:
        raise QueryError("leapfrog triejoin needs at least one relation")
    all_vars: set[str] = set()
    for relation in relations:
        all_vars |= relation.attributes
    if variable_order is None:
        order = tuple(sorted(all_vars))
    else:
        order = tuple(variable_order)
        if set(order) != all_vars:
            raise QueryError(
                f"variable order {order} does not cover variables "
                f"{sorted(all_vars)}"
            )

    iterators: list[tuple[frozenset, _TrieIterator]] = []
    for relation in relations:
        attrs = tuple(a for a in order if a in relation.attributes)
        iterators.append(
            (relation.attributes, _TrieIterator(build_trie(relation, attrs)))
        )

    out_rows: list[tuple] = []
    binding: list = []

    def recurse(depth: int) -> None:
        if depth == len(order):
            out_rows.append(tuple(binding))
            work_counter.tuples_emitted += 1
            return
        var = order[depth]
        active = [it for attrs, it in iterators if var in attrs]
        if not active:
            raise QueryError(f"variable {var!r} appears in no relation")
        matches = _leapfrog_intersection([it.keys() for it in active])
        for value in matches:
            for it in active:
                it.open(value)
            binding.append(value)
            recurse(depth + 1)
            binding.pop()
            for it in active:
                it.up()

    recurse(0)
    return Relation(name, order, out_rows)
