"""Degree-statistics extraction (§2.2).

Helpers that turn a concrete database into the degree-constraint sets the
bound/width machinery consumes: full per-relation statistics, the cardinality
skeleton, and functional-dependency discovery.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.constraints import ConstraintSet, DegreeConstraint
from repro.core.hypergraph import powerset
from repro.relational.relation import Relation

__all__ = [
    "cardinality_constraint",
    "relation_statistics",
    "discover_functional_dependencies",
]


def cardinality_constraint(relation: Relation) -> DegreeConstraint:
    """The constraint ``|R| <= len(R)`` for one relation."""
    return DegreeConstraint.make((), relation.schema, max(1, len(relation)))


def relation_statistics(
    relation: Relation,
    pairs: Iterable[tuple[frozenset, frozenset]] | None = None,
) -> ConstraintSet:
    """All degree constraints a single relation satisfies tightly.

    Args:
        relation: the relation to profile.
        pairs: restrict to the given ``(X, Y)`` pairs; default is every pair
            ``X ⊂ Y ⊆ attrs(R)`` with ``X`` possibly empty.
    """
    attrs = tuple(sorted(relation.attributes))
    if pairs is None:
        subsets = list(powerset(attrs))
        pairs = [(x, y) for y in subsets if y for x in subsets if x < y]
    constraints = []
    for x, y in pairs:
        bound = max(1, relation.degree(y, x))
        constraints.append(DegreeConstraint.make(x, y, bound))
    return ConstraintSet(constraints)


def discover_functional_dependencies(relation: Relation) -> list[DegreeConstraint]:
    """All minimal single-step FDs ``X -> Y`` that hold in ``relation``.

    Returns constraints with bound 1 for every pair ``X ⊂ Y`` where each
    ``X``-value determines the ``Y``-value, keeping only the inclusion-minimal
    left-hand sides per ``Y``.
    """
    attrs = tuple(sorted(relation.attributes))
    subsets = [s for s in powerset(attrs)]
    found: list[DegreeConstraint] = []
    for y in subsets:
        if not y:
            continue
        minimal_lhs: list[frozenset] = []
        for x in sorted((x for x in subsets if x < y), key=len):
            if any(m <= x for m in minimal_lhs):
                continue
            if relation.degree(y, x) <= 1:
                minimal_lhs.append(x)
                found.append(DegreeConstraint.make(x, y, 1))
    return found
