"""Degree-statistics extraction (§2.2).

Helpers that turn a concrete database into the degree-constraint sets the
bound/width machinery consumes: full per-relation statistics, the cardinality
skeleton, and functional-dependency discovery.

Profiling a relation ranges over every pair ``X ⊂ Y ⊆ attrs(R)``; the pairs
are enumerated on the bitmask kernel (:class:`~repro.core.varmap.VarMap` —
submask loops over machine ints in the canonical size-lexicographic order)
instead of hashing ``4^n`` frozenset pairs, and each ``deg_R(Y|X)`` is one
linear run scan over the sorted code columns (:meth:`Relation.degree`), so
wide relations profile without any per-tuple hashing.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.constraints import ConstraintSet, DegreeConstraint
from repro.core.varmap import VarMap
from repro.relational.relation import Relation

__all__ = [
    "cardinality_constraint",
    "relation_statistics",
    "discover_functional_dependencies",
]


def cardinality_constraint(relation: Relation) -> DegreeConstraint:
    """The constraint ``|R| <= len(R)`` for one relation."""
    return DegreeConstraint.make((), relation.schema, max(1, len(relation)))


def relation_statistics(
    relation: Relation,
    pairs: Iterable[tuple[frozenset, frozenset]] | None = None,
) -> ConstraintSet:
    """All degree constraints a single relation satisfies tightly.

    Args:
        relation: the relation to profile.
        pairs: restrict to the given ``(X, Y)`` pairs; default is every pair
            ``X ⊂ Y ⊆ attrs(R)`` with ``X`` possibly empty, enumerated over
            masks in the canonical size-lexicographic order.
    """
    attrs = tuple(sorted(relation.attributes))
    constraints: list[DegreeConstraint] = []
    if pairs is None:
        varmap = VarMap.of(attrs)
        for y_mask in varmap.subset_masks():
            if not y_mask:
                continue
            y_set = varmap.set_of(y_mask)
            for x_mask in varmap.subset_masks(y_mask):
                if x_mask == y_mask:
                    continue
                x_set = varmap.set_of(x_mask)
                bound = max(1, relation.degree(y_set, x_set))
                constraints.append(DegreeConstraint.make(x_set, y_set, bound))
        return ConstraintSet(constraints)
    for x, y in pairs:
        bound = max(1, relation.degree(y, x))
        constraints.append(DegreeConstraint.make(x, y, bound))
    return ConstraintSet(constraints)


def discover_functional_dependencies(relation: Relation) -> list[DegreeConstraint]:
    """All minimal single-step FDs ``X -> Y`` that hold in ``relation``.

    Returns constraints with bound 1 for every pair ``X ⊂ Y`` where each
    ``X``-value determines the ``Y``-value, keeping only the inclusion-minimal
    left-hand sides per ``Y``.  Minimality tests are single ``&`` ops on the
    candidate masks.
    """
    attrs = tuple(sorted(relation.attributes))
    varmap = VarMap.of(attrs)
    found: list[DegreeConstraint] = []
    for y_mask in varmap.subset_masks():
        if not y_mask:
            continue
        y_set = varmap.set_of(y_mask)
        minimal_lhs: list[int] = []
        # Canonical submask order is size-lexicographic, matching the
        # historical sorted-by-len scan.
        for x_mask in varmap.subset_masks(y_mask):
            if x_mask == y_mask:
                continue
            if any(m & x_mask == m for m in minimal_lhs):
                continue
            x_set = varmap.set_of(x_mask)
            if relation.degree(y_set, x_set) <= 1:
                minimal_lhs.append(x_mask)
                found.append(DegreeConstraint.make(x_set, y_set, 1))
    return found
