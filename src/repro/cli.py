"""Command-line interface: ``python -m repro <command> ...``.

Seven commands expose the paper's pipeline on user queries and CSV data
(full per-command reference: ``docs/cli.md``):

* ``bound``  — output-size bounds (AGM / polymatroid / entropic-outer) of a
  query or disjunctive rule under declared constraints;
* ``widths`` — classical and degree-aware width parameters;
* ``proof``  — the Shannon-flow inequality behind the bound and a verified
  proof sequence for it;
* ``ingest`` — persist a directory of CSV relations as a *persisted
  database directory* (digest-named int64 column artifacts + dictionary
  files + manifest; see :mod:`repro.relational.storage`) for instant
  mmap-backed cold starts;
* ``run``    — evaluate a query (PANDA da-subw driver) or a disjunctive rule
  (PANDA) over a directory of CSV relations (``--data``) or a persisted
  database directory (``--data-dir``);
* ``datalog`` — evaluate a recursive (optionally stratified-negation)
  datalog program to fixpoint semi-naïvely (:mod:`repro.datalog.fixpoint`),
  with optional change feeds maintained through the affected strata only;
* ``serve``  — materialize a query once, then apply change-feed batches
  (``<relation>.changes.csv`` files with a ``+``/``-`` op column): with
  ``--apply-deltas`` the result is maintained incrementally
  (:mod:`repro.incremental`), otherwise each batch recomputes from scratch
  — run both to see what delta maintenance buys.

Constraint syntax, shared by all commands:

* ``--size R12=64``            cardinality ``|R12| <= 64``;
* ``--fd A1:A2``               functional dependency ``A1 -> A2``;
* ``--degree A1>A1,A2=3``      ``deg(A1A2 | A1) <= 3``.

Example::

    python -m repro bound "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)" \\
        --size R=64 --size S=64 --size T=64
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction

from repro.bounds import log_size_bound
from repro.core.constraints import (
    ConstraintSet,
    DegreeConstraint,
    cardinality,
    functional_dependency,
)
from repro.datalog import parse_query, parse_rule
from repro.datalog.conjunctive import ConjunctiveQuery
from repro.exceptions import ReproError

__all__ = ["main", "build_parser"]


def _add_constraint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--size", action="append", default=[], metavar="REL=N",
        help="cardinality constraint |REL| <= N (repeatable)",
    )
    parser.add_argument(
        "--fd", action="append", default=[], metavar="X:Y",
        help="functional dependency X -> Y; comma-separate variables",
    )
    parser.add_argument(
        "--degree", action="append", default=[], metavar="X>Y=N",
        help="degree constraint deg(Y|X) <= N; comma-separate variables",
    )


def _split_vars(text: str) -> tuple[str, ...]:
    return tuple(v.strip() for v in text.split(",") if v.strip())


def _parse_constraints(args, query) -> ConstraintSet:
    constraints = []
    atoms_by_name = {atom.name: atom for atom in query.body}
    for item in args.size:
        name, _, value = item.partition("=")
        if name not in atoms_by_name:
            raise ReproError(f"--size {item}: no atom named {name!r}")
        constraints.append(
            cardinality(atoms_by_name[name].variables, int(value))
        )
    for item in args.fd:
        left, _, right = item.partition(":")
        constraints.append(
            functional_dependency(_split_vars(left), _split_vars(right))
        )
    for item in args.degree:
        spec, _, value = item.partition("=")
        left, _, right = spec.partition(">")
        x = _split_vars(left)
        y = _split_vars(right)
        constraints.append(
            DegreeConstraint.make(x, tuple(sorted(set(x) | set(y))), int(value))
        )
    return ConstraintSet(constraints)


def _parse_statement(text: str):
    """A CQ or a disjunctive rule, depending on the head."""
    if "|" in text.split(":-")[0]:
        return parse_rule(text)
    return parse_query(text)


def _targets_of(statement) -> list[frozenset]:
    if isinstance(statement, ConjunctiveQuery):
        if statement.is_boolean or statement.is_full:
            return [frozenset(statement.variable_set)]
        return [frozenset(statement.head)]
    return list(statement.targets)


def _log2_display(value: Fraction) -> str:
    """Render ``2^value``, showing the decimal log2 with the exact fraction.

    A raw ``2^1079882313/81269242`` reads like ``(2^1079882313)/81269242``
    and hides the magnitude; print the decimal exponent and parenthesize the
    exact rational (omitted when it already is an integer).  Exponents at or
    beyond the IEEE-double range (``2^1024`` overflows, as do wide joins
    over big declared cardinalities) keep the ``2^x`` form — the power is
    never materialized as a float.
    """
    if value.denominator == 1:
        head = f"2^{value.numerator}"
    else:
        try:
            head = f"2^{float(value):.6f} (= 2^({value}))"
        except OverflowError:
            # The *exponent* itself exceeds float range; exact form only.
            return f"2^({value})"
    if value >= 1024:
        return head
    return f"{head} = {2.0 ** float(value):,.0f}"


def cmd_bound(args) -> int:
    statement = _parse_statement(args.statement)
    constraints = _parse_constraints(args, statement)
    variables = tuple(sorted(statement.variable_set))
    targets = _targets_of(statement)
    bound = log_size_bound(variables, targets, constraints)
    print(f"statement:        {statement}")
    print(f"variables:        {', '.join(variables)}")
    print(f"polymatroid bound (log2): {bound.log_value}")
    print(f"output size bound:        {_log2_display(bound.log_value)}")
    if args.entropic:
        from repro.bounds.entropic import entropic_outer_bound

        outer = entropic_outer_bound(variables, targets, constraints)
        print(f"entropic outer bound (ZY, log2): {outer.log_value}")
        if outer.log_value < bound.log_value:
            print("  -> polymatroid bound is NOT tight here (Theorem 1.3 regime)")
    return 0


def cmd_widths(args) -> int:
    from repro.widths import (
        degree_aware_fhtw,
        degree_aware_subw,
        fractional_hypertree_width,
        generalized_hypertree_width,
        submodular_width,
        treewidth,
    )

    statement = parse_query(args.statement)
    hypergraph = statement.hypergraph()
    print(f"query:   {statement}")
    print(f"tw + 1:  {treewidth(hypergraph) + 1}")
    print(f"ghtw:    {generalized_hypertree_width(hypergraph)}")
    print(f"fhtw:    {fractional_hypertree_width(hypergraph)}")
    print(f"subw:    {submodular_width(hypergraph)}")
    constraints = _parse_constraints(args, statement)
    if len(constraints) > 0:
        print(f"da-fhtw: {degree_aware_fhtw(hypergraph, constraints)}  (log2 units)")
        print(f"da-subw: {degree_aware_subw(hypergraph, constraints)}  (log2 units)")
    return 0


def cmd_proof(args) -> int:
    from repro.flows import construct_proof_sequence, flow_from_bound

    statement = _parse_statement(args.statement)
    constraints = _parse_constraints(args, statement)
    variables = tuple(sorted(statement.variable_set))
    bound = log_size_bound(variables, _targets_of(statement), constraints)
    ineq, witness, _ = flow_from_bound(bound)

    def fmt(s):
        return "{" + ",".join(sorted(s)) + "}" if s else "∅"

    lam = " + ".join(
        f"{w}·h({fmt(b)})"
        for b, w in sorted(ineq.lam.items(), key=lambda kv: sorted(kv[0]))
    )
    delta = " + ".join(
        f"{w}·h({fmt(y)}|{fmt(x)})"
        for (x, y), w in sorted(
            ineq.delta.items(), key=lambda kv: (sorted(kv[0][0]), sorted(kv[0][1]))
        )
    )
    print(f"bound (log2):   {bound.log_value}")
    print(f"Shannon-flow inequality:  {lam}  <=  {delta}")
    sequence = construct_proof_sequence(ineq, witness)
    sequence.verify(ineq)
    print(f"proof sequence ({len(sequence)} steps, verified):")
    for ws in sequence:
        print(f"  {ws}")
    return 0


def _load_database(args):
    """The statement's database: CSV directory or persisted directory.

    ``--data`` streams CSV relations onto the heap; ``--data-dir`` opens a
    persisted database directory with mmap-backed columns and lazy
    dictionaries (cold start touches metadata only).
    """
    if getattr(args, "data_dir", None):
        from repro.relational.storage import open_database_dir

        return open_database_dir(args.data_dir)
    from repro.relational.io import load_database_dir

    return load_database_dir(args.data)


def cmd_ingest(args) -> int:
    from repro.relational.io import load_database_dir
    from repro.relational.storage import save_database_dir

    database = load_database_dir(args.data)
    save_database_dir(database, args.out)
    total = 0
    for relation in sorted(database, key=lambda r: r.name):
        digest = relation.column_set(relation.schema).content_digest()
        print(
            f"  {relation.name}{relation.schema}: {len(relation)} tuples "
            f"-> {digest[:12]}..."
        )
        total += len(relation)
    print(f"ingested {total} tuples into {args.out}")
    return 0


def cmd_run(args) -> int:
    from pathlib import Path

    from repro.core.panda import panda
    from repro.core.query_plans import dasubw_plan, proper_query_plan
    from repro.datalog.rule import DisjunctiveRule
    from repro.planner import Planner
    from repro.relational.backend import scoped_backend
    from repro.relational.io import save_relation_csv
    from repro.relational.operators import scoped_work_counter

    statement = _parse_statement(args.statement)
    database = _load_database(args)
    out_dir = Path(args.out) if args.out else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    planner = Planner()

    workers = max(1, args.workers)
    # An explicit --driver opts into the parallel engine even at 1 worker
    # (the driver then runs in-process over the same shard plan).
    parallel = workers > 1 or args.driver is not None
    if parallel and (
        isinstance(statement, DisjunctiveRule)
        or not (statement.is_full or statement.is_boolean)
    ):
        print(
            "note: --workers/--driver apply to full/Boolean conjunctive "
            "queries; running this statement serially",
            file=sys.stderr,
        )
        parallel = False

    counter = None

    def report_stats() -> None:
        if args.stats:
            print(f"plan cache: {planner.stats} "
                  f"({len(planner.cache)} plan(s) cached)")
            if counter is not None:
                print(
                    f"work: {counter.tuples_scanned} scanned, "
                    f"{counter.tuples_emitted} emitted "
                    f"({counter.total} total"
                    + (f", {workers} worker(s)" if parallel else "")
                    + ")"
                )

    if isinstance(statement, DisjunctiveRule):
        with scoped_backend(args.backend), scoped_work_counter() as counter:
            result = panda(statement, database, planner=planner)
        print(f"PANDA: budget 2^OBJ = {result.budget:,.0f}, "
              f"max intermediate {result.stats.max_intermediate}, "
              f"{result.stats.restarts} restart(s)")
        for table in result.model.tables:
            print(f"  {table.name}: {len(table)} tuples")
            if out_dir:
                save_relation_csv(table, out_dir / f"{table.name}.csv")
        report_stats()
        return 0

    with scoped_backend(args.backend), scoped_work_counter() as counter:
        if parallel:
            from repro.parallel import ParallelQueryEngine

            with ParallelQueryEngine(
                statement,
                planner=planner,
                workers=workers,
                execution_backend=args.backend,
            ) as engine:
                plan = engine.execute(database, driver=args.driver or "generic")
        elif statement.is_full or statement.is_boolean:
            plan = dasubw_plan(statement, database, planner=planner)
        else:
            plan = proper_query_plan(statement, database, planner=planner)
    if statement.is_boolean:
        print(f"{statement.name}: {plan.boolean}")
        report_stats()
        return 0
    print(f"{statement.name}: {len(plan.relation)} tuples "
          f"({len(plan.panda_runs)} PANDA run(s))")
    if out_dir:
        save_relation_csv(plan.relation, out_dir / f"{statement.name}.csv")
        print(f"written to {out_dir / (statement.name + '.csv')}")
    else:
        for row in sorted(plan.relation, key=repr)[: args.limit]:
            print("  " + ", ".join(map(str, row)))
        if len(plan.relation) > args.limit:
            print(f"  ... ({len(plan.relation) - args.limit} more)")
    report_stats()
    return 0



def cmd_datalog(args) -> int:
    import time
    from pathlib import Path

    from repro.datalog.engine import DatalogEngine
    from repro.datalog.parser import parse_program
    from repro.relational.io import iter_change_feed, save_relation_csv
    from repro.relational.operators import scoped_work_counter

    program = parse_program(Path(args.program).read_text(encoding="utf-8"))
    database = _load_database(args)
    out_dir = Path(args.out) if args.out else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    driver = args.driver or "generic"
    feeds = iter_change_feed(args.changes) if args.changes else ()

    def describe(result) -> None:
        for name in result.names:
            print(f"  {name}: {len(result[name])} tuples")

    with scoped_work_counter() as counter, DatalogEngine(
        program,
        workers=max(1, args.workers),
        execution_backend=args.backend,
    ) as engine:
        recursive = sum(1 for stratum in engine.strata if stratum.recursive)
        print(
            f"{len(program.rules)} rule(s), {len(engine.strata)} "
            f"stratum(-a) ({recursive} recursive)"
        )
        start = time.perf_counter()
        result = engine.execute(database, driver=driver)
        print(
            f"fixpoint in {time.perf_counter() - start:.3f}s "
            f"({engine.stats.rounds} delta round(s), driver {driver})"
        )
        describe(result)
        for index, (name, schema, inserts, deletes) in enumerate(feeds):
            relation = engine.relation(name)
            engine.insert(name, _align_feed(relation, schema, inserts))
            engine.delete(name, _align_feed(relation, schema, deletes))
            start = time.perf_counter()
            result = engine.refresh(driver=driver)
            print(
                f"batch {index} [{name} +{len(inserts)}/-{len(deletes)}]: "
                f"maintained in {time.perf_counter() - start:.3f}s"
            )
            describe(result)
        if out_dir:
            for name in result.names:
                save_relation_csv(result[name], out_dir / f"{name}.csv")
            print(f"written to {out_dir}")
        else:
            for name in result.names:
                relation = result[name]
                print(f"{name}:")
                for row in sorted(relation, key=repr)[: args.limit]:
                    print("  " + ", ".join(map(str, row)))
                if len(relation) > args.limit:
                    print(f"  ... ({len(relation) - args.limit} more)")
        if args.stats:
            s = engine.stats
            print(
                f"fixpoint: {s.strata} stratum run(s), {s.rounds} round(s), "
                f"{s.full_evaluations} full join(s), {s.delta_terms} delta "
                f"term(s), {s.derived_rows} derived row(s), "
                f"{s.continuations} continuation(s), "
                f"{s.recomputes} recompute(s), {s.compactions} compaction(s)"
            )
            print(f"plan cache: {engine.cache_stats}")
            print(
                f"work: {counter.tuples_scanned} scanned, "
                f"{counter.tuples_emitted} emitted ({counter.total} total)"
            )
    return 0


def _align_feed(relation, feed_schema, rows):
    """Realign change-feed rows onto the relation's schema by column name.

    A feed whose header merely permutes the relation's attributes is
    accepted (values are reassigned by name); anything else — missing,
    extra, or renamed columns — is an error rather than a silent positional
    misassignment.
    """
    feed_schema = tuple(feed_schema)
    if feed_schema == relation.schema:
        return rows
    if sorted(feed_schema) != sorted(relation.schema):
        raise ReproError(
            f"change feed columns {feed_schema} do not match relation "
            f"{relation.name}{relation.schema}"
        )
    positions = tuple(feed_schema.index(a) for a in relation.schema)
    return [tuple(row[p] for p in positions) for row in rows]


def _serve_concurrent(args, statement, database, feeds, driver) -> int:
    """The ``serve --concurrent`` arm: mixed read/write traffic via the broker.

    Each change-feed batch becomes one write; around every write the loop
    issues ``reads_per_write`` snapshot reads (a 90/10 read-heavy mix).
    Writes that hit backpressure retry after the advertised delay; shed
    reads are dropped (and counted in the metrics) like a real client
    racing admission control.
    """
    import time

    from repro.exceptions import OverloadError
    from repro.serving import ServingEngine

    reads_per_write = 9  # 90/10 read/write mix
    initial = {relation.name: relation for relation in database}
    atoms = {atom.name for atom in statement.body}

    def describe(result) -> str:
        if statement.is_boolean:
            return f"{result.boolean}"
        return f"{len(result.relation)} rows"

    with ServingEngine(
        statement,
        readers=max(1, args.readers),
        workers=max(1, args.workers),
        execution_backend=args.backend,
    ) as engine:
        start = time.perf_counter()
        result = engine.execute(database, driver=driver)
        print(
            f"materialized {statement.name}: {describe(result)} "
            f"({time.perf_counter() - start:.3f}s, driver {driver}, "
            f"{engine.readers} reader(s) + 1 writer)"
        )
        writes = []
        reads = []
        serve_start = time.perf_counter()
        for index, (name, schema, inserts, deletes) in enumerate(feeds):
            if name not in atoms:
                raise ReproError(
                    f"change feed {name!r} does not match a query atom"
                )
            relation = initial[name]
            changes = {
                name: (
                    _align_feed(relation, schema, inserts),
                    _align_feed(relation, schema, deletes),
                )
            }
            while True:
                try:
                    future = engine.submit(changes)
                    break
                except OverloadError as overload:
                    time.sleep(overload.retry_after)
            writes.append((index, name, len(inserts), len(deletes), future))
            for _ in range(reads_per_write):
                try:
                    reads.append(engine.read())
                except OverloadError:
                    pass  # shed reads are counted in the metrics
        for index, name, plus, minus, future in writes:
            receipt = future.result()
            print(
                f"batch {index} [{name} +{plus}/-{minus}]: epoch "
                f"{receipt.epoch} committed in {receipt.latency:.3f}s"
            )
        for future in reads:
            future.result()
        elapsed = time.perf_counter() - serve_start
        final = engine.read().result()
        print(
            f"served {statement.name}: {describe(final)} at epoch "
            f"{engine.current_epoch} ({len(writes)} batch(es), "
            f"{len(reads) + 1} read(s))"
        )
        if args.stats:
            metrics = engine.metrics()
            latency = metrics["read_latency"]
            spread = metrics["epoch_spread"]
            admission = metrics["admission"]
            rate = len(writes) / elapsed if elapsed > 0 else 0.0
            print(
                f"reads: {latency['count']} served "
                f"({admission['reads_shed']} shed), "
                f"p50 {latency['p50'] * 1000:.1f}ms, "
                f"p99 {latency['p99'] * 1000:.1f}ms, "
                f"max {latency['max'] * 1000:.1f}ms"
            )
            print(
                f"writes: {len(writes)} batch(es) in {elapsed:.3f}s "
                f"({rate:.1f} batches/s sustained, "
                f"{admission['writes_shed']} shed)"
            )
            print(
                f"snapshot epochs: spread mean {spread['mean']:.2f}, "
                f"max {spread['max']:.0f} (current {engine.current_epoch})"
            )
            s = engine.stats
            print(
                f"maintenance: {s.batches} batch(es), "
                f"{s.join_terms} delta term(s), {s.delta_rows} delta "
                f"row(s), {s.compactions} compaction(s)"
            )
            print(f"plan cache: {engine.cache_stats}")
    return 0


def cmd_serve(args) -> int:
    import time

    from repro.incremental import IncrementalQueryEngine, SignedDelta, VersionedRelation
    from repro.relational.io import iter_change_feed
    from repro.relational.operators import scoped_work_counter

    statement = parse_query(args.statement)
    if not (statement.is_full or statement.is_boolean):
        raise ReproError(
            "serve maintains full/Boolean conjunctive queries; "
            "project the full result instead"
        )
    database = _load_database(args)
    # Batches stream one file at a time (a long feed never materializes
    # up front); every arm below consumes this lazily.
    feeds = iter_change_feed(args.changes) if args.changes else ()
    driver = args.driver or "generic"
    if args.concurrent:
        return _serve_concurrent(args, statement, database, feeds, driver)

    def describe(result) -> str:
        if statement.is_boolean:
            return f"{result.boolean}"
        return f"{len(result.relation)} rows"

    with scoped_work_counter() as counter:
        if args.apply_deltas:
            with IncrementalQueryEngine(
                statement,
                workers=max(1, args.workers),
                execution_backend=args.backend,
            ) as engine:
                start = time.perf_counter()
                result = engine.execute(database, driver=driver)
                print(
                    f"materialized {statement.name}: {describe(result)} "
                    f"({time.perf_counter() - start:.3f}s, driver {driver})"
                )
                for index, (name, schema, inserts, deletes) in enumerate(feeds):
                    relation = engine.relation(name)
                    engine.insert(name, _align_feed(relation, schema, inserts))
                    engine.delete(name, _align_feed(relation, schema, deletes))
                    start = time.perf_counter()
                    result = engine.refresh(driver=driver)
                    print(
                        f"batch {index} [{name} +{len(inserts)}/"
                        f"-{len(deletes)}]: {describe(result)} maintained in "
                        f"{time.perf_counter() - start:.3f}s"
                    )
                if args.stats:
                    s = engine.stats
                    print(
                        f"maintenance: {s.batches} batch(es), "
                        f"{s.join_terms} delta term(s), {s.delta_rows} delta "
                        f"row(s), {s.compactions} compaction(s), "
                        f"{s.faq_recomputes} FAQ recompute(s)"
                    )
                    print(f"plan cache: {engine.cache_stats}")
        else:
            from repro.parallel import ParallelQueryEngine

            versioned = {
                atom.name: VersionedRelation(database[atom.name])
                for atom in statement.body
            }
            with ParallelQueryEngine(
                statement,
                workers=max(1, args.workers),
                execution_backend=args.backend,
            ) as engine:
                start = time.perf_counter()
                result = engine.execute(database, driver=driver)
                print(
                    f"materialized {statement.name}: {describe(result)} "
                    f"({time.perf_counter() - start:.3f}s, driver {driver})"
                )
                for index, (name, schema, inserts, deletes) in enumerate(feeds):
                    if name not in versioned:
                        raise ReproError(
                            f"change feed {name!r} does not match a query atom"
                        )
                    current = versioned[name].current
                    delta = SignedDelta.from_changes(
                        current,
                        _align_feed(current, schema, inserts),
                        _align_feed(current, schema, deletes),
                    )
                    versioned[name].apply(delta)
                    database = database.updated(
                        [versioned[name].current]
                    )
                    start = time.perf_counter()
                    result = engine.execute(database, driver=driver)
                    print(
                        f"batch {index} [{name} +{len(inserts)}/"
                        f"-{len(deletes)}]: {describe(result)} recomputed in "
                        f"{time.perf_counter() - start:.3f}s"
                    )
        if args.stats:
            print(
                f"work: {counter.tuples_scanned} scanned, "
                f"{counter.tuples_emitted} emitted ({counter.total} total)"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PANDA & friends: size bounds, widths, proof sequences, "
                    "and query evaluation (PODS 2017 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_bound = sub.add_parser("bound", help="output-size bounds of a query/rule")
    p_bound.add_argument("statement", help="CQ or disjunctive rule text")
    _add_constraint_args(p_bound)
    p_bound.add_argument(
        "--entropic", action="store_true",
        help="also compute the Zhang-Yeung entropic outer bound",
    )
    p_bound.set_defaults(func=cmd_bound)

    p_widths = sub.add_parser("widths", help="width parameters of a query")
    p_widths.add_argument("statement", help="CQ text")
    _add_constraint_args(p_widths)
    p_widths.set_defaults(func=cmd_widths)

    p_proof = sub.add_parser(
        "proof", help="Shannon-flow inequality + proof sequence for the bound"
    )
    p_proof.add_argument("statement", help="CQ or disjunctive rule text")
    _add_constraint_args(p_proof)
    p_proof.set_defaults(func=cmd_proof)

    p_ingest = sub.add_parser(
        "ingest",
        help="persist a CSV directory as a database directory (digest-named "
             "column artifacts + manifest) for instant mmap cold starts",
    )
    p_ingest.add_argument("--data", required=True,
                          help="directory of CSV relations (header = schema)")
    p_ingest.add_argument("--out", required=True,
                          help="persisted database directory to write")
    p_ingest.set_defaults(func=cmd_ingest)

    p_run = sub.add_parser("run", help="evaluate a query/rule over CSV data")
    p_run.add_argument("statement", help="CQ or disjunctive rule text")
    run_src = p_run.add_mutually_exclusive_group(required=True)
    run_src.add_argument("--data",
                         help="directory of CSV relations (header = schema)")
    run_src.add_argument(
        "--data-dir", dest="data_dir",
        help="persisted database directory (see `repro ingest`): relations "
             "open as mmap-backed columns, no CSV parse, instant cold start",
    )
    p_run.add_argument("--out", help="directory to write result CSVs")
    p_run.add_argument("--limit", type=int, default=20,
                       help="max rows to print without --out")
    p_run.add_argument("--stats", action="store_true",
                       help="report plan-cache hit/miss statistics and "
                            "tuple-level work totals (worker counts "
                            "aggregated back into the parent)")
    p_run.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="evaluate full/Boolean CQs across N worker processes: the "
             "query is range-sharded on its first variable (heavy keys "
             "split further) and the sorted per-shard outputs merge into "
             "a result bit-identical to serial evaluation",
    )
    p_run.add_argument(
        "--driver", default=None,
        choices=("generic", "leapfrog", "yannakakis", "panda"),
        help="per-shard execution strategy of the parallel engine "
             "(default generic; giving it opts into the engine even "
             "at --workers 1)",
    )
    p_run.add_argument(
        "--backend", default=None,
        choices=("interpreted", "vectorized"),
        help="execution kernels: tuple-at-a-time interpreter or numpy "
             "block kernels (bit-identical results; default: "
             "$REPRO_BACKEND, else vectorized when numpy is available)",
    )
    p_run.set_defaults(func=cmd_run)

    p_datalog = sub.add_parser(
        "datalog",
        help="evaluate a recursive datalog program to fixpoint "
             "(semi-naïve; change feeds maintain only affected strata)",
    )
    p_datalog.add_argument(
        "--program", required=True,
        help="program file: '.'-separated rules with '#'/'%%' line comments "
             "and '!'/'not' stratified negation (see docs/datalog.md)",
    )
    datalog_src = p_datalog.add_mutually_exclusive_group(required=True)
    datalog_src.add_argument(
        "--data", help="directory of CSV relations (header = schema)"
    )
    datalog_src.add_argument(
        "--data-dir", dest="data_dir",
        help="persisted database directory (see `repro ingest`)",
    )
    p_datalog.add_argument(
        "--changes",
        help="directory of <relation>.changes.csv feeds (as in `repro "
             "serve`): each batch re-runs only the strata it affects",
    )
    p_datalog.add_argument("--out", help="directory to write result CSVs "
                                         "(one per derived predicate)")
    p_datalog.add_argument("--limit", type=int, default=20,
                           help="max rows to print per predicate without --out")
    p_datalog.add_argument(
        "--driver", default=None,
        choices=("generic", "leapfrog", "yannakakis", "panda"),
        help="round-0 rule-body strategy (delta rounds are driver-"
             "independent; results are bit-identical regardless)",
    )
    p_datalog.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="fan each round's delta-join terms out over N worker "
             "processes (results bit-identical to serial)",
    )
    p_datalog.add_argument(
        "--backend", default=None,
        choices=("interpreted", "vectorized"),
        help="execution kernels: tuple-at-a-time interpreter or numpy "
             "block kernels (bit-identical results; default: "
             "$REPRO_BACKEND, else vectorized when numpy is available)",
    )
    p_datalog.add_argument("--stats", action="store_true",
                           help="report fixpoint, plan-cache and work totals")
    p_datalog.set_defaults(func=cmd_datalog)

    p_serve = sub.add_parser(
        "serve",
        help="materialize a query, then apply change-feed batches "
             "(incrementally with --apply-deltas, else recomputing)",
    )
    p_serve.add_argument("statement", help="full/Boolean CQ text")
    serve_src = p_serve.add_mutually_exclusive_group(required=True)
    serve_src.add_argument("--data",
                           help="directory of CSV relations (header = schema)")
    serve_src.add_argument(
        "--data-dir", dest="data_dir",
        help="persisted database directory (see `repro ingest`)",
    )
    p_serve.add_argument(
        "--changes",
        help="directory of <relation>.changes.csv feeds (header op,...; "
             "rows '+,v1,v2' insert / '-,v1,v2' delete), one batch per "
             "file, applied in sorted filename order",
    )
    p_serve.add_argument(
        "--apply-deltas", action="store_true",
        help="maintain the materialized result by delta joins instead of "
             "recomputing each batch from scratch (bit-identical results)",
    )
    p_serve.add_argument(
        "--concurrent", action="store_true",
        help="serve a mixed read/write workload concurrently: one writer "
             "thread maintains the view through the IVM path while "
             "--readers threads answer snapshot-pinned reads (MVCC: every "
             "read is bit-identical to a frozen copy at its pinned epoch); "
             "--stats reports p50/p99 read latency, sustained batches/sec, "
             "and snapshot-epoch spread",
    )
    p_serve.add_argument(
        "--readers", type=int, default=4, metavar="N",
        help="reader threads for --concurrent (default 4)",
    )
    p_serve.add_argument(
        "--driver", default=None,
        choices=("generic", "leapfrog", "yannakakis", "panda"),
        help="execution strategy (default generic)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="fan work out over N worker processes (shards when "
             "recomputing, delta-join terms when maintaining)",
    )
    p_serve.add_argument(
        "--backend", default=None,
        choices=("interpreted", "vectorized"),
        help="execution kernels: tuple-at-a-time interpreter or numpy "
             "block kernels (bit-identical results; default: "
             "$REPRO_BACKEND, else vectorized when numpy is available)",
    )
    p_serve.add_argument("--stats", action="store_true",
                         help="report maintenance, plan-cache and work totals")
    p_serve.set_defaults(func=cmd_serve)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away; exit quietly.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
