"""The planner: build PANDA plans once, cache them, execute them many times.

A :class:`PandaPlan` is everything about a PANDA invocation that does *not*
depend on the data: the bound LP's optimum and dual certificates, the Shannon
flow inequality and witness, the Theorem 5.9 proof sequence with the per-step
witness snapshots Case 4b restarts from, and the degree constraints
supporting each positive δ coordinate.  Profiling shows this pipeline is
~50–80 % of a ``dasubw_plan`` run — and it is identical across databases and
across variable renamings of the instance.

:class:`Planner` is the policy object threaded through
:mod:`repro.core.panda` and all of the :mod:`repro.core.query_plans` drivers:
it canonicalizes each planning request (:mod:`repro.planner.signature`),
serves cached plans re-keyed into the instance's variable names
(:mod:`repro.planner.cache`), and routes every bound query of a driver
through one shared :class:`~repro.planner.batch.BatchedBoundSolver` per
``(universe, constraints)``.

:class:`QueryEngine` is the user-facing facade: construct it once for a
query, call :meth:`QueryEngine.execute` per database; all planning work is
reused across executions (and across isomorphic sub-instances within one).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from repro.bounds.polymatroid import BoundResult, LogConstraint
from repro.core.constraints import ConstraintSet
from repro.exceptions import PandaError
from repro.flows.inequality import FlowInequality, Witness, flow_from_bound
from repro.flows.proof_sequence import ProofStep, construct_proof_sequence
from repro.planner.batch import BatchedBoundSolver
from repro.planner.cache import PlanCache, PlanCacheStats
from repro.planner.signature import (
    rename_bound_result,
    rename_flow_inequality,
    rename_log_constraint,
    rename_set,
    rename_step,
    rename_witness,
)

__all__ = ["PandaPlan", "Planner", "QueryEngine", "build_panda_plan", "rename_plan"]

_ZERO = Fraction(0)

Pair = tuple[frozenset, frozenset]


@dataclass(frozen=True)
class PandaPlan:
    """The data-independent part of one PANDA invocation.

    Attributes:
        universe: the rule's variables, sorted.
        targets: the rule's target sets.
        bound: the maximin bound LP result (λ, δ, σ, μ duals included).
        ineq: the Shannon-flow inequality of the bound's dual (None when
            degenerate).
        witness: its witness (None when degenerate).
        steps: the proof sequence as ``(weight, step, witness snapshot)``
            triples — the snapshot is the evolved (σ, μ) Case 4b needs.
        log_supports: the degree constraint supporting each positive δ pair
            (§6.1 invariant 1); guards are resolved per database at
            execution time.
        constraints_key: fingerprint of the degree constraints the plan was
            built under (sorted ``(x_key, y_key, bound)`` triples) —
            ``panda()`` rejects a plan whose constraints do not match the
            call's, since a stale plan carries a wrong budget.
        degenerate: True when the bound is zero — PANDA falls back to the
            Lemma 4.1 scan model and no proof sequence exists.
    """

    universe: tuple[str, ...]
    targets: tuple[frozenset, ...]
    bound: BoundResult
    ineq: FlowInequality | None
    witness: Witness | None
    steps: tuple[tuple[Fraction, ProofStep, Witness], ...]
    log_supports: Mapping[Pair, LogConstraint]
    constraints_key: tuple = ()
    degenerate: bool = False


def constraints_fingerprint(constraints: ConstraintSet) -> tuple:
    """The order-insensitive identity of a degree-constraint set."""
    return tuple(sorted((c.x_key, c.y_key, c.bound) for c in constraints))


def build_panda_plan(
    universe: Sequence[str],
    targets: Sequence[frozenset],
    constraints: ConstraintSet,
    backend: str = "exact",
    solver: BatchedBoundSolver | None = None,
) -> PandaPlan:
    """Solve the bound LP and construct the proof sequence — no caching.

    This is the single code path for plan construction; the
    :class:`Planner` wraps it with canonicalization and the plan cache, and
    a bare ``panda()`` call (no planner) uses it directly.
    """
    universe = tuple(universe)
    if solver is None:
        solver = BatchedBoundSolver(universe, constraints)
    fingerprint = constraints_fingerprint(constraints)
    bound = solver.solve(list(targets), backend=backend)
    if bound.log_value <= _ZERO:
        return PandaPlan(
            universe=universe,
            targets=tuple(bound.targets),
            bound=bound,
            ineq=None,
            witness=None,
            steps=(),
            log_supports={},
            constraints_key=fingerprint,
            degenerate=True,
        )
    ineq, witness, log_supports = flow_from_bound(bound)
    witness_log: list[Witness] = []
    sequence = construct_proof_sequence(ineq, witness, witness_log=witness_log)
    steps = tuple(
        (ws.weight, ws.step, snapshot)
        for ws, snapshot in zip(sequence, witness_log)
    )
    return PandaPlan(
        universe=universe,
        targets=tuple(bound.targets),
        bound=bound,
        ineq=ineq,
        witness=witness,
        steps=steps,
        log_supports=log_supports,
        constraints_key=fingerprint,
        degenerate=False,
    )


def rename_plan(plan: PandaPlan, mapping: Mapping[str, str]) -> PandaPlan:
    """Translate every component of a plan through a variable bijection."""
    if all(old == new for old, new in mapping.items()):
        return plan
    return PandaPlan(
        universe=tuple(sorted(mapping[v] for v in plan.universe)),
        targets=tuple(rename_set(t, mapping) for t in plan.targets),
        bound=rename_bound_result(plan.bound, mapping),
        ineq=None if plan.ineq is None else rename_flow_inequality(plan.ineq, mapping),
        witness=None if plan.witness is None else rename_witness(plan.witness, mapping),
        steps=tuple(
            (weight, rename_step(step, mapping), rename_witness(snapshot, mapping))
            for weight, step, snapshot in plan.steps
        ),
        log_supports={
            (rename_set(x, mapping), rename_set(y, mapping)): rename_log_constraint(
                c, mapping
            )
            for (x, y), c in plan.log_supports.items()
        },
        constraints_key=tuple(
            sorted(
                (
                    tuple(sorted(mapping[v] for v in x_key)),
                    tuple(sorted(mapping[v] for v in y_key)),
                    bound,
                )
                for x_key, y_key, bound in plan.constraints_key
            )
        ),
        degenerate=plan.degenerate,
    )


class Planner:
    """Plan provider with canonical-signature caching and batched bounds.

    ``cache_plans=False`` disables the plan cache *and* the shared bound
    solvers, so every plan is rebuilt from scratch — the pre-planner
    behavior, kept as the baseline arm of ``benchmarks/bench_plan_cache.py``.
    """

    #: Retained bound solvers (each holds a full polymatroid program with its
    #: cloned-base LP rows): least-recently-used beyond this many are dropped,
    #: so a long-lived planner fed a stream of changing constraint sets stays
    #: bounded like its plan cache.
    MAX_SOLVERS = 32

    def __init__(
        self, cache: PlanCache | None = None, cache_plans: bool = True
    ) -> None:
        self.cache = cache if cache is not None else PlanCache()
        self.cache_plans = cache_plans
        self._solvers: OrderedDict[tuple, BatchedBoundSolver] = OrderedDict()

    @property
    def stats(self) -> PlanCacheStats:
        return self.cache.stats

    def bound_solver(
        self,
        universe: Sequence[str],
        constraints: ConstraintSet,
        function_class: str = "polymatroid",
    ) -> BatchedBoundSolver:
        """The shared bound solver for this (universe, DC, class) triple."""
        key = (tuple(universe), constraints, function_class)
        solver = self._solvers.get(key)
        if solver is None:
            solver = BatchedBoundSolver(universe, constraints, function_class)
            self._solvers[key] = solver
            while len(self._solvers) > self.MAX_SOLVERS:
                self._solvers.popitem(last=False)
        else:
            self._solvers.move_to_end(key)
        return solver

    def plan_rule(
        self,
        universe: Sequence[str],
        targets: Iterable[frozenset],
        constraints: ConstraintSet,
        backend: str = "exact",
    ) -> PandaPlan:
        """A plan for the disjunctive rule, from cache when possible.

        Cache keys are canonical signatures, so a hit may come from an
        isomorphic instance with different variable names; the stored plan is
        then re-keyed through the composed renaming before it is returned.
        """
        universe = tuple(universe)
        targets = tuple(targets)
        if not self.cache_plans:
            return build_panda_plan(
                universe, list(targets), constraints, backend=backend
            )
        exact_key = self.cache.instance_key(universe, targets, constraints)
        instance_plan = self.cache.lookup_instance((exact_key, backend))
        if instance_plan is not None:
            return instance_plan
        sig_key, canonical_to_instance = self.cache.signature(
            universe, targets, constraints, exact_key=exact_key
        )
        key = (sig_key, backend)
        entry = self.cache.get(key)
        if entry is not None:
            mapping = {
                stored: instance
                for stored, instance in zip(
                    entry.canonical_to_instance, canonical_to_instance
                )
            }
            plan = rename_plan(entry.plan, mapping)
        else:
            plan = build_panda_plan(
                universe,
                list(targets),
                constraints,
                backend=backend,
                solver=self.bound_solver(universe, constraints),
            )
            self.cache.put(key, plan, canonical_to_instance)
        self.cache.store_instance((exact_key, backend), plan)
        return plan


class QueryEngine:
    """Plan a query once; execute it against many databases.

    Example:
        >>> engine = QueryEngine(cycle_query(4))        # doctest: +SKIP
        >>> first = engine.execute(database_monday)     # cold: plans + runs
        >>> second = engine.execute(database_tuesday)   # warm: plans cached
        >>> engine.cache_stats.hit_rate                 # doctest: +SKIP
    """

    DRIVERS = ("dasubw", "dafhtw", "panda_full", "tree_decomposition")

    def __init__(
        self,
        query,
        constraints: ConstraintSet | None = None,
        backend: str = "exact",
        planner: Planner | None = None,
        pin_constraints: bool = False,
        execution_backend: str | None = None,
    ) -> None:
        self.query = query
        self.constraints = constraints
        self.backend = backend
        # ``backend`` picks the LP solver for the planning layer;
        # ``execution_backend`` picks the tuple-at-a-time interpreted driver
        # or the numpy block driver for the execution layer (``None`` defers
        # to ``REPRO_BACKEND`` / auto-detection at execute time).
        if execution_backend is not None:
            from repro.relational.backend import resolve_backend

            resolve_backend(execution_backend)  # fail fast on a typo
        self.execution_backend = execution_backend
        self.planner = planner if planner is not None else Planner()
        self.pin_constraints = pin_constraints
        self._pinned: ConstraintSet | None = None
        self._decompositions = None

    @property
    def cache_stats(self) -> PlanCacheStats:
        return self.planner.stats

    def _query_decompositions(self):
        if self._decompositions is None:
            from repro.decompositions.enumeration import tree_decompositions

            self._decompositions = tree_decompositions(self.query.hypergraph())
        return self._decompositions

    def execute(
        self,
        database,
        driver: str = "dasubw",
        constraints: ConstraintSet | None = None,
    ):
        """Evaluate the query on one database with the chosen driver.

        Constraint resolution: an explicit ``constraints`` argument wins,
        then the engine-level constraints, then the database's extracted
        cardinalities.  Plans are cached across calls whenever the resolved
        constraints (and hence the bound LPs) coincide.

        With ``pin_constraints`` the cardinalities extracted on the *first*
        execute are reused for every later one, so a stream of slightly
        different databases (the incremental engine's version bumps) keeps
        hitting the same cached plans — the plan is data-independent, and
        only its guards re-resolve per database.  The pin is dropped
        automatically when a database outgrows it (a relation larger than
        its pinned bound would leave a degree constraint unguarded), which
        re-extracts and re-plans once.
        """
        from repro.core import query_plans
        from repro.relational.backend import scoped_backend

        if constraints is None:
            constraints = self.constraints
        if constraints is None and self.pin_constraints:
            pinned = self._pinned
            if pinned is not None and database.satisfies(pinned):
                constraints = pinned
            else:
                constraints = database.extract_cardinalities()
                self._pinned = constraints
        if constraints is None:
            constraints = database.extract_cardinalities()
        with scoped_backend(self.execution_backend):
            if driver == "dasubw":
                return query_plans.dasubw_plan(
                    self.query,
                    database,
                    constraints=constraints,
                    decompositions=self._query_decompositions(),
                    backend=self.backend,
                    planner=self.planner,
                )
            if driver == "dafhtw":
                return query_plans.dafhtw_plan(
                    self.query,
                    database,
                    constraints=constraints,
                    decompositions=self._query_decompositions(),
                    backend=self.backend,
                    planner=self.planner,
                )
            if driver == "panda_full":
                return query_plans.panda_full_query(
                    self.query,
                    database,
                    constraints=constraints,
                    backend=self.backend,
                    planner=self.planner,
                )
            if driver == "tree_decomposition":
                return query_plans.tree_decomposition_plan(
                    self.query,
                    database,
                    constraints=constraints,
                    decompositions=self._query_decompositions(),
                    backend=self.backend,
                    planner=self.planner,
                )
        raise PandaError(
            f"unknown driver {driver!r}; pick from {self.DRIVERS}"
        )
