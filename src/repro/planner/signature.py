"""Canonical plan signatures and variable-renaming utilities.

A PANDA plan — the bound LP's optimum, its dual witness, and the proof
sequence built from it — depends only on ``(universe, targets, degree
constraints)``, never on the data.  Two instances that differ by a variable
renaming (and by atom/constraint order) therefore share a plan up to that
renaming: every bag of a cycle query, for example, is isomorphic to every
other bag under a rotation.

:func:`rule_signature` computes a *canonical signature* of an instance on the
PR 1 mask kernel: subsets become masks under the universe's :class:`VarMap`,
and a canonical bit permutation is chosen so that isomorphic instances map to
the identical signature key.  The permutation search is pruned by an
isomorphism-invariant per-bit profile (which targets/constraints a bit
participates in, by size and bound), so only bits that are genuinely
interchangeable are permuted; universes larger than
:data:`MAX_CANONICAL_SEARCH` variables fall back to the identity labelling
(exact-match caching only — still sound, just less sharing).

The ``rename_*`` helpers translate every plan component (bound results, flow
inequalities, witnesses, proof steps, supports) through a variable bijection;
:class:`repro.planner.cache.PlanCache` hits use them to re-key a stored plan
into the requesting instance's variable names.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable, Mapping, Sequence

from repro.bounds.polymatroid import BoundResult, LogConstraint
from repro.core.constraints import DegreeConstraint
from repro.core.varmap import VarMap
from repro.flows.inequality import FlowInequality, Witness
from repro.flows.proof_sequence import ProofStep

__all__ = [
    "MAX_CANONICAL_SEARCH",
    "rule_signature",
    "rename_set",
    "rename_pair_dict",
    "rename_witness",
    "rename_flow_inequality",
    "rename_step",
    "rename_degree_constraint",
    "rename_log_constraint",
    "rename_bound_result",
]

#: Beyond this universe size the canonical permutation search is skipped and
#: the identity labelling used instead (sound; caching then only matches
#: instances with identical variable names).
MAX_CANONICAL_SEARCH = 7


def _remap_mask(mask: int, perm: Sequence[int]) -> int:
    """Apply a bit permutation (``perm[i]`` = new position of bit ``i``)."""
    out = 0
    while mask:
        bit = mask & -mask
        out |= 1 << perm[bit.bit_length() - 1]
        mask ^= bit
    return out


def _encode(
    perm: Sequence[int],
    target_masks: Sequence[int],
    constraint_items: Sequence[tuple[int, int, int]],
) -> tuple:
    targets = tuple(sorted(_remap_mask(m, perm) for m in target_masks))
    constraints = tuple(
        sorted(
            (_remap_mask(x, perm), _remap_mask(y, perm), bound)
            for x, y, bound in constraint_items
        )
    )
    return (targets, constraints)


def _bit_profile(
    bit: int,
    target_masks: Sequence[int],
    constraint_items: Sequence[tuple[int, int, int]],
) -> tuple:
    """An isomorphism-invariant description of one bit's incidences."""
    probe = 1 << bit
    in_targets = tuple(
        sorted((mask.bit_count(), 1 if mask & probe else 0) for mask in target_masks)
    )
    in_constraints = tuple(
        sorted(
            (
                x.bit_count(),
                y.bit_count(),
                bound,
                1 if x & probe else 0,
                1 if y & probe else 0,
            )
            for x, y, bound in constraint_items
        )
    )
    return (in_targets, in_constraints)


def _minimizing_permutation(
    n: int,
    target_masks: Sequence[int],
    constraint_items: Sequence[tuple[int, int, int]],
) -> tuple[int, ...]:
    """The bit permutation whose encoding is lexicographically least.

    Bits are first partitioned by :func:`_bit_profile`; only bits sharing a
    profile are interchangeable, so the search space is the product of the
    per-class factorials rather than ``n!``.
    """
    classes: dict[tuple, list[int]] = {}
    for bit in range(n):
        classes.setdefault(
            _bit_profile(bit, target_masks, constraint_items), []
        ).append(bit)
    ordered = [classes[key] for key in sorted(classes)]
    # Class ``k`` occupies the slot range right after class ``k-1``.
    slot_ranges: list[range] = []
    start = 0
    for members in ordered:
        slot_ranges.append(range(start, start + len(members)))
        start += len(members)

    best_encoding: tuple | None = None
    best_perm: tuple[int, ...] | None = None
    for arrangement in _class_arrangements(ordered):
        perm = [0] * n
        for members, slots in zip(arrangement, slot_ranges):
            for bit, slot in zip(members, slots):
                perm[bit] = slot
        encoding = _encode(perm, target_masks, constraint_items)
        if best_encoding is None or encoding < best_encoding:
            best_encoding = encoding
            best_perm = tuple(perm)
    assert best_perm is not None
    return best_perm


def _class_arrangements(classes: list[list[int]]):
    """All ways to order the members within every profile class."""
    if not classes:
        yield []
        return
    head, *tail = classes
    for rest in _class_arrangements(tail):
        for ordering in permutations(head):
            yield [list(ordering), *rest]


def rule_signature(
    universe: Sequence[str],
    targets: Iterable[frozenset],
    constraints: Iterable[DegreeConstraint],
) -> tuple[tuple, tuple[str, ...]]:
    """The canonical signature of a ``(targets, hypergraph, DC)`` instance.

    The hypergraph is implicit in the constraint set: every guarded degree
    constraint names its edge through ``Y`` (cardinality constraints are the
    edges themselves), which is exactly the structure the bound LP sees.

    Returns:
        ``(key, canonical_to_instance)`` where ``key`` is hashable, equal
        across instances that differ only by a variable renaming and by
        target/constraint order, and ``canonical_to_instance[p]`` is the
        instance variable at canonical position ``p`` (the witness of the
        canonicalization, used to translate cached plans between instances).
    """
    universe = tuple(universe)
    vm = VarMap.of(universe)
    n = vm.n
    target_masks = sorted(vm.mask_of(t) for t in targets)
    constraint_items = sorted(
        (vm.mask_of(c.x), vm.mask_of(c.y), c.bound) for c in constraints
    )
    if n > MAX_CANONICAL_SEARCH:
        perm: tuple[int, ...] = tuple(range(n))
    else:
        perm = _minimizing_permutation(n, target_masks, constraint_items)
    encoding = _encode(perm, target_masks, constraint_items)
    key = (n, *encoding)
    canonical_to_instance = tuple(
        universe[bit] for bit in sorted(range(n), key=lambda b: perm[b])
    )
    return key, canonical_to_instance


# -- renaming -------------------------------------------------------------------


def rename_set(subset: frozenset, mapping: Mapping[str, str]) -> frozenset:
    return frozenset(mapping[v] for v in subset)


def rename_pair_dict(values: Mapping, mapping: Mapping[str, str]) -> dict:
    return {
        (rename_set(x, mapping), rename_set(y, mapping)): v
        for (x, y), v in values.items()
    }


def rename_witness(witness: Witness, mapping: Mapping[str, str]) -> Witness:
    return Witness(
        rename_pair_dict(witness.sigma, mapping),
        rename_pair_dict(witness.mu, mapping),
    )


def rename_flow_inequality(
    ineq: FlowInequality, mapping: Mapping[str, str]
) -> FlowInequality:
    return FlowInequality(
        tuple(sorted(mapping[v] for v in ineq.universe)),
        {rename_set(b, mapping): w for b, w in ineq.lam.items()},
        rename_pair_dict(ineq.delta, mapping),
    )


def rename_step(step: ProofStep, mapping: Mapping[str, str]) -> ProofStep:
    return ProofStep(
        step.kind,
        rename_set(step.first, mapping),
        rename_set(step.second, mapping),
    )


def rename_degree_constraint(
    constraint: DegreeConstraint, mapping: Mapping[str, str]
) -> DegreeConstraint:
    return DegreeConstraint(
        tuple(sorted(mapping[v] for v in constraint.x_key)),
        tuple(sorted(mapping[v] for v in constraint.y_key)),
        constraint.bound,
    )


def rename_log_constraint(
    constraint: LogConstraint, mapping: Mapping[str, str]
) -> LogConstraint:
    origin = constraint.origin
    return LogConstraint(
        tuple(sorted(mapping[v] for v in constraint.x_key)),
        tuple(sorted(mapping[v] for v in constraint.y_key)),
        constraint.log_bound,
        origin=None if origin is None else rename_degree_constraint(origin, mapping),
    )


def rename_bound_result(bound: BoundResult, mapping: Mapping[str, str]) -> BoundResult:
    return BoundResult(
        log_value=bound.log_value,
        h_values={rename_set(s, mapping): v for s, v in bound.h_values.items()},
        lambda_weights={
            rename_set(b, mapping): w for b, w in bound.lambda_weights.items()
        },
        delta=rename_pair_dict(bound.delta, mapping),
        sigma=rename_pair_dict(bound.sigma, mapping),
        mu=rename_pair_dict(bound.mu, mapping),
        constraint_for_pair={
            (rename_set(x, mapping), rename_set(y, mapping)): rename_log_constraint(
                c, mapping
            )
            for (x, y), c in bound.constraint_for_pair.items()
        },
        targets=tuple(rename_set(t, mapping) for t in bound.targets),
    )
