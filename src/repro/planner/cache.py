"""A bounded, statistics-keeping cache of PANDA plans.

:class:`PlanCache` maps canonical signatures (:mod:`repro.planner.signature`)
to fully-built plans — bound result, flow inequality, witness, proof sequence
steps with their Case-4b witness snapshots, and the supporting degree
constraints.  Entries are evicted least-recently-used beyond ``maxsize``.

The cache also memoizes the signature *search* itself: canonicalization runs
a pruned permutation search, so repeated planning of the textually identical
instance (the common case — the same query re-evaluated against fresh data)
short-circuits through an exact-encoding memo and never re-searches.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro.core.constraints import DegreeConstraint
from repro.planner.signature import rule_signature

__all__ = ["PlanCache", "PlanCacheStats"]


@dataclass
class PlanCacheStats:
    """Hit/miss counters of one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __str__(self) -> str:
        return (
            f"{self.hits} hit(s), {self.misses} miss(es) "
            f"(hit rate {self.hit_rate:.1%}), {self.evictions} eviction(s)"
        )


@dataclass
class _Entry:
    """A cached plan plus the canonical labelling it was stored under."""

    plan: object
    canonical_to_instance: tuple[str, ...]


class PlanCache:
    """LRU cache: canonical signature -> plan (with hit/miss statistics)."""

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.stats = PlanCacheStats()
        self._entries: OrderedDict[Hashable, _Entry] = OrderedDict()
        #: exact instance encoding -> (signature key, canonical_to_instance);
        #: bounded alongside the entries (signatures are tiny tuples).
        self._signature_memo: dict[Hashable, tuple[tuple, tuple[str, ...]]] = {}
        #: exact instance encoding -> plan already re-keyed to that instance,
        #: so repeated planning of the textually identical instance skips
        #: both the signature search and the renaming pass.  Plans are
        #: immutable values, so this never needs invalidation — only the
        #: size bound below.
        self._instance_memo: dict[Hashable, object] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def instance_key(
        self,
        universe: Sequence[str],
        targets: Iterable[frozenset],
        constraints: Iterable[DegreeConstraint],
    ) -> tuple:
        """The exact (order-normalized, rename-*sensitive*) instance encoding."""
        return (
            tuple(universe),
            tuple(sorted(tuple(sorted(t)) for t in targets)),
            tuple(sorted((c.x_key, c.y_key, c.bound) for c in constraints)),
        )

    def signature(
        self,
        universe: Sequence[str],
        targets: Iterable[frozenset],
        constraints: Iterable[DegreeConstraint],
        exact_key: tuple | None = None,
    ) -> tuple[tuple, tuple[str, ...]]:
        """Memoized :func:`repro.planner.signature.rule_signature`."""
        if exact_key is None:
            exact_key = self.instance_key(universe, targets, constraints)
        memo = self._signature_memo
        cached = memo.get(exact_key)
        if cached is None:
            if len(memo) >= 8 * self.maxsize:
                memo.clear()
            cached = rule_signature(tuple(universe), exact_key[1], constraints)
            memo[exact_key] = cached
        return cached

    def lookup_instance(self, key: Hashable) -> object | None:
        """An instance-memo probe; counts a hit when it lands (never a miss —
        the canonical lookup that follows does the miss accounting)."""
        plan = self._instance_memo.get(key)
        if plan is not None:
            self.stats.hits += 1
        return plan

    def store_instance(self, key: Hashable, plan: object) -> None:
        if len(self._instance_memo) >= 8 * self.maxsize:
            self._instance_memo.clear()
        self._instance_memo[key] = plan

    def get(self, key: Hashable) -> _Entry | None:
        """Look up a plan entry, counting the hit/miss and touching LRU order."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(
        self, key: Hashable, plan: object, canonical_to_instance: tuple[str, ...]
    ) -> None:
        self._entries[key] = _Entry(plan, canonical_to_instance)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self._signature_memo.clear()
        self._instance_memo.clear()
        self.stats = PlanCacheStats()
