"""Batched bound solves over one shared :class:`PolymatroidProgram`.

``dasubw_plan`` runs one bound LP per selector image and ``dafhtw_plan`` one
per candidate bag — all over the *same* universe and degree constraints.
Before the planner landed, every one of those calls rebuilt the full LP
(elemental submodularity/monotonicity rows plus degree rows) from scratch.
:class:`BatchedBoundSolver` holds a single program per ``(universe, DC,
function class)``: the shared rows are assembled once and cloned per target
set (see :meth:`LPModel.clone <repro.lp.model.LPModel.clone>`), and solved
target sets are memoized so textually repeated bound queries are free.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.bounds.polymatroid import (
    BoundResult,
    LogConstraint,
    PolymatroidProgram,
    constraints_to_log,
)
from repro.core.constraints import ConstraintSet, DegreeConstraint

__all__ = ["BatchedBoundSolver"]


class BatchedBoundSolver:
    """Solve many bound queries against one shared polymatroid program.

    Target order is preserved exactly as given (LP row order determines the
    exact dual witness, and callers — notably ``panda()`` — expect the same
    pivot sequence a from-scratch build would produce); the memo key is the
    ordered target tuple.
    """

    def __init__(
        self,
        universe: Sequence[str],
        constraints: ConstraintSet | Iterable[DegreeConstraint | LogConstraint],
        function_class: str = "polymatroid",
    ) -> None:
        rows: list[LogConstraint] = []
        for constraint in constraints:
            if isinstance(constraint, LogConstraint):
                rows.append(constraint)
            else:
                rows.extend(constraints_to_log([constraint]))
        self.program = PolymatroidProgram(universe, rows, function_class)
        self._results: dict[tuple, BoundResult] = {}

    @property
    def solves(self) -> int:
        """Number of distinct LPs actually solved (memo misses)."""
        return len(self._results)

    def solve(
        self,
        targets: Sequence[frozenset] | frozenset,
        backend: str = "exact",
    ) -> BoundResult:
        """``max_h min_B h(B)`` for the target set, memoized."""
        if isinstance(targets, frozenset):
            target_list = [targets]
        else:
            target_list = [frozenset(t) for t in targets]
        key = (tuple(tuple(sorted(t)) for t in target_list), backend)
        result = self._results.get(key)
        if result is None:
            result = self.program.maximize(target_list, backend=backend)
            self._results[key] = result
        return result
