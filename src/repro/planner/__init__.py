"""Planner subsystem: plan once, execute many (see :mod:`repro.planner.engine`).

Architecture layer 6 (see ``docs/architecture.md``).  Contract: plans
are data-independent and renaming-invariant — one plan per isomorphism
class, identical results with or without a cache hit.

Layers: :mod:`~repro.planner.signature` (renaming-invariant canonical
signatures on the mask kernel), :mod:`~repro.planner.cache` (bounded LRU
plan cache with hit/miss statistics), :mod:`~repro.planner.batch` (bound
solves sharing one polymatroid program per universe/constraints), and
:mod:`~repro.planner.engine` (the :class:`Planner` policy object and the
:class:`QueryEngine` facade wired through PANDA and all query drivers).
"""

from repro.planner.batch import BatchedBoundSolver
from repro.planner.cache import PlanCache, PlanCacheStats
from repro.planner.engine import (
    PandaPlan,
    Planner,
    QueryEngine,
    build_panda_plan,
    rename_plan,
)
from repro.planner.signature import rule_signature

__all__ = [
    "BatchedBoundSolver",
    "PandaPlan",
    "PlanCache",
    "PlanCacheStats",
    "Planner",
    "QueryEngine",
    "build_panda_plan",
    "rename_plan",
    "rule_signature",
]
