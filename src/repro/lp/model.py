"""Named-variable linear-program builder.

All LPs in the paper are naturally indexed by *sets of query variables* (the
coordinates of a set function ``h``) and by *constraint identities* (a degree
constraint, an elemental submodularity, a monotonicity).  This module provides
a small modelling layer that lets the bound/width/flow code build LPs over
hashable variable and constraint names, solve them with either the exact
rational simplex or the scipy backend, and read primal/dual values back by
name.

Example:
    >>> from fractions import Fraction
    >>> m = LPModel()
    >>> m.add_variable("x", objective=1)
    >>> m.add_variable("y", objective=1)
    >>> m.add_le_constraint("cap", {"x": 1, "y": 2}, Fraction(4))
    >>> sol = m.maximize()
    >>> sol.objective
    Fraction(4, 1)
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Iterable, Mapping

from repro.exceptions import LPError
from repro.lp import simplex

__all__ = ["LPModel", "LPSolution"]


@dataclass(frozen=True)
class LPSolution:
    """Solution of a named LP.

    Attributes:
        objective: optimal objective value.
        values: optimal value of each named variable.
        duals: optimal dual value of each named constraint (``>= 0``; duals of
            ``<=`` rows of a maximization).
        pivots: simplex pivot count (0 for the scipy backend).
    """

    objective: Fraction
    values: dict[Hashable, Fraction]
    duals: dict[Hashable, Fraction]
    pivots: int = 0

    def nonzero_duals(self) -> dict[Hashable, Fraction]:
        """Return only the constraints with a strictly positive dual value."""
        return {name: v for name, v in self.duals.items() if v > 0}


class LPModel:
    """A maximization LP ``max c'x : Ax <= b, x >= 0`` over named entities.

    Variables and constraints are identified by arbitrary hashable names
    (frozensets of query variables, constraint dataclasses, strings...).
    Insertion order is preserved, which makes solutions deterministic.
    """

    def __init__(self) -> None:
        self._var_index: dict[Hashable, int] = {}
        self._objective: list[Fraction] = []
        self._con_names: list[Hashable] = []
        self._con_seen: set[Hashable] = set()
        self._con_rows: list[dict[int, Fraction]] = []
        self._con_rhs: list[Fraction] = []

    # -- construction ---------------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self._var_index)

    @property
    def num_constraints(self) -> int:
        return len(self._con_names)

    def variables(self) -> list[Hashable]:
        """Return variable names in insertion order."""
        return list(self._var_index)

    def add_variable(self, name: Hashable, objective: Fraction | int = 0) -> None:
        """Register a non-negative variable with the given objective weight."""
        if name in self._var_index:
            raise LPError(f"duplicate variable {name!r}")
        self._var_index[name] = len(self._objective)
        self._objective.append(Fraction(objective))

    def has_variable(self, name: Hashable) -> bool:
        return name in self._var_index

    def set_objective(self, name: Hashable, coefficient: Fraction | int) -> None:
        """Overwrite the objective coefficient of an existing variable."""
        self._objective[self._require(name)] = Fraction(coefficient)

    def add_le_constraint(
        self,
        name: Hashable,
        coefficients: Mapping[Hashable, Fraction | int],
        rhs: Fraction | int,
    ) -> None:
        """Add ``sum coefficients[v] * v <= rhs`` (zero coefficients dropped)."""
        if name in self._con_seen:
            raise LPError(f"duplicate constraint {name!r}")
        row: dict[int, Fraction] = {}
        var_index = self._var_index
        for var, coef in coefficients.items():
            if not coef:
                continue
            # Fractions are immutable: reuse caller-held instances (the LP
            # builders feed cached per-universe-size rows) instead of
            # re-allocating one Fraction per coefficient.
            value = coef if type(coef) is Fraction else Fraction(coef)
            try:
                row[var_index[var]] = value
            except KeyError:
                raise LPError(f"unknown variable {var!r}") from None
        self._con_names.append(name)
        self._con_seen.add(name)
        self._con_rows.append(row)
        self._con_rhs.append(rhs if type(rhs) is Fraction else Fraction(rhs))

    def clone(
        self,
        prefix_constraints: Iterable[
            tuple[Hashable, Mapping[Hashable, Fraction | int], Fraction | int]
        ] = (),
    ) -> "LPModel":
        """A copy of the model, optionally with constraints *prepended*.

        The copy shares this model's (immutable-by-convention) row dicts, so
        cloning a large base model costs list copies only — the batched bound
        solvers build the class/degree rows once per universe and clone per
        target set.  ``prefix_constraints`` rows (``(name, coefficients,
        rhs)``) are inserted *before* the existing rows, preserving the row
        order the exact simplex pivots on; their names must not collide with
        existing constraint names.
        """
        out = LPModel.__new__(LPModel)
        out._var_index = dict(self._var_index)
        out._objective = list(self._objective)
        out._con_names = []
        out._con_seen = set()
        out._con_rows = []
        out._con_rhs = []
        for name, coefficients, rhs in prefix_constraints:
            if name in self._con_seen:
                raise LPError(f"duplicate constraint {name!r}")
            out.add_le_constraint(name, coefficients, rhs)
        out._con_names.extend(self._con_names)
        out._con_seen.update(self._con_seen)
        out._con_rows.extend(self._con_rows)
        out._con_rhs.extend(self._con_rhs)
        return out

    def _require(self, name: Hashable) -> int:
        try:
            return self._var_index[name]
        except KeyError:
            raise LPError(f"unknown variable {name!r}") from None

    # -- solving --------------------------------------------------------------------

    def maximize(self, backend: str = "exact") -> LPSolution:
        """Solve the model.

        Args:
            backend: ``"exact"`` for the rational simplex (exact optimum and
                duals); ``"scipy"`` for the HiGHS float backend (fast, used by
                the large width LPs).

        Returns:
            The :class:`LPSolution`.
        """
        if backend == "exact":
            return self._maximize_exact()
        if backend == "scipy":
            from repro.lp.scipy_backend import maximize_with_scipy

            return maximize_with_scipy(self)
        raise LPError(f"unknown backend {backend!r}")

    def _maximize_exact(self) -> LPSolution:
        result = simplex.solve_max_sparse(
            self._con_rows, self._con_rhs, self._objective
        )
        values = {name: result.x[j] for name, j in self._var_index.items()}
        duals = {
            name: result.y[i] for i, name in enumerate(self._con_names)
        }
        return LPSolution(result.objective, values, duals, pivots=result.pivots)

    # -- introspection (used by the scipy backend and tests) -------------------------

    def dense_data(
        self,
    ) -> tuple[list[list[Fraction]], list[Fraction], list[Fraction]]:
        """Return ``(A, b, c)`` in dense form with variables in insertion order."""
        n = len(self._objective)
        a = []
        for row in self._con_rows:
            dense = [Fraction(0)] * n
            for j, coef in row.items():
                dense[j] = coef
            a.append(dense)
        return a, list(self._con_rhs), list(self._objective)

    def sparse_data(
        self,
    ) -> tuple[list[dict[int, Fraction]], list[Fraction], list[Fraction]]:
        """Return ``(rows, b, c)`` with rows as ``{column: coefficient}`` dicts.

        The row dicts are the model's internal storage — treat them as
        read-only (the exact backend shares them the same way; copying
        thousands of 2^n-column rows per solve would double assembly cost).
        """
        return (self._con_rows, list(self._con_rhs), list(self._objective))

    def constraint_names(self) -> list[Hashable]:
        return list(self._con_names)

    def check_feasible(
        self, values: Mapping[Hashable, Fraction], tolerance: Fraction = Fraction(0)
    ) -> bool:
        """Check whether a named assignment satisfies all constraints."""
        index_to_name = {j: v for v, j in self._var_index.items()}
        for row, rhs in zip(self._con_rows, self._con_rhs):
            total = sum(
                (coef * Fraction(values.get(index_to_name[j], 0)) for j, coef in row.items()),
                Fraction(0),
            )
            if total > rhs + tolerance:
                return False
        return True


def lp_from_rows(
    rows: Iterable[tuple[Hashable, Mapping[Hashable, Fraction], Fraction]],
    objective: Mapping[Hashable, Fraction],
) -> LPModel:
    """Convenience constructor: build a model from constraint rows.

    Variables are created on first use (in objective order first).
    """
    model = LPModel()
    for var, coef in objective.items():
        model.add_variable(var, coef)
    for name, coeffs, rhs in rows:
        for var in coeffs:
            if not model.has_variable(var):
                model.add_variable(var, 0)
        model.add_le_constraint(name, coeffs, rhs)
    return model
