"""Floating-point LP backend (scipy / HiGHS).

The exact rational simplex in :mod:`repro.lp.simplex` is the source of truth
for everything that feeds PANDA (witnesses, proof sequences).  Width
computations over larger hypergraphs (e.g. the Example 7.4 family, where the
set-function LP has ``2^n - 1`` variables) do not need exact duals, only
values; for those this module wraps :func:`scipy.optimize.linprog`.

Dual values are recovered from HiGHS marginals and rationalized with a small
denominator limit, because every LP in this package has a rational optimum
with small denominators (Cramer bound of Proposition B.13).
"""

from __future__ import annotations

from fractions import Fraction

try:  # optional extra: `pip install repro-panda[lp]`
    import numpy as np
    from scipy import sparse
    from scipy.optimize import linprog
except ImportError:  # pragma: no cover - exercised only without the extra
    np = sparse = linprog = None

from repro.exceptions import InfeasibleError, LPError, UnboundedError
from repro.lp.model import LPModel, LPSolution

__all__ = ["maximize_with_scipy", "rationalize"]

#: Denominator cap when converting float LP output back to Fractions.  The
#: optima encountered in this package (widths, bound exponents) have tiny
#: denominators; 10^6 leaves a huge safety margin while suppressing float fuzz.
_DENOMINATOR_LIMIT = 10**6


def rationalize(value: float, limit: int = _DENOMINATOR_LIMIT) -> Fraction:
    """Convert a float to a nearby small-denominator Fraction."""
    return Fraction(value).limit_denominator(limit)


def maximize_with_scipy(model: LPModel) -> LPSolution:
    """Solve ``max c'x : Ax <= b, x >= 0`` with HiGHS and rationalize."""
    if linprog is None:
        raise LPError(
            "the floating-point LP backend needs numpy and scipy "
            "(pip install repro-panda[lp]); use backend='exact' instead"
        )
    a_rows, b, c = model.sparse_data()
    n = len(c)
    m = len(b)
    if n == 0:
        return LPSolution(Fraction(0), {}, {name: Fraction(0) for name in model.constraint_names()})
    c_vec = np.array([float(v) for v in c])
    b_vec = np.array([float(v) for v in b])
    if m:
        # Assemble the sparse rows straight into COO triplets — the model
        # stores {column: coefficient} dicts, so no dense detour is needed.
        row_idx: list[int] = []
        col_idx: list[int] = []
        data: list[float] = []
        for i, row in enumerate(a_rows):
            for j, coef in row.items():
                row_idx.append(i)
                col_idx.append(j)
                data.append(float(coef))
        a_mat = sparse.coo_matrix(
            (data, (row_idx, col_idx)), shape=(m, n)
        ).tocsr()
        result = linprog(
            -c_vec, A_ub=a_mat, b_ub=b_vec, bounds=(0, None), method="highs"
        )
    else:
        result = linprog(-c_vec, bounds=(0, None), method="highs")
    if result.status == 2:
        raise InfeasibleError("scipy/HiGHS reports infeasible")
    if result.status == 3:
        raise UnboundedError("scipy/HiGHS reports unbounded")
    if result.status != 0:
        raise LPError(f"scipy/HiGHS failed with status {result.status}: {result.message}")

    objective = rationalize(-float(result.fun))
    values = {
        name: rationalize(float(result.x[j]))
        for name, j in zip(model.variables(), range(n))
    }
    if m:
        marginals = result.ineqlin.marginals
        duals = {
            name: rationalize(max(0.0, -float(marginals[i])))
            for i, name in enumerate(model.constraint_names())
        }
    else:
        duals = {}
    return LPSolution(objective, values, duals)
