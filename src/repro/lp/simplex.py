"""Exact rational simplex solver (sparse, integer-pivoting tableau).

The paper's machinery (Shannon-flow witnesses, proof sequences, PANDA budgets)
requires *exact rational* primal and dual solutions of linear programs: the
proof-sequence construction of Theorem 5.9 manipulates dual coordinates with a
common denominator ``D``, and Definition 5.7's non-negativity conditions are
meaningless under floating-point noise.  This module therefore implements a
two-phase primal simplex with Bland's anti-cycling rule whose every decision
is made in exact arithmetic.

The solver handles the canonical form

    maximize    c' x
    subject to  A x <= b
                x >= 0

with arbitrary-sign ``b`` (phase 1 introduces artificial variables for rows
whose slack basis would be infeasible).  On success it reports the exact
optimal objective, an optimal basic primal solution ``x``, and the associated
dual solution ``y`` (one value per constraint row, ``y >= 0``), read off the
reduced costs of the slack columns.  Strong duality ``c'x = b'y`` is asserted
before returning.

**Representation.**  The LPs solved here are mask-indexed set-function
programs: elemental Shannon rows carry at most four nonzero coefficients among
``2^n`` columns, so rows are stored sparsely as ``{column: int}`` dicts.  To
avoid :class:`~fractions.Fraction` object overhead in the pivot inner loop,
each row ``i`` is kept as an integer numerator vector ``N_i`` with a single
positive integer denominator ``D_i`` (``row == N_i / D_i`` exactly).  Pivoting
on ``(r, c)`` with ``p = N_r[c]`` updates ``N_k <- N_k * p - N_k[c] * N_r``
and ``D_k <- D_k * p`` followed by a gcd reduction — pure machine-integer
arithmetic, no intermediate rounding anywhere.

Pivot *selection* (Bland's smallest-index entering column on reduced-cost
signs; minimum-ratio leaving row via cross-multiplication with a smallest
basis-index tie-break) compares exactly the same rational quantities as a
plain Fraction tableau, so the pivot sequence — and hence the reported
optimal basis, primal values, and duals — is identical to the historical
dense rational implementation, just much faster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from math import gcd, lcm
from typing import Mapping, Sequence

from repro.exceptions import InfeasibleError, LPError, UnboundedError

__all__ = ["SimplexResult", "solve_max", "solve_max_sparse"]

_ZERO = Fraction(0)


@dataclass(frozen=True)
class SimplexResult:
    """Exact optimal solution of ``max c'x : Ax <= b, x >= 0``.

    Attributes:
        objective: the optimal objective value ``c'x``.
        x: optimal primal solution, one value per structural variable.
        y: optimal dual solution, one value per constraint row.  ``y`` is
            feasible for the dual ``min b'y : A'y >= c, y >= 0`` and satisfies
            strong duality ``b'y == objective``.
        pivots: number of simplex pivots performed (both phases).
    """

    objective: Fraction
    x: tuple[Fraction, ...]
    y: tuple[Fraction, ...]
    pivots: int = field(default=0, compare=False)


class _Tableau:
    """Sparse integer-pivoting simplex tableau (see module docstring).

    Column layout: ``n`` structural variables, then ``m`` slacks, then any
    artificial variables appended by phase 1.  Row ``i`` represents the exact
    rational row ``nums[i] / dens[i]`` with ``dens[i] > 0``; the column basic
    in row ``i`` (``basis[i]``) always has real value 1, i.e.
    ``nums[i][basis[i]] == dens[i]``.
    """

    def __init__(
        self,
        rows: Sequence[Mapping[int, Fraction]],
        b: Sequence[Fraction],
        n: int,
    ):
        self.m = len(rows)
        self.n = n
        self.nums: list[dict[int, int]] = []
        self.dens: list[int] = []
        self.rhs: list[int] = []
        self.basis: list[int] = []
        self.pivots = 0
        for i in range(self.m):
            coeffs = {j: Fraction(v) for j, v in rows[i].items() if v}
            rhs = Fraction(b[i])
            if coeffs:
                den = lcm(
                    rhs.denominator,
                    *(v.denominator for v in coeffs.values()),
                )
            else:
                den = rhs.denominator
            num = {j: int(v * den) for j, v in coeffs.items()}
            num[self.n + i] = den  # slack column, real coefficient 1
            self.nums.append(num)
            self.dens.append(den)
            self.rhs.append(int(rhs * den))
            self.basis.append(self.n + i)
        self.ncols = self.n + self.m

    # -- real-value accessors --------------------------------------------------------

    def real_rhs(self, i: int) -> Fraction:
        return Fraction(self.rhs[i], self.dens[i])

    # -- elementary row operations -------------------------------------------------

    def _pivot(self, row: int, col: int) -> None:
        """Make ``col`` basic in ``row`` by exact integer Gaussian elimination."""
        nums = self.nums
        pivot_row = nums[row]
        p = pivot_row[col]
        pivot_items = list(pivot_row.items())
        pivot_rhs = self.rhs[row]
        for i in range(self.m):
            if i == row:
                continue
            target = nums[i]
            f = target.get(col)
            if not f:
                continue
            # The whole row is rescaled by p (its denominator becomes D*p),
            # then the pivot row is subtracted at its nonzero columns.
            target = {j: v * p for j, v in target.items()}
            for j, pv in pivot_items:
                value = target.get(j, 0) - f * pv
                if value:
                    target[j] = value
                else:
                    target.pop(j, None)
            nums[i] = target
            self.rhs[i] = self.rhs[i] * p - f * pivot_rhs
            den = self.dens[i] * p
            if den < 0:
                den = -den
                nums[i] = target = {j: -v for j, v in target.items()}
                self.rhs[i] = -self.rhs[i]
            # gcd-reduce once entries outgrow a machine word; reducing on
            # every pivot costs more gcd calls than the big-int ops it saves.
            if den.bit_length() > 64:
                g = gcd(den, self.rhs[i])
                for v in target.values():
                    if g == 1:
                        break
                    g = gcd(g, v)
                if g > 1:
                    den //= g
                    self.rhs[i] //= g
                    nums[i] = {j: v // g for j, v in target.items()}
            self.dens[i] = den
        # The pivot row itself is renormalized so ``col`` has real value 1:
        # new real row = old row / real_pivot, i.e. numerators unchanged with
        # denominator ``p`` (the old row denominator cancels exactly).
        if p < 0:
            nums[row] = {j: -v for j, v in pivot_row.items()}
            self.rhs[row] = -pivot_rhs
            p = -p
        g = gcd(p, self.rhs[row])
        for v in nums[row].values():
            if g == 1:
                break
            g = gcd(g, v)
        if g > 1:
            self.dens[row] = p // g
            self.rhs[row] //= g
            nums[row] = {j: v // g for j, v in nums[row].items()}
        else:
            self.dens[row] = p
        self.basis[row] = col
        self.pivots += 1

    # -- the core optimizer ---------------------------------------------------------

    def optimize(self, cost: list[int], allowed: int) -> tuple[list[int], int]:
        """Run primal simplex with Bland's rule on columns ``< allowed``.

        Args:
            cost: *integer* objective coefficients (maximization), length
                ``>= allowed``; callers pre-scale rational objectives.
            allowed: number of leading columns eligible to enter the basis.

        Returns:
            ``(zbar, scale)`` where ``zbar[j] / scale`` is the exact reduced
            cost ``c_B B^{-1} A_j - c_j`` at optimum (``scale > 0``, so signs
            are directly readable from ``zbar``).

        Raises:
            UnboundedError: if an entering column has no blocking row.
        """
        while True:
            zbar, scale = self._reduced_costs(cost)
            entering = -1
            for j in range(allowed):
                if zbar[j] < 0:
                    entering = j  # Bland: smallest index with negative zbar.
                    break
            if entering < 0:
                return zbar, scale
            leaving = self._ratio_test(entering)
            if leaving < 0:
                raise UnboundedError(
                    f"objective unbounded along column {entering}"
                )
            self._pivot(leaving, entering)

    def _reduced_costs(self, cost: list[int]) -> tuple[list[int], int]:
        """Compute ``zbar[j] = scale * (c_basis . B^-1 A_j - cost[j])`` exactly.

        ``scale`` is the lcm of the denominators of rows with a costed basic
        variable, so the returned vector is integral with positive scale.
        """
        ncost = len(cost)
        scale = 1
        for i in range(self.m):
            basic = self.basis[i]
            if basic < ncost and cost[basic]:
                scale = lcm(scale, self.dens[i])
        zbar = [-cost[j] * scale if j < ncost else 0 for j in range(self.ncols)]
        for i in range(self.m):
            basic = self.basis[i]
            cb = cost[basic] if basic < ncost else 0
            if not cb:
                continue
            mult = cb * (scale // self.dens[i])
            for j, v in self.nums[i].items():
                zbar[j] += mult * v
        return zbar, scale

    def _ratio_test(self, col: int) -> int:
        """Bland-compatible minimum-ratio test; returns the leaving row.

        The candidate ratio of row ``i`` is ``rhs[i] / nums[i][col]`` (the
        row denominator cancels); candidates need real coefficient > 0, and
        comparisons cross-multiply with positive denominators.
        """
        best_row = -1
        best_num = 0  # ratio numerator (rhs) of current best
        best_coef = 0  # ratio denominator (positive pivot coefficient)
        for i in range(self.m):
            coef = self.nums[i].get(col, 0)
            if coef <= 0:
                continue
            num = self.rhs[i]
            if best_row < 0:
                better = True
                tie = False
            else:
                lhs = num * best_coef
                rhs = best_num * coef
                better = lhs < rhs
                tie = lhs == rhs
            if better or (tie and self.basis[i] < self.basis[best_row]):
                best_row = i
                best_num = num
                best_coef = coef
        return best_row

    # -- phase 1 --------------------------------------------------------------------

    def make_feasible(self) -> None:
        """Restore ``rhs >= 0`` via artificial variables and a phase-1 solve."""
        negative_rows = [i for i in range(self.m) if self.rhs[i] < 0]
        if not negative_rows:
            return
        # Flip infeasible rows and give each an artificial basic column.
        art_cols: list[int] = []
        for i in negative_rows:
            self.nums[i] = {j: -v for j, v in self.nums[i].items()}
            self.rhs[i] = -self.rhs[i]
        for i in negative_rows:
            col = self.ncols + len(art_cols)
            art_cols.append(col)
            self.nums[i][col] = self.dens[i]  # real coefficient 1
            self.basis[i] = col
        self.ncols += len(art_cols)
        # Phase 1: maximize -(sum of artificials).
        phase1_cost = [0] * self.ncols
        for col in art_cols:
            phase1_cost[col] = -1
        self.optimize(phase1_cost, allowed=self.ncols)
        art_set = set(art_cols)
        infeasibility = sum(
            (self.real_rhs(i) for i in range(self.m) if self.basis[i] in art_set),
            _ZERO,
        )
        if infeasibility != _ZERO:
            raise InfeasibleError("phase 1 terminated with positive artificials")
        # Drive any degenerate artificial out of the basis.
        limit = self.n + self.m
        for i in range(self.m):
            if self.basis[i] not in art_set:
                continue
            candidates = [j for j in self.nums[i] if j < limit and self.nums[i][j]]
            if candidates:
                self._pivot(i, min(candidates))
            # A fully zero row is redundant; its artificial stays basic at 0,
            # which is harmless for phase 2 (cost 0, never entering).
        # Truncate artificial columns.
        for i in range(self.m):
            row = self.nums[i]
            for j in [j for j in row if j >= limit]:
                del row[j]
        self.ncols = limit


def solve_max_sparse(
    rows: Sequence[Mapping[int, Fraction]],
    b: Sequence[Fraction],
    c: Sequence[Fraction],
) -> SimplexResult:
    """Solve ``max c'x : Ax <= b, x >= 0`` exactly from sparse constraint rows.

    Args:
        rows: one ``{column index: coefficient}`` mapping per constraint; the
            number of structural variables is ``len(c)``.
        b: right-hand sides, one per row.
        c: objective coefficients (defines the column count).

    Returns:
        A :class:`SimplexResult` with exact optimal primal and dual solutions.

    Raises:
        InfeasibleError: if no ``x >= 0`` satisfies ``Ax <= b``.
        UnboundedError: if the objective is unbounded above.
        LPError: on dimension mismatches.
    """
    m = len(rows)
    n = len(c)
    if len(b) != m:
        raise LPError(f"b has length {len(b)}, expected {m}")
    for i, row in enumerate(rows):
        for j in row:
            if not 0 <= j < n:
                raise LPError(f"row {i} references column {j}, expected 0..{n - 1}")
    c_frac = [Fraction(v) for v in c]
    if m == 0:
        # No constraints: optimum is 0 iff c <= 0, else unbounded.
        if any(v > _ZERO for v in c_frac):
            raise UnboundedError("no constraints and a positive cost coefficient")
        return SimplexResult(_ZERO, tuple(_ZERO for _ in range(n)), ())

    tableau = _Tableau(rows, [Fraction(v) for v in b], n)
    tableau.make_feasible()
    # Scale the objective to integers; positive scaling preserves every
    # reduced-cost sign, so pivoting is unaffected and duals divide it out.
    c_scale = lcm(1, *(v.denominator for v in c_frac)) if c_frac else 1
    cost = [int(v * c_scale) for v in c_frac] + [0] * tableau.m
    zbar, zscale = tableau.optimize(cost, allowed=tableau.ncols)

    x = [_ZERO] * n
    objective = _ZERO
    for i in range(tableau.m):
        col = tableau.basis[i]
        if col < n:
            value = tableau.real_rhs(i)
            x[col] = value
            objective += c_frac[col] * value
    # Dual values are the reduced costs of the slack columns.
    dual_den = c_scale * zscale
    y = tuple(Fraction(zbar[n + i], dual_den) for i in range(m))
    # Sanity: strong duality must hold exactly.
    dual_objective = sum(
        (Fraction(b[i]) * y[i] for i in range(m)), _ZERO
    )
    if dual_objective != objective:
        raise LPError(
            "strong duality violated: primal "
            f"{objective} != dual {dual_objective} (solver bug)"
        )
    return SimplexResult(objective, tuple(x), y, pivots=tableau.pivots)


def solve_max(
    a: Sequence[Sequence[Fraction]],
    b: Sequence[Fraction],
    c: Sequence[Fraction],
) -> SimplexResult:
    """Solve ``max c'x : Ax <= b, x >= 0`` exactly from a dense matrix.

    Args:
        a: constraint matrix with ``m`` rows and ``n`` columns (any values
            convertible to :class:`~fractions.Fraction`).
        b: right-hand sides, length ``m``.
        c: objective coefficients, length ``n``.

    Returns:
        A :class:`SimplexResult` with exact optimal primal and dual solutions.

    Raises:
        InfeasibleError: if no ``x >= 0`` satisfies ``Ax <= b``.
        UnboundedError: if the objective is unbounded above.
        LPError: on dimension mismatches.
    """
    n = len(c)
    for i, row in enumerate(a):
        if len(row) != n:
            raise LPError(f"row {i} has length {len(row)}, expected {n}")
    rows = [
        {j: Fraction(v) for j, v in enumerate(row) if Fraction(v)} for row in a
    ]
    return solve_max_sparse(rows, b, c)
