"""Exact rational simplex solver.

The paper's machinery (Shannon-flow witnesses, proof sequences, PANDA budgets)
requires *exact rational* primal and dual solutions of linear programs: the
proof-sequence construction of Theorem 5.9 manipulates dual coordinates with a
common denominator ``D``, and Definition 5.7's non-negativity conditions are
meaningless under floating-point noise.  This module therefore implements a
dense two-phase primal simplex over :class:`fractions.Fraction` with Bland's
anti-cycling rule.

The solver handles the canonical form

    maximize    c' x
    subject to  A x <= b
                x >= 0

with arbitrary-sign ``b`` (phase 1 introduces artificial variables for rows
whose slack basis would be infeasible).  On success it reports the exact
optimal objective, an optimal basic primal solution ``x``, and the associated
dual solution ``y`` (one value per constraint row, ``y >= 0``), read off the
reduced costs of the slack columns.  Strong duality ``c'x = b'y`` is asserted
before returning.

The LPs solved in this package have at most a few hundred rows/columns
(set-function LPs over ``2^[n]`` for ``n <= 8``), for which a careful dense
rational tableau is perfectly adequate.  A floating-point backend
(:mod:`repro.lp.scipy_backend`) exists for the larger width computations that
do not require exactness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

from repro.exceptions import InfeasibleError, LPError, UnboundedError

__all__ = ["SimplexResult", "solve_max"]

_ZERO = Fraction(0)
_ONE = Fraction(1)


@dataclass(frozen=True)
class SimplexResult:
    """Exact optimal solution of ``max c'x : Ax <= b, x >= 0``.

    Attributes:
        objective: the optimal objective value ``c'x``.
        x: optimal primal solution, one value per structural variable.
        y: optimal dual solution, one value per constraint row.  ``y`` is
            feasible for the dual ``min b'y : A'y >= c, y >= 0`` and satisfies
            strong duality ``b'y == objective``.
        pivots: number of simplex pivots performed (both phases).
    """

    objective: Fraction
    x: tuple[Fraction, ...]
    y: tuple[Fraction, ...]
    pivots: int = field(default=0, compare=False)


def _to_fraction_matrix(rows: Sequence[Sequence[Fraction]]) -> list[list[Fraction]]:
    return [[Fraction(v) for v in row] for row in rows]


class _Tableau:
    """Dense simplex tableau over exact rationals.

    Column layout: ``n`` structural variables, then ``m`` slacks, then any
    artificial variables appended by phase 1.  ``self.rows[i]`` stores the
    constraint row ``i`` in the current basis representation, ``self.rhs[i]``
    its right-hand side, and ``self.basis[i]`` the column currently basic in
    row ``i``.
    """

    def __init__(self, a: Sequence[Sequence[Fraction]], b: Sequence[Fraction]):
        self.m = len(a)
        self.n = len(a[0]) if self.m else 0
        self.rows: list[list[Fraction]] = []
        self.rhs: list[Fraction] = []
        self.basis: list[int] = []
        self.pivots = 0
        # Append slack columns (identity).
        for i in range(self.m):
            row = [Fraction(v) for v in a[i]]
            row.extend(_ONE if j == i else _ZERO for j in range(self.m))
            self.rows.append(row)
            self.rhs.append(Fraction(b[i]))
            self.basis.append(self.n + i)
        self.ncols = self.n + self.m

    # -- elementary row operations -------------------------------------------------

    def _pivot(self, row: int, col: int) -> None:
        """Make ``col`` basic in ``row`` by Gaussian elimination."""
        pivot_row = self.rows[row]
        pivot_val = pivot_row[col]
        if pivot_val != _ONE:
            inv = _ONE / pivot_val
            self.rows[row] = pivot_row = [v * inv for v in pivot_row]
            self.rhs[row] *= inv
        for i in range(self.m):
            if i == row:
                continue
            factor = self.rows[i][col]
            if factor == _ZERO:
                continue
            target = self.rows[i]
            self.rows[i] = [
                tv - factor * pv if pv else tv for tv, pv in zip(target, pivot_row)
            ]
            self.rhs[i] -= factor * self.rhs[row]
        self.basis[row] = col
        self.pivots += 1

    # -- the core optimizer ---------------------------------------------------------

    def optimize(self, cost: list[Fraction], allowed: int) -> list[Fraction]:
        """Run primal simplex with Bland's rule on columns ``< allowed``.

        Args:
            cost: objective coefficients (maximization), length ``>= allowed``.
            allowed: number of leading columns eligible to enter the basis.

        Returns:
            The reduced-cost row ``zbar`` of length ``self.ncols`` at optimum,
            where ``zbar[j] = c_B B^{-1} A_j - c_j >= 0`` for eligible ``j``.

        Raises:
            UnboundedError: if an entering column has no blocking row.
        """
        while True:
            zbar = self._reduced_costs(cost)
            entering = -1
            for j in range(allowed):
                if zbar[j] < _ZERO:
                    entering = j  # Bland: smallest index with negative zbar.
                    break
            if entering < 0:
                return zbar
            leaving = self._ratio_test(entering)
            if leaving < 0:
                raise UnboundedError(
                    f"objective unbounded along column {entering}"
                )
            self._pivot(leaving, entering)

    def _reduced_costs(self, cost: list[Fraction]) -> list[Fraction]:
        """Compute ``zbar[j] = sum_i c_basis[i] * rows[i][j] - cost[j]``."""
        zbar = [-cost[j] if j < len(cost) else _ZERO for j in range(self.ncols)]
        for i in range(self.m):
            cb = cost[self.basis[i]] if self.basis[i] < len(cost) else _ZERO
            if cb == _ZERO:
                continue
            row = self.rows[i]
            for j in range(self.ncols):
                rv = row[j]
                if rv:
                    zbar[j] += cb * rv
        return zbar

    def _ratio_test(self, col: int) -> int:
        """Bland-compatible minimum-ratio test; returns the leaving row."""
        best_row = -1
        best_ratio: Fraction | None = None
        for i in range(self.m):
            coef = self.rows[i][col]
            if coef <= _ZERO:
                continue
            ratio = self.rhs[i] / coef
            if (
                best_ratio is None
                or ratio < best_ratio
                or (ratio == best_ratio and self.basis[i] < self.basis[best_row])
            ):
                best_ratio = ratio
                best_row = i
        return best_row

    # -- phase 1 --------------------------------------------------------------------

    def make_feasible(self) -> None:
        """Restore ``rhs >= 0`` via artificial variables and a phase-1 solve."""
        negative_rows = [i for i in range(self.m) if self.rhs[i] < _ZERO]
        if not negative_rows:
            return
        # Flip infeasible rows and give each an artificial basic column.
        art_cols: list[int] = []
        for i in negative_rows:
            self.rows[i] = [-v for v in self.rows[i]]
            self.rhs[i] = -self.rhs[i]
        for i in negative_rows:
            col = self.ncols + len(art_cols)
            art_cols.append(col)
            for k in range(self.m):
                self.rows[k].append(_ONE if k == i else _ZERO)
            self.basis[i] = col
        self.ncols += len(art_cols)
        # Phase 1: maximize -(sum of artificials).
        phase1_cost = [_ZERO] * self.ncols
        for col in art_cols:
            phase1_cost[col] = Fraction(-1)
        self.optimize(phase1_cost, allowed=self.ncols)
        infeasibility = sum(
            (self.rhs[i] for i in range(self.m) if self.basis[i] in set(art_cols)),
            _ZERO,
        )
        if infeasibility != _ZERO:
            raise InfeasibleError("phase 1 terminated with positive artificials")
        # Drive any degenerate artificial out of the basis.
        art_set = set(art_cols)
        for i in range(self.m):
            if self.basis[i] not in art_set:
                continue
            pivot_col = next(
                (
                    j
                    for j in range(self.n + self.m)
                    if self.rows[i][j] != _ZERO
                ),
                None,
            )
            if pivot_col is not None:
                self._pivot(i, pivot_col)
            # A fully zero row is redundant; its artificial stays basic at 0,
            # which is harmless for phase 2 (cost 0, never entering).
        # Truncate artificial columns.
        for i in range(self.m):
            self.rows[i] = self.rows[i][: self.n + self.m]
        self.ncols = self.n + self.m


def solve_max(
    a: Sequence[Sequence[Fraction]],
    b: Sequence[Fraction],
    c: Sequence[Fraction],
) -> SimplexResult:
    """Solve ``max c'x : Ax <= b, x >= 0`` exactly.

    Args:
        a: constraint matrix with ``m`` rows and ``n`` columns (any values
            convertible to :class:`~fractions.Fraction`).
        b: right-hand sides, length ``m``.
        c: objective coefficients, length ``n``.

    Returns:
        A :class:`SimplexResult` with exact optimal primal and dual solutions.

    Raises:
        InfeasibleError: if no ``x >= 0`` satisfies ``Ax <= b``.
        UnboundedError: if the objective is unbounded above.
        LPError: on dimension mismatches.
    """
    m = len(a)
    n = len(c)
    if len(b) != m:
        raise LPError(f"b has length {len(b)}, expected {m}")
    for i, row in enumerate(a):
        if len(row) != n:
            raise LPError(f"row {i} has length {len(row)}, expected {n}")
    if m == 0:
        # No constraints: optimum is 0 iff c <= 0, else unbounded.
        if any(Fraction(v) > _ZERO for v in c):
            raise UnboundedError("no constraints and a positive cost coefficient")
        return SimplexResult(_ZERO, tuple(_ZERO for _ in range(n)), ())

    tableau = _Tableau(_to_fraction_matrix(a), [Fraction(v) for v in b])
    tableau.make_feasible()
    cost = [Fraction(v) for v in c] + [_ZERO] * tableau.m
    zbar = tableau.optimize(cost, allowed=tableau.ncols)

    x = [_ZERO] * n
    objective = _ZERO
    for i in range(tableau.m):
        col = tableau.basis[i]
        if col < n:
            x[col] = tableau.rhs[i]
            objective += cost[col] * tableau.rhs[i]
    # Dual values are the reduced costs of the slack columns.
    y = tuple(zbar[n + i] for i in range(m))
    # Sanity: strong duality must hold exactly.
    dual_objective = sum(
        (Fraction(b[i]) * y[i] for i in range(m)), _ZERO
    )
    if dual_objective != objective:
        raise LPError(
            "strong duality violated: primal "
            f"{objective} != dual {dual_objective} (solver bug)"
        )
    return SimplexResult(objective, tuple(x), y, pivots=tableau.pivots)
