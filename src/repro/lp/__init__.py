"""Linear-programming substrate (architecture layer 2 — ``docs/architecture.md``).

Two backends behind one modelling interface:

* :mod:`repro.lp.simplex` — exact rational two-phase simplex (primal + dual),
  the source of truth for Shannon-flow witnesses and PANDA budgets;
* :mod:`repro.lp.scipy_backend` — HiGHS float backend for the larger width
  LPs that only need values.

Use :class:`repro.lp.model.LPModel` to build LPs over named variables.
"""

from repro.lp.model import LPModel, LPSolution
from repro.lp.simplex import SimplexResult, solve_max

__all__ = ["LPModel", "LPSolution", "SimplexResult", "solve_max"]
