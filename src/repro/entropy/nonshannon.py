"""Non-Shannon information inequalities (Zhang–Yeung [50]).

The Zhang–Yeung inequality — the first proof that ``cl(Γ*_4) ⊊ Γ_4`` — in the
form the paper uses (Eq. 51)::

    h(AB) + 4h(AXY) + h(BXY)
        <= 3h(XY) + 3h(AX) + 3h(AY) + h(BX) + h(BY)
           - h(A) - 2h(X) - 2h(Y).

Instantiating it on every 4-tuple of query variables and adding the rows to
the polymatroid LP gives a *tighter outer bound* on the entropic region: this
is exactly the device of Theorem 1.3 and Lemma 4.5, where finitely many
instantiations separate the entropic bound (``<= 43/11 log N``) from the
polymatroid bound (``= 4 log N``).
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable, Iterator

from repro.core.setfunctions import SetFunction
from repro.core.varmap import VarMap

__all__ = [
    "zhang_yeung_coefficients",
    "zhang_yeung_mask_coefficients",
    "zhang_yeung_rows",
    "zhang_yeung_mask_rows",
    "violates_zhang_yeung",
]


def zhang_yeung_coefficients(
    a: str, b: str, x: str, y: str
) -> dict[frozenset, int]:
    """LP row coefficients of the ZY inequality on ``(A,B,X,Y)``.

    Returns ``coeffs`` such that the inequality reads ``coeffs · h <= 0``:

        +1·AB +4·AXY +1·BXY −3·XY −3·AX −3·AY −1·BX −1·BY +1·A +2·X +2·Y <= 0.
    """
    f = frozenset
    return {
        f((a, b)): 1,
        f((a, x, y)): 4,
        f((b, x, y)): 1,
        f((x, y)): -3,
        f((a, x)): -3,
        f((a, y)): -3,
        f((b, x)): -1,
        f((b, y)): -1,
        f((a,)): 1,
        f((x,)): 2,
        f((y,)): 2,
    }


def zhang_yeung_mask_coefficients(
    vm: VarMap, a: str, b: str, x: str, y: str
) -> dict[int, int]:
    """Mask-keyed LP row coefficients of the ZY inequality on ``(A,B,X,Y)``."""
    am = 1 << vm.index[a]
    bm = 1 << vm.index[b]
    xm = 1 << vm.index[x]
    ym = 1 << vm.index[y]
    return {
        am | bm: 1,
        am | xm | ym: 4,
        bm | xm | ym: 1,
        xm | ym: -3,
        am | xm: -3,
        am | ym: -3,
        bm | xm: -1,
        bm | ym: -1,
        am: 1,
        xm: 2,
        ym: 2,
    }


def zhang_yeung_rows(
    universe: Iterable[str],
) -> Iterator[tuple[tuple[str, str, str, str], dict[frozenset, int]]]:
    """All distinct ZY instantiations over 4-tuples from ``universe``.

    The inequality is symmetric in ``X <-> Y``, so ordered tuples with
    ``x > y`` are skipped (half the candidates).
    """
    items = sorted(universe)
    for a, b, x, y in permutations(items, 4):
        if x > y:
            continue
        yield (a, b, x, y), zhang_yeung_coefficients(a, b, x, y)


def zhang_yeung_mask_rows(
    vm: VarMap,
) -> Iterator[tuple[tuple[str, str, str, str], dict[int, int]]]:
    """All distinct ZY instantiations over ``vm``'s universe, mask-keyed.

    Same enumeration order as :func:`zhang_yeung_rows`; used by the LP
    builders so no frozenset is hashed per coefficient.
    """
    items = sorted(vm.names)
    for a, b, x, y in permutations(items, 4):
        if x > y:
            continue
        yield (a, b, x, y), zhang_yeung_mask_coefficients(vm, a, b, x, y)


def violates_zhang_yeung(h: SetFunction) -> tuple[str, str, str, str] | None:
    """Return a witnessing 4-tuple if ``h`` violates some ZY instantiation.

    Polymatroids violating ZY (e.g. the Figure 5 function) are exactly the
    certificates that the polymatroid bound overshoots the entropic bound.
    """
    for tup, coeffs in zhang_yeung_mask_rows(h.varmap):
        total = sum(coef * h[mask] for mask, coef in coeffs.items())
        if total > 0:
            return tup
    return None
