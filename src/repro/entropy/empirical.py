"""Empirical entropy of distributions over relations (§1.1, §4.1).

The upper-bound proofs associate to every database/output a joint
distribution on the query variables (uniform over the output tuples, Lemma
4.1) and read off its marginal entropies.  This module computes that entropy
set function for

* a uniform distribution over a relation's tuples, and
* an arbitrary weighted distribution over tuples.

Entropy values are generally irrational; they are stored as tight rational
approximations (``limit_denominator(10^9)``), which keeps
:class:`~repro.core.setfunctions.SetFunction`'s exact predicates meaningful
up to that precision.  Group-system instances with ``p = 2`` have exactly
integral entropies and suffer no approximation at all.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Mapping

from repro.core.setfunctions import SetFunction
from repro.core.varmap import VarMap
from repro.relational.relation import Relation

__all__ = ["uniform_entropy", "distribution_entropy"]

_LIMIT = 10**9


def _entropy_bits(probabilities: list[float]) -> Fraction:
    total = 0.0
    for p in probabilities:
        if p > 0:
            total -= p * math.log2(p)
    if abs(total - round(total)) < 1e-12:
        return Fraction(round(total))
    return Fraction(total).limit_denominator(_LIMIT)


def uniform_entropy(relation: Relation) -> SetFunction:
    """The entropy function of the uniform distribution over ``relation``.

    ``h(A_S)`` is the entropy of the marginal on the ``S``-columns.  This is
    the construction of the entropic-bound proofs: for the Lemma 4.1 scan
    model, ``h(B) = log |T|`` for every target ``B``.
    """
    size = len(relation)
    if size == 0:
        raise ValueError("cannot take the entropy of an empty relation")
    weights = {row: 1.0 / size for row in relation}
    return distribution_entropy(relation, weights)


def distribution_entropy(
    relation: Relation, weights: Mapping[tuple, float]
) -> SetFunction:
    """The entropy function of an arbitrary distribution over the tuples.

    Args:
        relation: supplies the schema (variable names / positions).
        weights: probability of each tuple; must sum to ~1.

    Returns:
        The :class:`SetFunction` ``S -> H(A_S)`` over the relation's schema.
    """
    total = sum(weights.values())
    if not math.isclose(total, 1.0, rel_tol=1e-9):
        raise ValueError(f"weights sum to {total}, expected 1")

    vm = VarMap.of(tuple(relation.schema))
    # Column positions per universe bit, so each mask projects rows directly.
    positions = [relation.position(v) for v in vm.names]

    def h(mask: int) -> Fraction:
        cols = [positions[i] for i in range(vm.n) if mask >> i & 1]
        marginal: dict[tuple, float] = {}
        for row, weight in weights.items():
            key = tuple(row[p] for p in cols)
            marginal[key] = marginal.get(key, 0.0) + weight
        return _entropy_bits(list(marginal.values()))

    return SetFunction.from_mask_callable(relation.schema, h)
