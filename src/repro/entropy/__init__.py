"""Entropy substrate: empirical entropy functions and non-Shannon inequalities."""

from repro.entropy.empirical import distribution_entropy, uniform_entropy
from repro.entropy.nonshannon import (
    violates_zhang_yeung,
    zhang_yeung_coefficients,
    zhang_yeung_rows,
)

__all__ = [
    "distribution_entropy",
    "uniform_entropy",
    "violates_zhang_yeung",
    "zhang_yeung_coefficients",
    "zhang_yeung_rows",
]
