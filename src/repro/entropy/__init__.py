"""Entropy substrate: empirical entropy functions and non-Shannon inequalities.

Architecture layer 3 support (see ``docs/architecture.md``): the
Zhang–Yeung rows feeding the entropic outer bound in
:mod:`repro.bounds.entropic`, and empirical entropies of concrete
distributions for the gap instances.  Exact rational arithmetic
throughout.
"""

from repro.entropy.empirical import distribution_entropy, uniform_entropy
from repro.entropy.nonshannon import (
    violates_zhang_yeung,
    zhang_yeung_coefficients,
    zhang_yeung_rows,
)

__all__ = [
    "distribution_entropy",
    "uniform_entropy",
    "violates_zhang_yeung",
    "zhang_yeung_coefficients",
    "zhang_yeung_rows",
]
