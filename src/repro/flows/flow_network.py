"""Flow-network proof-sequence construction (Appendix B, Algorithm 2 / Thm B.8).

An alternative to the Theorem 5.9 induction: view ``(λ, δ, σ, μ)`` as a flow
network ``G`` on ``2^[n]`` with

* *up arcs* ``(X, Y)`` of capacity ``δ_{Y|X}`` (compositions), and
* *down arcs* ``(Y, X)`` for every ``X ⊂ Y`` of infinite capacity
  (decompositions),

and repeatedly push flow from ``∅`` along shortest paths — either directly to
a target ``B`` with ``λ_B > 0`` (Case 1), or to the ``I`` side of a *good
pair* ``(I, J)`` with ``σ_{I,J} > 0`` whose union is not yet reachable
(Case 2), converting the submodularity into fresh up-arc capacity
``δ_{I∪J|J}``.  Each pushed path emits the corresponding composition /
decomposition steps.

Paths are pushed with their bottleneck capacity rather than the paper's unit
``w = 1/D``, which shortens sequences further; trivial steps (``c_{∅,·}``,
``d_{·,∅}``) are suppressed as in :mod:`repro.flows.proof_sequence`.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.hypergraph import powerset
from repro.exceptions import ProofSequenceError, WitnessError
from repro.flows.inequality import FlowInequality, Witness, verify_witness
from repro.flows.proof_sequence import (
    COMPOSITION,
    DECOMPOSITION,
    SUBMODULARITY,
    ProofSequence,
    ProofStep,
)

__all__ = ["construct_via_flow_network"]

_ZERO = Fraction(0)
_EMPTY = frozenset()


def _reachable(delta: dict, start: frozenset) -> dict[frozenset, tuple]:
    """BFS over up/down arcs; returns ``node -> (predecessor, arc_kind)``."""
    parents: dict[frozenset, tuple] = {start: (None, None)}
    frontier = [start]
    while frontier:
        node = frontier.pop(0)
        # Up arcs out of `node`.
        for (x, y), value in delta.items():
            if x == node and value > _ZERO and y not in parents:
                parents[y] = (node, "up")
                frontier.append(y)
        # Down arcs to every proper subset.
        for sub in powerset(node):
            if sub != node and sub not in parents:
                parents[sub] = (node, "down")
                frontier.append(sub)
    return parents


def _path_to(parents: dict, end: frozenset) -> list[tuple[frozenset, frozenset, str]]:
    """The arc list ``(from, to, kind)`` of the BFS path ``∅ -> end``."""
    arcs: list[tuple[frozenset, frozenset, str]] = []
    node = end
    while True:
        pred, kind = parents[node]
        if pred is None:
            break
        arcs.append((pred, node, kind))
        node = pred
    arcs.reverse()
    return arcs


def _push_path(
    sequence: ProofSequence,
    delta: dict,
    arcs: list[tuple[frozenset, frozenset, str]],
    amount: Fraction,
) -> None:
    """Emit the steps of a pushed path and update δ accordingly."""
    for source, dest, kind in arcs:
        if kind == "up":
            if source != _EMPTY:
                sequence.append(amount, ProofStep(COMPOSITION, source, dest))
            delta[(source, dest)] = delta.get((source, dest), _ZERO) - amount
            if delta[(source, dest)] < _ZERO:
                raise ProofSequenceError("flow push exceeded up-arc capacity")
        else:  # down arc: dest ⊂ source
            if dest != _EMPTY:
                sequence.append(amount, ProofStep(DECOMPOSITION, source, dest))
                delta[(dest, source)] = delta.get((dest, source), _ZERO) + amount
            # d_{Y,∅} is the identity; no conditional mass appears.


def _path_capacity(
    delta: dict, arcs: list[tuple[frozenset, frozenset, str]]
) -> Fraction | None:
    capacity: Fraction | None = None
    for source, dest, kind in arcs:
        if kind == "up":
            available = delta.get((source, dest), _ZERO)
            if capacity is None or available < capacity:
                capacity = available
    return capacity


def construct_via_flow_network(
    ineq: FlowInequality, witness: Witness, max_iterations: int = 100_000
) -> ProofSequence:
    """Algorithm 2: build a proof sequence for ``⟨λ,h⟩ <= ⟨δ,h⟩``.

    Raises:
        WitnessError: if the witness is invalid or the network gets stuck
            (no reachable target and no good pair).
    """
    verify_witness(ineq, witness)
    lam = dict(ineq.lam)
    delta = dict(ineq.delta)
    sigma = dict(witness.sigma)
    sequence = ProofSequence()

    # Pre-pay targets directly coverable from δ_{B|∅} (Algorithm 2 lines 2-3).
    for target in sorted(lam, key=lambda s: tuple(sorted(s))):
        direct = min(lam[target], delta.get((_EMPTY, target), _ZERO))
        if direct > _ZERO:
            lam[target] -= direct
            delta[(_EMPTY, target)] -= direct

    iterations = 0
    while any(v > _ZERO for v in lam.values()):
        iterations += 1
        if iterations > max_iterations:
            raise ProofSequenceError(
                f"flow-network construction exceeded {max_iterations} iterations"
            )
        parents = _reachable(delta, _EMPTY)

        # Case 1: a target with remaining λ is reachable.
        target = next(
            (
                b
                for b in sorted(lam, key=lambda s: tuple(sorted(s)))
                if lam[b] > _ZERO and b in parents
            ),
            None,
        )
        if target is not None:
            arcs = _path_to(parents, target)
            capacity = _path_capacity(delta, arcs)
            amount = lam[target] if capacity is None else min(lam[target], capacity)
            if amount <= _ZERO:
                raise ProofSequenceError("zero-capacity augmenting path")
            _push_path(sequence, delta, arcs, amount)
            lam[target] -= amount
            delta[(_EMPTY, target)] = (
                delta.get((_EMPTY, target), _ZERO) + amount
            )
            # The pushed mass lands at (∅, target) and immediately pays λ.
            delta[(_EMPTY, target)] -= amount
            continue

        # Case 2: spend a good-pair submodularity to open new capacity.
        good = None
        for (i, j), value in sorted(
            sigma.items(), key=lambda kv: tuple(sorted(tuple(sorted(s)) for s in kv[0]))
        ):
            if value <= _ZERO:
                continue
            for first, second in ((i, j), (j, i)):
                if first in parents and (first | second) not in parents:
                    good = ((i, j), first, second, value)
                    break
            if good:
                break
        if good is None:
            raise WitnessError(
                "flow network stuck: no reachable target and no good pair"
            )
        (i, j), first, second, value = good
        arcs = _path_to(parents, first)
        capacity = _path_capacity(delta, arcs)
        amount = value if capacity is None else min(value, capacity)
        if amount <= _ZERO:
            raise ProofSequenceError("zero-capacity path to good pair")
        _push_path(sequence, delta, arcs, amount)
        # The pushed mass sits at (∅, first); decompose + submodularity.
        meet = first & second
        if meet:
            sequence.append(amount, ProofStep(DECOMPOSITION, first, meet))
            delta[(_EMPTY, meet)] = delta.get((_EMPTY, meet), _ZERO) + amount
        sequence.append(amount, ProofStep(SUBMODULARITY, first, second))
        sigma[(i, j)] -= amount
        delta[(second, first | second)] = (
            delta.get((second, first | second), _ZERO) + amount
        )

    return sequence
