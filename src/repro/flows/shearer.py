"""Shearer's lemma as a Shannon-flow inequality (§2.1.1 ↔ §5).

The AGM bound's information-theoretic core is Shearer's lemma [21]: for any
fractional edge cover ``λ`` of ``H`` and any entropic (indeed polymatroid)
``h``,

    h([n])  <=  Σ_F λ_F · h(F).

In the paper's language this is precisely the Shannon-flow inequality
``⟨e_[n], h⟩ <= ⟨δ, h⟩`` with ``δ_{F|∅} = λ_F`` (a special case of Eq. 101),
and Prop. 5.4 guarantees a witness.  This module constructs the inequality
from a cover, *finds a witness by LP feasibility* restricted to elemental
multipliers, and hence — through :func:`repro.flows.construct_proof_sequence`
— yields an explicit four-rule derivation of Shearer's lemma for any given
hypergraph and cover.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from repro.core.hypergraph import Hypergraph
from repro.core.setfunctions import elemental_inequality_mask_rows
from repro.core.varmap import VarMap
from repro.exceptions import WitnessError
from repro.flows.inequality import FlowInequality, Witness, verify_witness
from repro.lp import LPModel

__all__ = ["shearer_inequality", "find_witness"]

_ZERO = Fraction(0)


def shearer_inequality(
    hypergraph: Hypergraph,
    cover: Mapping[int, Fraction] | None = None,
) -> FlowInequality:
    """The Shearer flow inequality of a fractional edge cover.

    Args:
        hypergraph: the query hypergraph.
        cover: edge-index -> weight; defaults to the optimal fractional edge
            cover (so the RHS is the AGM exponent).

    Returns:
        ``h([n]) <= Σ λ_F h(F)`` as a :class:`FlowInequality`.

    Raises:
        WitnessError: if the given weights are not actually a cover (the
            inequality would be false, so no witness exists).
    """
    if cover is None:
        from repro.bounds.edge_covers import fractional_edge_cover

        _, cover = fractional_edge_cover(hypergraph)
    delta: dict = {}
    empty = frozenset()
    for index, weight in cover.items():
        weight = Fraction(weight)
        if weight <= _ZERO:
            continue
        edge = hypergraph.edges[index]
        key = (empty, edge)
        delta[key] = delta.get(key, _ZERO) + weight
    ineq = FlowInequality(
        hypergraph.vertices,
        {hypergraph.vertex_set: Fraction(1)},
        delta,
    )
    # Validity check: a witness must exist iff the weights cover H.
    find_witness(ineq)
    return ineq


def find_witness(ineq: FlowInequality) -> Witness:
    """Find a ``(σ, μ)`` witness by LP feasibility (Prop. 5.6).

    Searches over *elemental* submodularity multipliers and single-step
    monotonicities plus drops ``μ_{∅,Z}`` — the same generating set the bound
    LPs use, which suffices for every inequality arising from them and from
    fractional covers.

    Raises:
        WitnessError: if no witness exists in the elemental search space
            (for inequalities built from valid covers this means the
            inequality itself is false).
    """
    universe = tuple(ineq.universe)
    vm = VarMap.of(universe)
    model = LPModel()
    # Variables: σ per elemental submodularity, μ per single-element
    # monotonicity step and per (∅, Z) drop.  All names carry subset masks;
    # results are converted back to frozensets only once, at the end.
    sub_keys: list[tuple[tuple, int, int]] = []
    for kind, i_mask, j_mask, _coeffs in elemental_inequality_mask_rows(vm.n):
        if kind != "submodularity":
            continue
        key = ("σ", i_mask, j_mask)
        sub_keys.append((key, i_mask, j_mask))
        model.add_variable(key)
    mono_keys: list[tuple[tuple, int, int]] = []
    masks = [m for m in vm.subset_masks() if m]
    for z in masks:
        for bit in vm.bits_by_name(z):
            key = ("μ", z ^ bit, z)
            mono_keys.append((key, z ^ bit, z))
            model.add_variable(key)

    delta_masks = {
        (vm.mask_of(x), vm.mask_of(y)): value
        for (x, y), value in ineq.delta.items()
    }
    lam_masks = {vm.mask_of(b): value for b, value in ineq.lam.items()}

    # inflow(Z) >= λ_Z for every non-empty Z, written as <= rows of the
    # negated inequality.  δ contributions are constants.
    minus_one = Fraction(-1)
    one = Fraction(1)
    for z in masks:
        constant = _ZERO
        for (x, y), value in delta_masks.items():
            if y == z:
                constant += value
            if x == z:
                constant -= value
        coeffs: dict = {}

        def bump(key, amount):
            coeffs[key] = coeffs.get(key, _ZERO) + amount

        for key, i, j in sub_keys:
            if i & j == z or i | j == z:
                bump(key, minus_one)
            if i == z or j == z:
                bump(key, one)
        for key, x, y in mono_keys:
            if y == z:
                bump(key, one)
            if x == z:
                bump(key, minus_one)
        # -inflow_multipliers(Z) <= constant - λ_Z
        model.add_le_constraint(
            ("inflow", z), coeffs, constant - lam_masks.get(z, _ZERO)
        )
    try:
        solution = model.maximize()
    except Exception as error:  # infeasible -> no witness
        raise WitnessError(f"no elemental witness exists: {error}") from error
    sigma: dict = {}
    mu: dict = {}
    for key, value in solution.values.items():
        if value <= _ZERO:
            continue
        kind, a, b = key
        if kind == "σ":
            sigma[(vm.set_of(a), vm.set_of(b))] = value
        else:
            mu[(vm.set_of(a), vm.set_of(b))] = value
    witness = Witness(sigma, mu)
    verify_witness(ineq, witness)
    return witness
