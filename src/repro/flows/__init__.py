"""Shannon-flow inequalities, witnesses, and proof sequences (§5, Appendix B).

Architecture layer 4 (see ``docs/architecture.md``): the objects PANDA
executes — flow inequalities from LP duals, witness normalization, and
Theorem 5.9 proof sequences.  Contract: exact ``Fraction`` end to end
(RL-EXACT enforced) with deterministic step ordering.
"""

from repro.flows.inequality import (
    FlowInequality,
    Witness,
    common_denominator,
    flow_from_bound,
    inflow,
)
from repro.flows.inequality import tighten, verify_witness
from repro.flows.witness_reduction import (
    WitnessNorms,
    normalize_witness,
    reduce_conditioned_mu,
    witness_norms,
)
from repro.flows.polysize import (
    ExtendedFlowNetwork,
    MaxFlowResult,
    construct_via_max_flow,
)
from repro.flows.shearer import find_witness, shearer_inequality
from repro.flows.proof_sequence import (
    COMPOSITION,
    DECOMPOSITION,
    MONOTONICITY,
    SUBMODULARITY,
    ProofSequence,
    ProofStep,
    WeightedStep,
    construct_proof_sequence,
    truncate,
)

__all__ = [
    "COMPOSITION",
    "DECOMPOSITION",
    "MONOTONICITY",
    "SUBMODULARITY",
    "ExtendedFlowNetwork",
    "FlowInequality",
    "MaxFlowResult",
    "ProofSequence",
    "ProofStep",
    "WeightedStep",
    "Witness",
    "WitnessNorms",
    "common_denominator",
    "construct_proof_sequence",
    "construct_via_max_flow",
    "find_witness",
    "flow_from_bound",
    "inflow",
    "normalize_witness",
    "reduce_conditioned_mu",
    "shearer_inequality",
    "tighten",
    "truncate",
    "verify_witness",
    "witness_norms",
]
