"""Witness-norm reduction (Appendix B.1: Lemma B.3, Corollary B.4).

The length of every proof-sequence construction is governed by the norms
``‖σ‖₁, ‖δ‖₁, ‖μ‖₁`` of the witness, which motivates replacing a witness by
an equivalent one with smaller norms before constructing a sequence.

The core rewriting loop is Lemma B.3: repeatedly eliminate monotonicity
multipliers ``μ_{X,Y}`` with ``X != ∅`` by re-routing them through the dual
variable that drains ``inflow(X)`` in a *tight* witness.  The three re-routing
moves (Figure 10), each preserving ``inflow(Z) − λ_Z`` for every ``Z``:

1. ``μ_{W,X}, μ_{X,Y}  ->  μ_{W,Y}``                     (transitive contraction)
2. ``δ_{Y'|X}, μ_{X,Y}  ->  δ_{Y∪Y'|Y}, μ_{Y',Y∪Y'}``    (push μ above the δ arc)
3. ``σ_{X,X'}, μ_{X,Y}  ->  σ_{Y,X'}, μ_{X∪X',Y∪X'}, μ_{X∩X',Y∩X'}``

Degenerate coordinates (``σ`` on comparable sets, ``μ`` or ``δ`` on equal
sets) contribute zero flow and are simply dropped; flow conservation is
re-verified after every move in debug mode.

Corollary B.4's guarantee — ``Σ_{Y⊃X} μ'_{X,Y} <= λ_X`` for every ``X != ∅``,
hence ``Σ_{X != ∅} μ'_{X,Y} <= ‖λ‖₁`` — follows because the loop runs until
no ``X`` carries *excess* conditioned-μ mass beyond ``λ_X``, and in a tight
witness the excess is always matched by a drain that one of the three moves
can consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable

from repro.core.varmap import VarMap
from repro.exceptions import WitnessError
from repro.flows.inequality import (
    FlowInequality,
    Witness,
    tighten,
    verify_witness,
)

__all__ = [
    "WitnessNorms",
    "witness_norms",
    "reduce_conditioned_mu",
    "normalize_witness",
]

_ZERO = Fraction(0)
_EMPTY = frozenset()


@dataclass(frozen=True)
class WitnessNorms:
    """The ℓ₁ norms that bound proof-sequence lengths (Thm 5.9, B.6, B.7).

    Attributes:
        lam: ``‖λ‖₁``.
        delta: ``‖δ‖₁``.
        sigma: ``‖σ‖₁``.
        mu: ``‖μ‖₁``.
        mu_conditioned: ``Σ_{X != ∅} μ_{X,Y}`` — the quantity Cor. B.4 bounds
            by ``‖λ‖₁``.
        unconditioned_delta: ``Σ_Y δ_{Y|∅}`` — the quantity Lemma B.5 bounds
            by ``n·‖λ‖₁``.
    """

    lam: Fraction
    delta: Fraction
    sigma: Fraction
    mu: Fraction
    mu_conditioned: Fraction
    unconditioned_delta: Fraction

    @property
    def theorem_5_9_length(self) -> Fraction:
        """The Theorem 5.9 bound ``3‖σ‖₁ + ‖δ‖₁ + ‖μ‖₁`` (before the ×D)."""
        return 3 * self.sigma + self.delta + self.mu

    @property
    def theorem_b8_length(self) -> Fraction:
        """The Theorem B.8 bound ``‖λ‖₁ + ‖σ‖₁`` (before the ×2^n·D)."""
        return self.lam + self.sigma


def witness_norms(ineq: FlowInequality, witness: Witness) -> WitnessNorms:
    """Compute all length-governing norms of ``(λ, δ, σ, μ)``."""
    mu_conditioned = sum(
        (v for (x, _y), v in witness.mu.items() if x != _EMPTY), _ZERO
    )
    unconditioned = sum(
        (v for (x, _y), v in ineq.delta.items() if x == _EMPTY), _ZERO
    )
    return WitnessNorms(
        lam=ineq.lam_norm,
        delta=ineq.delta_norm,
        sigma=sum(witness.sigma.values(), _ZERO),
        mu=sum(witness.mu.values(), _ZERO),
        mu_conditioned=mu_conditioned,
        unconditioned_delta=unconditioned,
    )


class _State:
    """Mutable (λ, δ, σ, μ) with zero-pruning bumps."""

    def __init__(self, ineq: FlowInequality, witness: Witness) -> None:
        self.universe = ineq.universe
        self.lam = dict(ineq.lam)
        self.delta = dict(ineq.delta)
        self.sigma = dict(witness.sigma)
        self.mu = dict(witness.mu)
        #: mask-kernel interning map: rewrite moves build many fresh unions /
        #: intersections, so canonicalize them to shared frozenset objects.
        self._vm = VarMap.of(self.universe)

    def _intern(self, subset: frozenset) -> frozenset:
        return self._vm.set_of(self._vm.mask_of(subset))

    def bump(self, table: dict, key, amount: Fraction) -> None:
        value = table.get(key, _ZERO) + amount
        if value < _ZERO:
            raise WitnessError(f"reduction drove {key} negative: {value}")
        if value == _ZERO:
            table.pop(key, None)
        else:
            table[key] = value

    def bump_sigma(self, i: frozenset, j: frozenset, amount: Fraction) -> None:
        """Add σ mass, canonicalizing key order and dropping degenerate pairs."""
        if i <= j or j <= i:
            # Comparable pair: s_{I,J} is the identity inequality, zero flow.
            return
        i, j = self._intern(i), self._intern(j)
        if (i, j) in self.sigma:
            key = (i, j)
        elif (j, i) in self.sigma:
            key = (j, i)
        else:
            key = (i, j) if _set_key(i) <= _set_key(j) else (j, i)
        self.bump(self.sigma, key, amount)

    def bump_mu(self, x: frozenset, y: frozenset, amount: Fraction) -> None:
        """Add μ mass, dropping the degenerate ``X == Y`` case (zero flow)."""
        if x == y:
            return
        if not x < y:
            raise WitnessError(f"μ key must be nested: {sorted(x)}, {sorted(y)}")
        self.bump(self.mu, (self._intern(x), self._intern(y)), amount)

    def bump_delta(self, x: frozenset, y: frozenset, amount: Fraction) -> None:
        """Add δ mass, dropping the degenerate ``X == Y`` case (zero flow)."""
        if x == y:
            return
        if not x < y:
            raise WitnessError(f"δ key must be nested: {sorted(x)}, {sorted(y)}")
        self.bump(self.delta, (self._intern(x), self._intern(y)), amount)

    def to_pair(self) -> tuple[FlowInequality, Witness]:
        ineq = FlowInequality(self.universe, dict(self.lam), dict(self.delta))
        witness = Witness(dict(self.sigma), dict(self.mu))
        return ineq, witness


def _set_key(s: Iterable[str]) -> tuple:
    return tuple(sorted(s))


def _conditioned_mu_excess(state: _State) -> list[tuple[frozenset, Fraction]]:
    """All ``X != ∅`` whose conditioned-μ total exceeds ``λ_X``."""
    totals: dict[frozenset, Fraction] = {}
    for (x, _y), value in state.mu.items():
        if x != _EMPTY and value > _ZERO:
            totals[x] = totals.get(x, _ZERO) + value
    out = []
    for x, total in totals.items():
        excess = total - state.lam.get(x, _ZERO)
        if excess > _ZERO:
            out.append((x, excess))
    out.sort(key=lambda pair: (_set_key(pair[0])))
    return out


def _drain_of(state: _State, x: frozenset):
    """A dual variable draining ``inflow(X)``, preferring μ then δ then σ.

    Returns one of ``("mu", (W, X), value)``, ``("delta", (X, Y'), value)``,
    ``("sigma", (I, J), value)`` — or ``None`` when no drain exists (which
    contradicts tightness when an excess is present).
    """
    for (w, y), value in sorted(
        state.mu.items(), key=lambda kv: (_set_key(kv[0][0]), _set_key(kv[0][1]))
    ):
        if y == x and value > _ZERO:
            return ("mu", (w, y), value)
    for (z, y), value in sorted(
        state.delta.items(), key=lambda kv: (_set_key(kv[0][0]), _set_key(kv[0][1]))
    ):
        if z == x and value > _ZERO:
            return ("delta", (z, y), value)
    for (i, j), value in sorted(
        state.sigma.items(), key=lambda kv: (_set_key(kv[0][0]), _set_key(kv[0][1]))
    ):
        if value > _ZERO and (i == x or j == x):
            return ("sigma", (i, j), value)
    return None


def reduce_conditioned_mu(
    ineq: FlowInequality,
    witness: Witness,
    max_moves: int = 100_000,
    check: bool = True,
) -> tuple[FlowInequality, Witness]:
    """Lemma B.3 / Corollary B.4: shrink conditioned monotonicity mass.

    Returns an equivalent inequality/witness pair (same ``λ``, ``δ'`` dominated
    by ``δ`` so the potential ``Σ δ'·n`` never grows) in which every ``X != ∅``
    satisfies ``Σ_{Y⊃X} μ'_{X,Y} <= λ_X``; in particular the conditioned-μ
    total is at most ``‖λ‖₁``.

    Args:
        ineq: a Shannon-flow inequality.
        witness: a valid witness for it.
        max_moves: safety cap on rewriting moves.
        check: re-verify flow conservation after the rewrite.

    Raises:
        WitnessError: if the witness is invalid, conservation breaks (a bug),
            or the move cap is exceeded.
    """
    tight = tighten(ineq, witness)
    state = _State(ineq, tight)

    moves = 0
    while True:
        excesses = _conditioned_mu_excess(state)
        if not excesses:
            break
        x, excess = excesses[0]
        # Pick the largest conditioned μ out of X to shrink.
        candidates = [
            ((x0, y), v)
            for (x0, y), v in state.mu.items()
            if x0 == x and v > _ZERO
        ]
        candidates.sort(key=lambda kv: (_set_key(kv[0][1])))
        (_, y), mu_value = candidates[0]

        drain = _drain_of(state, x)
        if drain is None:
            raise WitnessError(
                f"tight witness has conditioned-μ excess at {sorted(x)} "
                "but no drain (flow accounting bug)"
            )
        kind, key, drain_value = drain
        t = min(mu_value, drain_value, excess)
        if t <= _ZERO:
            raise WitnessError("non-positive reduction amount (bug)")

        state.bump(state.mu, (x, y), -t)
        if kind == "mu":
            w, _ = key
            state.bump(state.mu, key, -t)
            state.bump_mu(w, y, t)
        elif kind == "delta":
            _, y_prime = key
            state.bump(state.delta, key, -t)
            union = y | y_prime
            state.bump_delta(y, union, t)
            state.bump_mu(y_prime, union, t)
        else:  # sigma
            i, j = key
            other = j if i == x else i
            state.bump(state.sigma, key, -t)
            state.bump_sigma(y, other, t)
            state.bump_mu(x | other, y | other, t)
            state.bump_mu(x & other, y & other, t)

        moves += 1
        if moves > max_moves:
            raise WitnessError(
                f"conditioned-μ reduction exceeded {max_moves} moves"
            )

    out_ineq, out_witness = state.to_pair()
    if check:
        verify_witness(out_ineq, out_witness)
        for x, _ in _conditioned_mu_excess(state):
            raise WitnessError(f"residual conditioned-μ excess at {sorted(x)}")
    return out_ineq, out_witness


def normalize_witness(
    ineq: FlowInequality, witness: Witness
) -> tuple[FlowInequality, Witness, WitnessNorms]:
    """The B.1 normalization pipeline: tighten, then reduce conditioned μ.

    Returns the normalized pair together with its norms, ready to feed either
    proof-sequence construction.
    """
    out_ineq, out_witness = reduce_conditioned_mu(ineq, witness)
    norms = witness_norms(out_ineq, out_witness)
    return out_ineq, out_witness, norms
