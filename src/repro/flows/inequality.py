"""Shannon-flow inequalities, inflow, and witnesses (§5.1, Def. 5.1).

A *Shannon-flow inequality* is ``⟨λ, h⟩ <= ⟨δ, h⟩`` over all polymatroids
``h``, where ``λ`` is supported on unconditioned coordinates ``(∅, B)`` (the
targets) and ``δ`` on conditional coordinates ``(X, Y)`` with ``X ⊂ Y``.

Proposition 5.4/5.6: the inequality holds iff there exist ``σ`` (submodularity
multipliers) and ``μ`` (monotonicity multipliers) such that for every
``∅ != Z ⊆ [n]`` the *inflow* (Eq. 74)

    inflow(Z) = Σ_X δ_{Z|X} − Σ_Y δ_{Y|Z}
              + Σ_{I⊥J, I∩J=Z} σ_{I,J} + Σ_{I⊥J, I∪J=Z} σ_{I,J} − Σ_{J⊥Z} σ_{Z,J}
              − Σ_{X⊂Z} μ_{X,Z} + Σ_{Y⊃Z} μ_{Z,Y}

satisfies ``inflow(Z) >= λ_Z``.  Such a ``(σ, μ)`` is a *witness*; it is
*tight* when equality holds everywhere (Def. 5.10).

In this implementation witnesses come from the exact dual solutions of the
bound LPs (:mod:`repro.bounds.polymatroid`), whose submodularity rows are
elemental — a special case of the general form, hence always valid here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

from repro.bounds.polymatroid import BoundResult, LogConstraint
from repro.core.setfunctions import SetFunction
from repro.exceptions import WitnessError

__all__ = [
    "FlowInequality",
    "Witness",
    "active_coordinates",
    "flow_from_bound",
    "common_denominator",
]

_ZERO = Fraction(0)

Pair = tuple[frozenset, frozenset]


def _clean(mapping: Mapping[Pair, Fraction]) -> dict[Pair, Fraction]:
    """Drop zero entries; convert values to Fraction."""
    return {k: Fraction(v) for k, v in mapping.items() if Fraction(v) != _ZERO}


def common_denominator(*mappings: Mapping) -> int:
    """The least common denominator ``D`` of all values in the mappings."""
    d = 1
    for mapping in mappings:
        for value in mapping.values():
            value = Fraction(value)
            d = d * value.denominator // _gcd(d, value.denominator)
    return d


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


@dataclass
class FlowInequality:
    """``⟨λ, h⟩ <= ⟨δ, h⟩`` over a fixed universe.

    Attributes:
        universe: the query variables.
        lam: λ values keyed by target set ``B`` (coordinates ``(∅, B)``).
        delta: δ values keyed by ``(X, Y)`` pairs with ``X ⊂ Y``.
    """

    universe: tuple[str, ...]
    lam: dict[frozenset, Fraction]
    delta: dict[Pair, Fraction]

    def __post_init__(self) -> None:
        self.lam = {k: Fraction(v) for k, v in self.lam.items() if Fraction(v) != _ZERO}
        self.delta = _clean(self.delta)
        for (x, y) in self.delta:
            if not x < y:
                raise WitnessError(f"delta key must have X ⊂ Y, got {sorted(x)}, {sorted(y)}")

    @property
    def lam_norm(self) -> Fraction:
        """``‖λ‖₁``."""
        return sum(self.lam.values(), _ZERO)

    @property
    def delta_norm(self) -> Fraction:
        return sum(self.delta.values(), _ZERO)

    def evaluate_on(self, h: SetFunction) -> tuple[Fraction, Fraction]:
        """``(⟨λ, h⟩, ⟨δ, h⟩)`` — the inequality requires lhs <= rhs."""
        lhs = sum((w * h(b) for b, w in self.lam.items()), _ZERO)
        rhs = sum(
            (w * (h(y) - h(x)) for (x, y), w in self.delta.items()), _ZERO
        )
        return lhs, rhs

    def holds_on(self, h: SetFunction) -> bool:
        lhs, rhs = self.evaluate_on(h)
        return lhs <= rhs


@dataclass
class Witness:
    """A ``(σ, μ)`` pair certifying a flow inequality (Prop. 5.6)."""

    sigma: dict[Pair, Fraction] = field(default_factory=dict)
    mu: dict[Pair, Fraction] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.sigma = _clean(self.sigma)
        self.mu = _clean(self.mu)
        for (i, j) in self.sigma:
            if i <= j or j <= i:
                raise WitnessError(
                    f"sigma key must be incomparable, got {sorted(i)}, {sorted(j)}"
                )
        for (x, y) in self.mu:
            if not x < y:
                raise WitnessError(f"mu key must have X ⊂ Y, got {sorted(x)}, {sorted(y)}")

    def copy(self) -> "Witness":
        return Witness(dict(self.sigma), dict(self.mu))


def inflow(
    z: frozenset,
    delta: Mapping[Pair, Fraction],
    sigma: Mapping[Pair, Fraction],
    mu: Mapping[Pair, Fraction],
) -> Fraction:
    """Eq. (74): the net flow into coordinate ``Z`` (``Z != ∅``)."""
    total = _ZERO
    for (x, y), value in delta.items():
        if y == z:
            total += value
        if x == z:
            total -= value
    for (i, j), value in sigma.items():
        # The submodularity multiplier is symmetric in {I, J}: it feeds I∩J
        # and I∪J, and drains both I and J (the LP row has -1 on each).
        if i & j == z or i | j == z:
            total += value
        if i == z or j == z:
            total -= value
    for (x, y), value in mu.items():
        if y == z:
            total -= value
        if x == z:
            total += value
    return total


def active_coordinates(ineq: FlowInequality, witness: Witness) -> list[frozenset]:
    """All non-empty ``Z`` that (λ, δ, σ, μ) can give non-zero inflow or λ.

    Returned in the canonical deterministic order (by size, then sorted
    member tuple) so every consumer iterates coordinates identically across
    runs and processes.
    """
    coordinates: set[frozenset] = set(ineq.lam)
    for (x, y) in ineq.delta:
        coordinates |= {x, y}
    for (i, j) in witness.sigma:
        coordinates |= {i, j, i & j, i | j}
    for (x, y) in witness.mu:
        coordinates |= {x, y}
    coordinates.discard(frozenset())
    return sorted(coordinates, key=lambda s: (len(s), tuple(sorted(s))))


def verify_witness(ineq: FlowInequality, witness: Witness) -> None:
    """Raise :class:`WitnessError` unless ``inflow(Z) >= λ_Z`` for all Z.

    Only coordinates appearing in (λ, δ, σ, μ) can have non-zero inflow or
    λ, so the check enumerates those instead of all ``2^n``.
    """
    for z in active_coordinates(ineq, witness):
        flow = inflow(z, ineq.delta, witness.sigma, witness.mu)
        lam_z = ineq.lam.get(z, _ZERO)
        if flow < lam_z:
            raise WitnessError(
                f"inflow({sorted(z)}) = {flow} < λ = {lam_z}: witness invalid"
            )


def tighten(ineq: FlowInequality, witness: Witness) -> Witness:
    """Make the witness tight (Def. 5.10): ``inflow(Z) = λ_Z`` everywhere.

    Any surplus ``inflow(Z) − λ_Z`` is drained by raising ``μ_{∅,Z}``, which
    subtracts from ``inflow(Z)`` and touches nothing else (inflow(∅) is not
    constrained).
    """
    verify_witness(ineq, witness)
    result = witness.copy()
    empty = frozenset()
    for z in active_coordinates(ineq, witness):
        surplus = inflow(z, ineq.delta, result.sigma, result.mu) - ineq.lam.get(z, _ZERO)
        if surplus > _ZERO:
            key = (empty, z)
            result.mu[key] = result.mu.get(key, _ZERO) + surplus
    return result


def flow_from_bound(
    result: BoundResult,
) -> tuple[FlowInequality, Witness, dict[Pair, LogConstraint]]:
    """Extract the flow inequality + witness from a bound LP's dual solution.

    Returns:
        ``(inequality, witness, supports)`` where ``supports`` maps each
        positive δ-pair to the :class:`LogConstraint` guarding it (the initial
        degree-support invariant of §6.1).
    """
    universe: set[str] = set()
    for target in result.targets:
        universe |= target
    for (x, y) in result.delta:
        universe |= y
    lam = {b: w for b, w in result.lambda_weights.items() if w > _ZERO}
    delta = _clean(result.delta)
    ineq = FlowInequality(tuple(sorted(universe)), lam, delta)
    witness = Witness(_clean(result.sigma), _clean(result.mu))
    verify_witness(ineq, witness)
    supports = {
        pair: result.constraint_for_pair[pair]
        for pair in delta
        if pair in result.constraint_for_pair
    }
    missing = [pair for pair in delta if pair not in supports]
    if missing:
        raise WitnessError(
            f"no supporting degree constraint for δ pairs {missing}"
        )
    return ineq, witness, supports
