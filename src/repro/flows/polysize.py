"""Poly-sized proof sequences via max-flow (Appendix B.2: Def. B.9, Lemma B.10,
Theorem B.12 / Algorithm 3).

Algorithm 2 (:mod:`repro.flows.flow_network`) pushes one augmenting path per
iteration.  Algorithm 3 batches: it builds the *extended* flow network
``G¯(λ, δ, σ, μ)`` of Definition B.9 —

* nodes ``2^[n]``, one node ``T_{I,J}`` per positive submodularity multiplier,
  and a sink ``T̄``;
* up arcs ``(X, Y)`` of capacity ``δ_{Y|X}``, down arcs ``(Y, X)`` of infinite
  capacity, arcs ``I -> T_{I,J} -> T̄`` of capacity ``σ_{I,J}``, and arcs
  ``(B, T̄)`` of capacity ``λ_B`` —

computes a maximum flow with Edmonds–Karp, decomposes it into source-to-sink
paths, and interprets every path as a run of proof steps:

* an up arc ``(X, Y)`` emits the composition ``c_{X,Y}``,
* a down arc ``(Y, X)`` emits the decomposition ``d_{Y,X}``,
* an arc into ``T_{I,J}`` emits ``d_{I,I∩J}`` then the submodularity
  ``s_{I,J}``, converting ``σ_{I,J}`` into fresh up-arc capacity
  ``δ_{I∪J|J}`` (plus the split-off ``δ_{I∩J|∅}``) for the next round,
* an arc ``(B, T̄)`` pays ``λ_B``.

Every arc traversal is one of the Theorem 5.9 induction moves, so the
remaining ``(λ, δ, σ, μ)`` stays a valid witness between rounds, and
Lemma B.10 (max flow ``>= ‖λ‖₁``, proved by min-cut) guarantees progress:
each round retires flow value of ``λ``- or ``σ``-mass, so the number of
rounds is bounded by the (Corollary B.7-normalized) witness norms.

Substitution note (recorded in DESIGN.md): the paper first rewrites the
witness so that ``2‖σ‖₁ + ‖δ‖₁ <= n³·‖λ‖₁`` (Corollary B.7, via the
Lemma B.5 variable-conditioning lift).  We apply the implemented part of that
pipeline — tightening plus the Lemma B.3 conditioned-μ reduction
(:mod:`repro.flows.witness_reduction`) — and *measure* the achieved norms
instead of guaranteeing the n³ constant; the construction itself is
unchanged and its per-round behaviour matches Algorithm 3.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Hashable

from repro.exceptions import ProofSequenceError, WitnessError
from repro.flows.inequality import FlowInequality, Witness, verify_witness
from repro.flows.proof_sequence import (
    COMPOSITION,
    DECOMPOSITION,
    SUBMODULARITY,
    ProofSequence,
    ProofStep,
)
from repro.flows.witness_reduction import reduce_conditioned_mu

__all__ = [
    "ExtendedFlowNetwork",
    "MaxFlowResult",
    "construct_via_max_flow",
]

_ZERO = Fraction(0)
_EMPTY = frozenset()

#: Sink node of the extended network.
SINK = "T̄"

Pair = tuple[frozenset, frozenset]
Node = Hashable  # frozenset | ("sigma", Pair) | SINK


def _skey(s: frozenset) -> tuple:
    return tuple(sorted(s))


@dataclass
class MaxFlowResult:
    """A feasible maximum flow of an :class:`ExtendedFlowNetwork`.

    Attributes:
        value: the flow value (``= min cut``).
        flow: net flow per arc ``(u, v)``; only positive entries are kept.
    """

    value: Fraction
    flow: dict[tuple[Node, Node], Fraction] = field(default_factory=dict)


class ExtendedFlowNetwork:
    """The network ``G¯(λ, δ, σ, μ)`` of Definition B.9.

    Node set: the *relevant* subsets of the universe (every set appearing in
    ``λ``/``δ``/``σ`` together with σ meets and joins — down arcs to other
    subsets can never extend a source-sink path, see Lemma B.10's cut
    argument), one ``("sigma", (I, J))`` relay per positive ``σ_{I,J}``, and
    the sink :data:`SINK`.
    """

    def __init__(
        self,
        lam: dict[frozenset, Fraction],
        delta: dict[Pair, Fraction],
        sigma: dict[Pair, Fraction],
    ) -> None:
        self.lam = {k: v for k, v in lam.items() if v > _ZERO}
        self.delta = {k: v for k, v in delta.items() if v > _ZERO}
        self.sigma = {k: v for k, v in sigma.items() if v > _ZERO}
        self.capacity: dict[tuple[Node, Node], Fraction] = {}
        self._build()

    def _build(self) -> None:
        relevant: set[frozenset] = {_EMPTY}
        relevant.update(self.lam)
        for (x, y) in self.delta:
            relevant.update((x, y))
        for (i, j) in self.sigma:
            relevant.update((i, j, i & j, i | j))

        finite_total = (
            sum(self.delta.values(), _ZERO)
            + sum(self.sigma.values(), _ZERO)
            + sum(self.lam.values(), _ZERO)
        )
        #: Effective infinity: exceeds any possible flow value.
        self.infinite = finite_total + 1

        # Up arcs: capacity δ_{Y|X}.
        for (x, y), value in self.delta.items():
            self._add((x, y), value)
        # Down arcs: infinite capacity, only into relevant subsets.
        for upper in relevant:
            for lower in relevant:
                if lower < upper:
                    self._add((upper, lower), self.infinite)
        # Submodularity relays I -> T_{I,J} -> T̄ and J -> T_{I,J}.
        for (i, j), value in self.sigma.items():
            relay = ("sigma", (i, j))
            self._add((i, relay), self.infinite)
            self._add((j, relay), self.infinite)
            self._add((relay, SINK), value)
        # Target arcs (B, T̄) of capacity λ_B.
        for b, value in self.lam.items():
            self._add((b, SINK), value)

    def _add(self, arc: tuple[Node, Node], capacity: Fraction) -> None:
        self.capacity[arc] = self.capacity.get(arc, _ZERO) + capacity

    # -- Edmonds–Karp ----------------------------------------------------------------

    def max_flow(self) -> MaxFlowResult:
        """Maximum ∅ → T̄ flow via Edmonds–Karp (BFS augmenting paths)."""
        flow: dict[tuple[Node, Node], Fraction] = {}
        adjacency: dict[Node, list[Node]] = {}
        for (u, v) in self.capacity:
            adjacency.setdefault(u, []).append(v)
            adjacency.setdefault(v, []).append(u)  # residual back-arc

        def residual(u: Node, v: Node) -> Fraction:
            return (
                self.capacity.get((u, v), _ZERO)
                - flow.get((u, v), _ZERO)
                + flow.get((v, u), _ZERO)
            )

        total = _ZERO
        while True:
            parents: dict[Node, Node] = {_EMPTY: _EMPTY}
            queue: deque[Node] = deque([_EMPTY])
            while queue and SINK not in parents:
                u = queue.popleft()
                for v in adjacency.get(u, ()):
                    if v not in parents and residual(u, v) > _ZERO:
                        parents[v] = u
                        queue.append(v)
            if SINK not in parents:
                break
            # Bottleneck along the path.
            path: list[tuple[Node, Node]] = []
            node = SINK
            while node != _EMPTY:
                prev = parents[node]
                path.append((prev, node))
                node = prev
            bottleneck = min(residual(u, v) for (u, v) in path)
            for (u, v) in path:
                # Cancel against reverse flow first.
                back = flow.get((v, u), _ZERO)
                if back >= bottleneck:
                    flow[(v, u)] = back - bottleneck
                else:
                    if back > _ZERO:
                        flow[(v, u)] = _ZERO
                    flow[(u, v)] = flow.get((u, v), _ZERO) + bottleneck - back
            total += bottleneck
        positive = {arc: v for arc, v in flow.items() if v > _ZERO}
        return MaxFlowResult(value=total, flow=positive)

    def check_lemma_b10(self) -> MaxFlowResult:
        """Lemma B.10: the max flow is at least ``‖λ‖₁``.

        Raises:
            WitnessError: if the bound fails (the state is not a valid
                witness).
        """
        result = self.max_flow()
        lam_norm = sum(self.lam.values(), _ZERO)
        if result.value < lam_norm:
            raise WitnessError(
                f"Lemma B.10 violated: max flow {result.value} < "
                f"‖λ‖₁ = {lam_norm}"
            )
        return result


def _decompose(
    network: ExtendedFlowNetwork, result: MaxFlowResult
) -> list[tuple[list[tuple[Node, Node]], Fraction]]:
    """Split a feasible flow into ∅ → T̄ paths, cancelling cycles on the way."""
    flow = dict(result.flow)
    outgoing: dict[Node, list[Node]] = {}
    for (u, v), value in flow.items():
        if value > _ZERO:
            outgoing.setdefault(u, []).append(v)

    def next_arc(u: Node) -> Node | None:
        for v in outgoing.get(u, ()):
            if flow.get((u, v), _ZERO) > _ZERO:
                return v
        return None

    paths: list[tuple[list[tuple[Node, Node]], Fraction]] = []
    while True:
        if next_arc(_EMPTY) is None:
            break
        # Walk from the source following positive flow.
        walk: list[Node] = [_EMPTY]
        positions = {_EMPTY: 0}
        while walk[-1] != SINK:
            nxt = next_arc(walk[-1])
            if nxt is None:
                raise ProofSequenceError(
                    "flow decomposition stuck (conservation violated)"
                )
            if nxt in positions:
                # Cycle: cancel it and restart the walk.
                start = positions[nxt]
                cycle = [
                    (walk[k], walk[k + 1]) for k in range(start, len(walk) - 1)
                ] + [(walk[-1], nxt)]
                bottleneck = min(flow[arc] for arc in cycle)
                for arc in cycle:
                    flow[arc] -= bottleneck
                walk = [_EMPTY]
                positions = {_EMPTY: 0}
                continue
            positions[nxt] = len(walk)
            walk.append(nxt)
        arcs = [(walk[k], walk[k + 1]) for k in range(len(walk) - 1)]
        bottleneck = min(flow[arc] for arc in arcs)
        for arc in arcs:
            flow[arc] -= bottleneck
        paths.append((arcs, bottleneck))
    return paths


def _emit_path(
    sequence: ProofSequence,
    lam: dict[frozenset, Fraction],
    delta: dict[Pair, Fraction],
    sigma: dict[Pair, Fraction],
    arcs: list[tuple[Node, Node]],
    amount: Fraction,
) -> None:
    """Interpret one decomposed path as proof steps (Algorithm 3 lines 11-29)."""

    def bump(table: dict, key, change: Fraction) -> None:
        value = table.get(key, _ZERO) + change
        if value < _ZERO:
            raise ProofSequenceError(
                f"max-flow push drove {key} negative ({value})"
            )
        if value == _ZERO:
            table.pop(key, None)
        else:
            table[key] = value

    for (u, v) in arcs:
        if v == SINK:
            if isinstance(u, tuple) and u[0] == "sigma":
                continue  # accounted at the relay hop below
            # (B, T̄): pay λ_B out of the δ_{B|∅} mass parked at B.
            bump(lam, u, -amount)
            bump(delta, (_EMPTY, u), -amount)
        elif isinstance(v, tuple) and v[0] == "sigma":
            i, j = v[1]
            first = u  # the side the flow arrived on (I or J)
            second = j if first == i else i
            meet = first & second
            if meet:
                sequence.append(amount, ProofStep(DECOMPOSITION, first, meet))
                bump(delta, (_EMPTY, meet), amount)
            sequence.append(amount, ProofStep(SUBMODULARITY, first, second))
            bump(delta, (_EMPTY, first), -amount)
            bump(delta, (second, first | second), amount)
            bump(sigma, (i, j), -amount)
        elif v < u:  # down arc
            if v != _EMPTY:
                sequence.append(amount, ProofStep(DECOMPOSITION, u, v))
                bump(delta, (v, u), amount)
                bump(delta, (_EMPTY, v), amount)
            bump(delta, (_EMPTY, u), -amount)
        else:  # up arc (u ⊂ v) of capacity δ_{v|u}
            if u != _EMPTY:
                sequence.append(amount, ProofStep(COMPOSITION, u, v))
                bump(delta, (_EMPTY, u), -amount)
            bump(delta, (u, v), -amount)
            bump(delta, (_EMPTY, v), amount)


def construct_via_max_flow(
    ineq: FlowInequality,
    witness: Witness,
    max_rounds: int = 10_000,
    reduce_witness: bool = True,
) -> ProofSequence:
    """Algorithm 3: proof sequence through rounds of batched max flow.

    Args:
        ineq: the Shannon-flow inequality ``⟨λ, h⟩ <= ⟨δ, h⟩`` to prove.
        witness: a valid witness.
        max_rounds: safety cap on Edmonds–Karp rounds.
        reduce_witness: run the B.1 normalization first (recommended; mirrors
            Algorithm 3 line 4).

    Returns:
        A verified :class:`ProofSequence`.  With ``reduce_witness=False`` it
        is a mechanical rewriting of ``ineq``'s own δ bag; with the default
        normalization it rewrites the B.1-dominated bag ``δ'`` (and therefore
        proves ``⟨λ, h⟩ <= ⟨δ', h⟩ <= ⟨δ, h⟩``, Lemma B.11's expansion back to
        the literal δ bag being a pure-bookkeeping prefix we do not emit).
    """
    verify_witness(ineq, witness)
    if reduce_witness:
        work_ineq, work_witness = reduce_conditioned_mu(ineq, witness)
    else:
        work_ineq, work_witness = ineq, witness

    lam = dict(work_ineq.lam)
    delta = dict(work_ineq.delta)
    sigma = dict(work_witness.sigma)
    sequence = ProofSequence()

    rounds = 0
    while any(v > _ZERO for v in lam.values()):
        rounds += 1
        if rounds > max_rounds:
            raise ProofSequenceError(
                f"max-flow construction exceeded {max_rounds} rounds"
            )
        network = ExtendedFlowNetwork(lam, delta, sigma)
        result = network.check_lemma_b10()
        if result.value <= _ZERO:
            raise ProofSequenceError(
                "max flow vanished with λ outstanding (invalid witness state)"
            )
        progressed = False
        for arcs, amount in _decompose(network, result):
            _emit_path(sequence, lam, delta, sigma, arcs, amount)
            progressed = True
        if not progressed:
            raise ProofSequenceError("positive max flow decomposed to no paths")

    # The emitted steps were applied to our working δ; re-verify end to end
    # against the inequality whose bag we actually rewrote.
    sequence.verify(work_ineq)
    return sequence
