"""Proof sequences for Shannon-flow inequalities (Def. 5.7, Thm. 5.9, Lem. 5.11).

A proof sequence rewrites the right-hand side bag ``δ`` of a Shannon-flow
inequality into (a superset of) the left-hand side bag ``λ`` using the four
rules (Eqs. 13–16 / 77–80), each of which can only *decrease* ``⟨·, h⟩`` on
polymatroids:

    submodularity   s_{I,J} :  h(I | I∩J)        ->  h(I∪J | J)
    monotonicity    m_{X,Y} :  h(Y)              ->  h(X)             (X ⊂ Y)
    composition     c_{X,Y} :  h(X) + h(Y|X)     ->  h(Y)             (X ⊂ Y)
    decomposition   d_{Y,X} :  h(Y)              ->  h(X) + h(Y|X)    (X ⊂ Y)

PANDA interprets the steps as relational operations: bookkeeping, projection,
join, and heavy/light partition respectively.

Two constructions are provided:

* :func:`construct_proof_sequence` — the Theorem 5.9 induction, run greedily
  with *batched* weights (each move transfers the largest feasible amount, so
  the length is polynomial in the witness support rather than in ``D``);
* :mod:`repro.flows.flow_network` — the Appendix B Algorithm 2 construction
  via augmenting paths (shorter sequences; used for cross-validation).

:func:`truncate` implements Lemma 5.11, the restart device of PANDA Case 4b.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from typing import Iterator

from repro.core.setfunctions import SetFunction
from repro.exceptions import ProofSequenceError, WitnessError
from repro.flows.inequality import FlowInequality, Pair, Witness, inflow


def _subset_key(s: frozenset) -> tuple:
    """Canonical deterministic ordering key: by size, then sorted members."""
    return (len(s), tuple(sorted(s)))

__all__ = [
    "ProofStep",
    "WeightedStep",
    "ProofSequence",
    "construct_proof_sequence",
    "truncate",
]

_ZERO = Fraction(0)
_EMPTY = frozenset()

SUBMODULARITY = "submodularity"
MONOTONICITY = "monotonicity"
COMPOSITION = "composition"
DECOMPOSITION = "decomposition"


@dataclass(frozen=True)
class ProofStep:
    """One rewrite rule application.

    Attributes:
        kind: one of the four rule names.
        first / second: the step's set parameters —
            ``s_{I,J}``: first=I, second=J (incomparable);
            ``m_{X,Y}``: first=X, second=Y (X ⊂ Y);
            ``c_{X,Y}``: first=X, second=Y (X ⊂ Y);
            ``d_{Y,X}``: first=Y, second=X (X ⊂ Y; note the paper's order).
    """

    kind: str
    first: frozenset
    second: frozenset

    def __post_init__(self) -> None:
        if self.kind == SUBMODULARITY:
            if self.first <= self.second or self.second <= self.first:
                raise ProofSequenceError("s_{I,J} needs incomparable I, J")
        elif self.kind in (MONOTONICITY, COMPOSITION):
            if not self.first < self.second:
                raise ProofSequenceError(f"{self.kind} needs X ⊂ Y")
            if self.kind == COMPOSITION and not self.first:
                raise ProofSequenceError(
                    "c_{∅,Y} is the identity h(∅) + h(Y|∅) -> h(Y); "
                    "trivial steps are not emitted"
                )
        elif self.kind == DECOMPOSITION:
            if not self.second < self.first:
                raise ProofSequenceError("d_{Y,X} needs X ⊂ Y")
            if not self.second:
                raise ProofSequenceError(
                    "d_{Y,∅} is the identity h(Y) -> h(∅) + h(Y|∅); "
                    "trivial steps are not emitted"
                )
        else:
            raise ProofSequenceError(f"unknown step kind {self.kind!r}")

    def vector(self) -> dict[Pair, int]:
        """The step as a conditional-polymatroid vector (δ += weight · vector).

        The returned dict is cached per ``(kind, first, second)`` — treat it
        as immutable (PANDA applies the same step across many branches).
        """
        return _step_vector(self.kind, self.first, self.second)

    def holds_on(self, h: SetFunction) -> bool:
        """``⟨step, h⟩ <= 0`` — true for every polymatroid (Eqs. 77–80)."""
        total = _ZERO
        for (x, y), coef in self.vector().items():
            total += coef * (h(y) - h(x))
        return total <= _ZERO

    def __str__(self) -> str:
        fmt = lambda s: "{" + ",".join(sorted(s)) + "}" if s else "∅"  # noqa: E731
        symbol = {
            SUBMODULARITY: "s",
            MONOTONICITY: "m",
            COMPOSITION: "c",
            DECOMPOSITION: "d",
        }[self.kind]
        return f"{symbol}[{fmt(self.first)},{fmt(self.second)}]"


@lru_cache(maxsize=1 << 16)
def _step_vector(kind: str, first: frozenset, second: frozenset) -> dict[Pair, int]:
    if kind == SUBMODULARITY:
        i, j = first, second
        return {(i & j, i): -1, (j, i | j): +1}
    if kind == MONOTONICITY:
        x, y = first, second
        if not x:
            # m_{∅,Y} simply drops the h(Y) term (h(∅) = 0).
            return {(_EMPTY, y): -1}
        return {(_EMPTY, y): -1, (_EMPTY, x): +1}
    if kind == COMPOSITION:
        x, y = first, second
        return {(_EMPTY, x): -1, (x, y): -1, (_EMPTY, y): +1}
    # DECOMPOSITION
    y, x = first, second
    return {(_EMPTY, y): -1, (_EMPTY, x): +1, (x, y): +1}


@dataclass(frozen=True)
class WeightedStep:
    """A proof step with its weight ``w > 0``."""

    weight: Fraction
    step: ProofStep

    def __str__(self) -> str:
        return f"{self.weight}·{self.step}"


class ProofSequence:
    """An ordered list of weighted proof steps (Def. 5.7)."""

    def __init__(self, steps: list[WeightedStep] | None = None) -> None:
        self.steps: list[WeightedStep] = list(steps or [])

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[WeightedStep]:
        return iter(self.steps)

    def append(self, weight: Fraction, step: ProofStep) -> None:
        if weight <= _ZERO:
            raise ProofSequenceError(f"step weight must be positive, got {weight}")
        self.steps.append(WeightedStep(Fraction(weight), step))

    def counts_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for ws in self.steps:
            out[ws.step.kind] = out.get(ws.step.kind, 0) + 1
        return out

    def apply(self, delta: dict[Pair, Fraction]) -> dict[Pair, Fraction]:
        """Apply all steps to ``delta``; raise on any intermediate negativity."""
        current = {k: Fraction(v) for k, v in delta.items()}
        for index, ws in enumerate(self.steps):
            for pair, coef in ws.step.vector().items():
                current[pair] = current.get(pair, _ZERO) + ws.weight * coef
                if current[pair] < _ZERO:
                    raise ProofSequenceError(
                        f"step {index} ({ws}) drives δ{pair} negative "
                        f"({current[pair]})"
                    )
        return {k: v for k, v in current.items() if v != _ZERO}

    def verify(self, ineq: FlowInequality) -> None:
        """Def. 5.7 conditions (3)+(4): non-negativity and ``δ_ℓ >= λ``.

        Raises:
            ProofSequenceError: if the sequence is not a valid proof of ``ineq``.
        """
        final = self.apply(dict(ineq.delta))
        for target, lam_value in ineq.lam.items():
            if final.get((_EMPTY, target), _ZERO) < lam_value:
                raise ProofSequenceError(
                    f"final δ({sorted(target)}|∅) = "
                    f"{final.get((_EMPTY, target), _ZERO)} < λ = {lam_value}"
                )

    def __str__(self) -> str:
        return " ; ".join(str(ws) for ws in self.steps)


class _FlowState:
    """Mutable (λ, δ, σ, μ) with batched Theorem 5.9 moves."""

    def __init__(self, ineq: FlowInequality, witness: Witness):
        self.lam = dict(ineq.lam)
        self.delta = dict(ineq.delta)
        self.sigma = dict(witness.sigma)
        self.mu = dict(witness.mu)

    # -- bookkeeping -----------------------------------------------------------

    def bump(self, table: dict, key, amount: Fraction) -> None:
        value = table.get(key, _ZERO) + amount
        if value < _ZERO:
            raise ProofSequenceError(f"negative coordinate at {key}: {value}")
        if value == _ZERO:
            table.pop(key, None)
        else:
            table[key] = value

    def inflow(self, z: frozenset) -> Fraction:
        return inflow(z, self.delta, self.sigma, self.mu)

    def lam_norm(self) -> Fraction:
        return sum(self.lam.values(), _ZERO)

    def unconditioned_positive(self) -> list[frozenset]:
        """All Z with δ_{Z|∅} > 0, deterministically ordered."""
        return sorted(
            (y for (x, y), v in self.delta.items() if x == _EMPTY and v > _ZERO),
            key=_subset_key,
        )


def construct_proof_sequence(
    ineq: FlowInequality,
    witness: Witness,
    max_moves: int = 1_000_000,
    witness_log: list[Witness] | None = None,
) -> ProofSequence:
    """The Theorem 5.9 construction with batched weights.

    Each iteration picks a ``Z`` with ``δ_{Z|∅} > 0`` and either pays it into
    ``λ_Z``, discards surplus inflow, or applies the unique rewrite whose dual
    multiplier balances ``Z``'s flow.  Batching the transferable amount keeps
    the number of moves polynomial in the support of ``(λ, δ, σ, μ)``.

    Args:
        ineq: the Shannon-flow inequality to prove.
        witness: a valid witness for it.
        max_moves: safety cap on construction moves.
        witness_log: if given, receives one :class:`Witness` snapshot per
            emitted step — the evolved ``(σ, μ)`` *before* that step's move.
            PANDA's Case 4b restart needs these: the snapshot at step ``i``
            witnesses the inequality ``⟨λ, h⟩ <= ⟨δ_i, h⟩`` that remains after
            executing the first ``i`` steps (see the module docstring of
            :mod:`repro.core.panda`).

    Raises:
        WitnessError: if the witness does not certify the inequality.
        ProofSequenceError: if the move budget is exhausted (solver bug).
    """
    from repro.flows.inequality import verify_witness

    verify_witness(ineq, witness)
    state = _FlowState(ineq, witness)
    sequence = ProofSequence()

    moves = 0
    while state.lam_norm() > _ZERO:
        moves += 1
        if moves > max_moves:
            raise ProofSequenceError(
                f"proof-sequence construction exceeded {max_moves} moves"
            )
        candidates = state.unconditioned_positive()
        if not candidates:
            raise ProofSequenceError(
                "no unconditioned δ mass left but λ not exhausted "
                "(witness/theorem violation)"
            )
        advanced = False
        for z in candidates:
            if _advance(state, sequence, z, witness_log):
                advanced = True
                break
        if not advanced:
            raise ProofSequenceError("no applicable Theorem 5.9 case (stuck)")
    return sequence


def _advance(
    state: _FlowState,
    sequence: ProofSequence,
    z: frozenset,
    witness_log: list[Witness] | None = None,
) -> bool:
    """One batched Theorem 5.9 move at coordinate ``Z``.  Returns success."""
    available = state.delta.get((_EMPTY, z), _ZERO)
    if available <= _ZERO:
        return False

    def snapshot() -> None:
        if witness_log is not None:
            witness_log.append(Witness(dict(state.sigma), dict(state.mu)))

    # Case (a): pay δ_{Z|∅} into λ_Z.
    lam_z = state.lam.get(z, _ZERO)
    if lam_z > _ZERO:
        amount = min(lam_z, available)
        state.bump(state.lam, z, -amount)
        state.bump(state.delta, (_EMPTY, z), -amount)
        return True

    # Case (b): discard surplus inflow.
    flow = state.inflow(z)
    if flow > _ZERO:
        amount = min(flow, available)
        state.bump(state.delta, (_EMPTY, z), -amount)
        return True

    # Case (c): rebalance through a negative contributor of inflow(Z).
    # (c1) monotonicity μ_{X,Z}.
    for (x, y), value in sorted(
        state.mu.items(), key=lambda kv: _subset_key(kv[0][0])
    ):
        if y == z and value > _ZERO:
            amount = min(value, available)
            step = ProofStep(MONOTONICITY, x, z)
            snapshot()
            sequence.append(amount, step)
            state.bump(state.mu, (x, y), -amount)
            state.bump(state.delta, (_EMPTY, z), -amount)
            if x != _EMPTY:
                state.bump(state.delta, (_EMPTY, x), +amount)
            return True

    # (c2) a conditional δ_{Y|Z} waiting to be composed.
    for (x, y), value in sorted(
        state.delta.items(), key=lambda kv: _subset_key(kv[0][1])
    ):
        if x == z and value > _ZERO:
            amount = min(value, available)
            step = ProofStep(COMPOSITION, z, y)
            snapshot()
            sequence.append(amount, step)
            state.bump(state.delta, (_EMPTY, z), -amount)
            state.bump(state.delta, (z, y), -amount)
            state.bump(state.delta, (_EMPTY, y), +amount)
            return True

    # (c3) a submodularity σ_{Z,J}: decompose then shift.  σ is symmetric in
    # {I, J}, so Z may appear as either component.
    for (i, j), value in sorted(
        state.sigma.items(), key=lambda kv: _subset_key(kv[0][1])
    ):
        if value <= _ZERO:
            continue
        if i == z:
            partner = j
        elif j == z:
            partner = i
        else:
            continue
        amount = min(value, available)
        meet = z & partner
        if meet:
            # d_{Z, Z∩J} splits off h(Z∩J); with an empty meet the
            # decomposition is the identity and only s_{Z,J} is emitted.
            snapshot()
            sequence.append(amount, ProofStep(DECOMPOSITION, z, meet))
        snapshot()
        sequence.append(amount, ProofStep(SUBMODULARITY, z, partner))
        state.bump(state.sigma, (i, j), -amount)
        state.bump(state.delta, (_EMPTY, z), -amount)
        if meet != _EMPTY:
            state.bump(state.delta, (_EMPTY, meet), +amount)
        state.bump(state.delta, (partner, z | partner), +amount)
        return True

    return False


def truncate(
    ineq: FlowInequality,
    witness: Witness,
    y: frozenset,
    amount: Fraction,
) -> tuple[FlowInequality, Witness]:
    """Lemma 5.11: truncate ``δ_{Y|∅}`` by ``amount``, rebalancing the flow.

    Produces ``(λ', δ')`` with witness ``(σ', μ')`` such that ``λ' <= λ``,
    ``δ' <= δ`` component-wise, ``δ'_{Y|∅} <= δ_{Y|∅} − amount``, and
    ``‖λ'‖₁ >= ‖λ‖₁ − amount`` — the restart inequality of PANDA Case 4b.

    The deficit-walk of the lemma is run in capacity-batched chunks.
    """
    from repro.flows.inequality import tighten, verify_witness

    verify_witness(ineq, witness)
    if ineq.lam_norm <= _ZERO:
        raise ProofSequenceError("truncate needs ‖λ‖ > 0")
    if ineq.delta.get((_EMPTY, y), _ZERO) < amount:
        raise ProofSequenceError(
            f"truncate needs δ_{{{sorted(y)}|∅}} >= {amount}"
        )
    tight = tighten(ineq, witness)
    state = _FlowState(ineq, tight)

    remaining = Fraction(amount)
    while remaining > _ZERO:
        chunk = _walk_deficit(state, y, remaining)
        remaining -= chunk

    new_ineq = FlowInequality(ineq.universe, dict(state.lam), dict(state.delta))
    new_witness = Witness(dict(state.sigma), dict(state.mu))
    verify_witness(new_ineq, new_witness)
    return new_ineq, new_witness


def _walk_deficit(state: _FlowState, start: frozenset, cap: Fraction) -> Fraction:
    """One chunked deficit walk of Lemma 5.11; returns the chunk size moved.

    Starting by reducing ``δ_{start|∅}``, the walk moves the (single) deficit
    coordinate until it can be absorbed by reducing some ``λ_Z`` or it reaches
    ``∅``.  The chunk is fixed *along the whole walk* — to keep it simple we
    first probe the walk to find the bottleneck capacity, then replay it.
    """
    path = _probe_walk(state, start, cap)
    chunk = min(cap, *(capacity for capacity, _ in path)) if path else cap
    # Replay with the bottleneck chunk.
    state.bump(state.delta, (_EMPTY, start), -chunk)
    for _, action in path:
        action(chunk)
    return chunk


def _probe_walk(state: _FlowState, start: frozenset, cap: Fraction):
    """Plan the Lemma 5.11 walk; returns [(capacity, apply(chunk))] actions."""
    plan: list[tuple[Fraction, object]] = []
    z = start
    # The probe must not mutate state, so track virtual adjustments along the
    # walk (each coordinate is visited a bounded number of times because
    # 2‖σ‖+‖δ‖+‖μ‖ strictly decreases).
    virtual: dict[tuple[str, Pair], Fraction] = {}

    def get(table: dict, kind: str, key: Pair) -> Fraction:
        return table.get(key, _ZERO) + virtual.get((kind, key), _ZERO)

    def adjust(kind: str, key: Pair, amount: Fraction) -> None:
        virtual[(kind, key)] = virtual.get((kind, key), _ZERO) + amount

    guard = 0
    while True:
        guard += 1
        if guard > 100_000:
            raise ProofSequenceError("Lemma 5.11 walk did not terminate")
        lam_z = state.lam.get(z, _ZERO)
        if lam_z > _ZERO:
            target = z

            def pay(chunk: Fraction, target=target) -> None:
                state.bump(state.lam, target, -chunk)

            plan.append((lam_z, pay))
            return plan
        found = False
        # (1) μ_{X,Z} > 0: move deficit down to X.  The walk's own σ moves
        # *create* μ mass (case (3) below raises μ_{I∩J,J}); those entries
        # live only in ``virtual`` until the replay, so the search must cover
        # the union of the real and virtually-created μ keys — iterating
        # ``state.mu`` alone gets stuck on exactly the coordinates the walk
        # itself funded (the Case-4b odd-cycle crash).
        mu_keys = set(state.mu)
        mu_keys.update(key for kind, key in virtual if kind == "mu")
        for (x, yy) in sorted(mu_keys, key=lambda k: _subset_key(k[0])):
            value = get(state.mu, "mu", (x, yy))
            if yy == z and value > _ZERO:
                def act(chunk: Fraction, x=x, yy=yy) -> None:
                    state.bump(state.mu, (x, yy), -chunk)

                plan.append((value, act))
                adjust("mu", (x, yy), -cap)
                z = x
                found = True
                break
        if found:
            if z == _EMPTY:
                return plan
            continue
        # (2) δ_{Y2|Z} > 0: move deficit up to Y2.
        for (x, y2), _ in sorted(
            state.delta.items(), key=lambda kv: _subset_key(kv[0][1])
        ):
            value = get(state.delta, "delta", (x, y2))
            if x == z and value > _ZERO:
                def act(chunk: Fraction, x=x, y2=y2) -> None:
                    state.bump(state.delta, (x, y2), -chunk)

                plan.append((value, act))
                adjust("delta", (x, y2), -cap)
                z = y2
                found = True
                break
        if found:
            continue
        # (3) σ_{Z,J} > 0: move deficit to Z∪J, raising μ_{Z∩J,J}.  σ is
        # symmetric in {I, J}, so Z may appear as either component.
        for (i, j), _ in sorted(
            state.sigma.items(), key=lambda kv: _subset_key(kv[0][1])
        ):
            value = get(state.sigma, "sigma", (i, j))
            if value <= _ZERO:
                continue
            if i == z:
                partner = j
            elif j == z:
                partner = i
            else:
                continue

            def act(chunk: Fraction, i=i, j=j, partner=partner) -> None:
                state.bump(state.sigma, (i, j), -chunk)
                state.bump(state.mu, (i & j, partner), +chunk)

            plan.append((value, act))
            adjust("sigma", (i, j), -cap)
            adjust("mu", (i & j, partner), +cap)
            z = z | partner
            found = True
            break
        if found:
            continue
        raise WitnessError(
            f"Lemma 5.11 walk stuck at {sorted(z)}: tight witness expected"
        )
