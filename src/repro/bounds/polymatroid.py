"""Polymatroid (and relaxed/strengthened) size bounds via linear programming.

This module realizes ``LogSizeBound_F(P)`` of Eq. (7) for the function classes
of Figure 3:

* ``F = Γn ∩ H_DC``   — the *polymatroid bound* (Eq. 9), via elemental Shannon
  inequalities;
* ``F = Γn ∩ H_DC ∩ ZY`` — the Zhang–Yeung-tightened outer bound on the
  *entropic bound* (Eq. 8), the device of Theorem 1.3;
* ``F = SAn ∩ H_DC``  — the subadditive relaxation (Prop. 3.2, Eq. 43);
* ``F = Mn ∩ H_DC``   — the modular restriction (Lemma 3.1, Prop. 7.3).

For a single target ``B`` the bound is a plain LP ``max h(B)``; for a
disjunctive rule with targets ``B`` the maximin objective ``max min_B h(B)``
is linearized as ``max w : w <= h(B)`` (Eq. 71), and the dual values of the
``w``-rows are exactly the λ-weights of Lemma 5.2/5.3.  The dual values of the
degree-constraint, submodularity, and monotonicity rows are the ``(δ, σ, μ)``
that witness the Shannon-flow inequality (Prop. 5.4) consumed by
:mod:`repro.flows`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from functools import lru_cache
from typing import Iterable, Sequence

from repro.core.constraints import ConstraintSet, DegreeConstraint
from repro.core.hypergraph import Hypergraph
from repro.core.setfunctions import SetFunction, elemental_inequality_mask_rows
from repro.core.varmap import VarMap
from repro.exceptions import LPError
from repro.lp import LPModel

__all__ = [
    "LogConstraint",
    "BoundResult",
    "PolymatroidProgram",
    "log_size_bound",
    "constraints_to_log",
    "edge_dominated_constraints",
    "vertex_dominated_constraints",
    "FUNCTION_CLASSES",
]

FUNCTION_CLASSES = ("polymatroid", "polymatroid+zy", "subadditive", "modular")


@dataclass(frozen=True, order=True)
class LogConstraint:
    """A log-space degree constraint row ``h(Y) - h(X) <= log_bound``.

    Attributes:
        x_key / y_key: sorted variable tuples for ``X ⊂ Y``.
        log_bound: ``n_{Y|X}`` as an exact rational.
        origin: the integer-bound :class:`DegreeConstraint` it came from, if
            any (ED/VD normalizations have no integer origin).
    """

    x_key: tuple[str, ...]
    y_key: tuple[str, ...]
    log_bound: Fraction
    origin: DegreeConstraint | None = field(default=None, compare=False)

    @property
    def x(self) -> frozenset:
        return frozenset(self.x_key)

    @property
    def y(self) -> frozenset:
        return frozenset(self.y_key)

    @property
    def pair(self) -> tuple[frozenset, frozenset]:
        return (self.x, self.y)

    def __str__(self) -> str:
        x = ",".join(self.x_key) or "∅"
        return f"h({','.join(self.y_key)}|{x}) <= {self.log_bound}"


def constraints_to_log(
    constraints: ConstraintSet | Iterable[DegreeConstraint],
) -> list[LogConstraint]:
    """Convert integer degree constraints to log-space rows."""
    return [
        LogConstraint(c.x_key, c.y_key, c.log_bound, origin=c) for c in constraints
    ]


def edge_dominated_constraints(
    hypergraph: Hypergraph, scale: Fraction = Fraction(1)
) -> list[LogConstraint]:
    """The normalized ``scale · ED`` constraints ``h(F) <= scale`` (Def. 2.4)."""
    return [
        LogConstraint((), tuple(sorted(edge)), Fraction(scale))
        for edge in hypergraph.distinct_edges()
    ]


def vertex_dominated_constraints(
    hypergraph: Hypergraph, scale: Fraction = Fraction(1)
) -> list[LogConstraint]:
    """The normalized ``scale · VD`` constraints ``h({v}) <= scale``."""
    return [
        LogConstraint((), (v,), Fraction(scale)) for v in hypergraph.vertices
    ]


@lru_cache(maxsize=None)
def _elemental_lp_rows(
    n: int,
) -> tuple[tuple[tuple, dict[int, Fraction], Fraction], ...]:
    """The Γn class rows as ready-to-add LP constraints, cached per size.

    Coefficient dicts carry shared Fraction instances, so repeated LP builds
    over any ``n``-variable universe add rows without converting or hashing
    anything per coefficient.
    """
    zero = Fraction(0)
    rows = []
    for kind, i_mask, j_mask, coeffs in elemental_inequality_mask_rows(n):
        name = ("submod" if kind == "submodularity" else "mono", i_mask, j_mask)
        rows.append((name, {m: Fraction(c) for m, c in coeffs}, zero))
    return tuple(rows)


@dataclass(frozen=True)
class BoundResult:
    """The value and certificates of a ``LogSizeBound`` LP.

    Attributes:
        log_value: the optimal ``max_h min_B h(B)`` in log2 units.
        h_values: an optimal (relaxed-class) set function, by subset.
        lambda_weights: λ_B per target (Lemma 5.2); ``{B: 1}`` for one target.
        delta: dual values ``δ_{Y|X}`` keyed by ``(X, Y)`` pairs.
        sigma: dual values ``σ_{I,J}`` of the (elemental) submodularity rows.
        mu: dual values ``μ_{X,Y}`` of the (elemental) monotonicity rows.
        constraint_for_pair: the :class:`LogConstraint` behind each δ key.
        targets: the target sets, in LP order.
    """

    log_value: Fraction
    h_values: dict[frozenset, Fraction]
    lambda_weights: dict[frozenset, Fraction]
    delta: dict[tuple[frozenset, frozenset], Fraction]
    sigma: dict[tuple[frozenset, frozenset], Fraction]
    mu: dict[tuple[frozenset, frozenset], Fraction]
    constraint_for_pair: dict[tuple[frozenset, frozenset], LogConstraint]
    targets: tuple[frozenset, ...]

    @property
    def value(self) -> float:
        """The bound itself, ``2^{log_value}``."""
        if self.log_value.denominator == 1:
            return float(2 ** self.log_value)  # reprolint: allow(RL-EXACT) -- presentation: float rendering of the exact bound; log_value stays the exact Fraction
        return 2.0 ** float(self.log_value)  # reprolint: allow(RL-EXACT) -- presentation: float rendering of the exact bound; log_value stays the exact Fraction

    def optimal_set_function(self, universe: Sequence[str]) -> SetFunction:
        """The optimal ``h`` as a :class:`SetFunction`."""
        return SetFunction(
            tuple(universe), {s: v for s, v in self.h_values.items() if s}
        )

    def dual_certificate_value(self) -> Fraction:
        """``sum δ_{Y|X} · n_{Y|X}`` — must equal ``log_value`` (strong duality)."""
        total = Fraction(0)
        for pair, coefficient in self.delta.items():
            if coefficient:
                total += coefficient * self.constraint_for_pair[pair].log_bound
        return total


class PolymatroidProgram:
    """Builder/solver for set-function LPs over a fixed universe and class."""

    def __init__(
        self,
        universe: Sequence[str],
        log_constraints: Iterable[LogConstraint],
        function_class: str = "polymatroid",
    ) -> None:
        if function_class not in FUNCTION_CLASSES:
            raise LPError(
                f"unknown function class {function_class!r}; pick from {FUNCTION_CLASSES}"
            )
        self.universe = tuple(universe)
        self.varmap = VarMap.of(self.universe)
        self.function_class = function_class
        self.log_constraints = list(log_constraints)
        full = frozenset(self.universe)
        for constraint in self.log_constraints:
            if not constraint.y <= full:
                raise LPError(
                    f"constraint {constraint} outside universe {self.universe}"
                )
        #: base models (all rows except the per-solve target rows/objective),
        #: built lazily once per (maximin?) flavour and cloned per solve —
        #: batched bound queries over the same program share every class and
        #: degree-constraint row instead of rebuilding them per LP.
        self._bases: dict[bool, LPModel] = {}

    # -- model construction -----------------------------------------------------------
    #
    # LP variables are subset *masks* (ints), one per non-empty subset in
    # canonical size-lexicographic order; constraint names carry masks too.
    # The frozenset-facing results are reassembled in :meth:`maximize`.

    def _base_model(self, maximin: bool) -> LPModel:
        base = self._bases.get(maximin)
        if base is None:
            vm = self.varmap
            base = LPModel()
            if maximin:
                base.add_variable("w", objective=1)
            for mask in vm.subset_masks():
                if mask:
                    base.add_variable(mask, objective=0)
            self._add_class_rows(base)
            one = Fraction(1)
            for constraint in self.log_constraints:
                y_mask = vm.mask_of(constraint.y)
                x_mask = vm.mask_of(constraint.x)
                coeffs: dict = {y_mask: one}
                if x_mask:
                    coeffs[x_mask] = -one
                base.add_le_constraint(
                    ("dc", x_mask, y_mask), coeffs, constraint.log_bound
                )
            self._bases[maximin] = base
        return base

    def _build(self, targets: Sequence[int]) -> LPModel:
        maximin = len(targets) > 1
        if maximin:
            # Target rows prepended so the row order (targets, class rows,
            # degree rows) — and hence the exact simplex pivot sequence —
            # matches a from-scratch build exactly.
            return self._base_model(True).clone(
                prefix_constraints=[
                    (("target", target), {"w": 1, target: -1}, 0)
                    for target in targets
                ]
            )
        model = self._base_model(False).clone()
        model.set_objective(targets[0], 1)
        return model

    def _add_class_rows(self, model: LPModel) -> None:
        if self.function_class in ("polymatroid", "polymatroid+zy"):
            for name, coeffs, rhs in _elemental_lp_rows(self.varmap.n):
                model.add_le_constraint(name, coeffs, rhs)
            if self.function_class == "polymatroid+zy":
                from repro.entropy.nonshannon import zhang_yeung_mask_rows

                for tup, coeffs in zhang_yeung_mask_rows(self.varmap):
                    model.add_le_constraint(("zy", tup), coeffs, 0)
        elif self.function_class == "subadditive":
            self._add_subadditive_rows(model)
        elif self.function_class == "modular":
            self._add_modular_rows(model)

    def _add_subadditive_rows(self, model: LPModel) -> None:
        """Monotonicity (single-element steps) + subadditivity (disjoint pairs)."""
        vm = self.varmap
        masks = [m for m in vm.subset_masks() if m]
        order = {m: i for i, m in enumerate(masks)}
        for mask in masks:
            rest = vm.full_mask & ~mask
            while rest:
                bit = rest & -rest
                rest ^= bit
                model.add_le_constraint(
                    ("mono", mask, mask | bit), {mask: 1, mask | bit: -1}, 0
                )
        for x in masks:
            for y in masks:
                if x & y or order[x] > order[y]:
                    continue
                model.add_le_constraint(
                    ("subadd", x, y), {x | y: 1, x: -1, y: -1}, 0
                )

    def _add_modular_rows(self, model: LPModel) -> None:
        """``h(S) = sum_v h({v})`` via paired inequalities."""
        minus_one = Fraction(-1)
        one = Fraction(1)
        for mask in self.varmap.subset_masks():
            if mask.bit_count() < 2:
                continue
            singles = {bit: minus_one for bit in self.varmap.bits(mask)}
            model.add_le_constraint(
                ("modular+", mask), {mask: one, **singles}, 0
            )
            singles_pos = {bit: one for bit in self.varmap.bits(mask)}
            model.add_le_constraint(
                ("modular-", mask), {mask: minus_one, **singles_pos}, 0
            )

    # -- solving ------------------------------------------------------------------------

    def maximize(
        self,
        targets: Sequence[frozenset] | frozenset,
        backend: str = "exact",
    ) -> BoundResult:
        """Compute ``max_{h in F ∩ H} min_{B in targets} h(B)``.

        Args:
            targets: one target set or a sequence of target sets.
            backend: ``"exact"`` or ``"scipy"``.
        """
        vm = self.varmap
        if isinstance(targets, frozenset):
            target_list: list[frozenset] = [targets]
        else:
            target_list = [frozenset(t) for t in targets]
        if not target_list:
            raise LPError("at least one target required")
        model = self._build([vm.mask_of(t) for t in target_list])
        solution = model.maximize(backend=backend)

        h_values = {
            vm.set_of(s): v
            for s, v in solution.values.items()
            if isinstance(s, int)
        }
        h_values[frozenset()] = Fraction(0)

        delta: dict[tuple[frozenset, frozenset], Fraction] = {}
        sigma: dict[tuple[frozenset, frozenset], Fraction] = {}
        mu: dict[tuple[frozenset, frozenset], Fraction] = {}
        lambda_weights: dict[frozenset, Fraction] = {}
        constraint_for_pair: dict[tuple[frozenset, frozenset], LogConstraint] = {
            c.pair: c for c in self.log_constraints
        }
        for name, value in solution.duals.items():
            kind = name[0]
            if kind == "dc":
                delta[(vm.set_of(name[1]), vm.set_of(name[2]))] = value
            elif kind == "submod":
                sigma[(vm.set_of(name[1]), vm.set_of(name[2]))] = value
            elif kind == "mono":
                mu[(vm.set_of(name[1]), vm.set_of(name[2]))] = value
            elif kind == "target":
                lambda_weights[vm.set_of(name[1])] = value
        if len(target_list) == 1:
            lambda_weights = {target_list[0]: Fraction(1)}
        return BoundResult(
            log_value=solution.objective,
            h_values=h_values,
            lambda_weights=lambda_weights,
            delta=delta,
            sigma=sigma,
            mu=mu,
            constraint_for_pair=constraint_for_pair,
            targets=tuple(target_list),
        )


def log_size_bound(
    universe: Sequence[str],
    targets: Sequence[frozenset] | frozenset,
    constraints: ConstraintSet | Iterable[DegreeConstraint] | Iterable[LogConstraint],
    function_class: str = "polymatroid",
    backend: str = "exact",
) -> BoundResult:
    """``LogSizeBound_{F ∩ H_DC}`` (Eq. 7) — the module's main entry point.

    Args:
        universe: the query variables.
        targets: target set(s) — ``[n]`` for a full CQ, the head sets ``B``
            for a disjunctive rule.
        constraints: degree constraints (integer or log-space).
        function_class: one of :data:`FUNCTION_CLASSES`.
        backend: LP backend.
    """
    rows: list[LogConstraint] = []
    for constraint in constraints:
        if isinstance(constraint, LogConstraint):
            rows.append(constraint)
        else:
            rows.append(
                LogConstraint(
                    constraint.x_key,
                    constraint.y_key,
                    constraint.log_bound,
                    origin=constraint,
                )
            )
    program = PolymatroidProgram(universe, rows, function_class)
    return program.maximize(targets, backend=backend)
