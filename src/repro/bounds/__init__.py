"""Output-size bounds: edge covers, polymatroid LPs, entropic outer bounds.

Architecture layer 3 (see ``docs/architecture.md``), on top of the exact
LP layer.  Contract: every bound, dual witness, and gap is exact
``fractions.Fraction`` arithmetic end to end — mask-indexed on the hot
paths, frozenset-facing only at the :class:`BoundResult` boundary.
"""

from repro.bounds.edge_covers import (
    agm_bound,
    agm_log_bound,
    fractional_edge_cover,
    fractional_edge_cover_number,
    integral_edge_cover_log_bound,
    vertex_log_bound,
)
from repro.bounds.entropic import (
    GapResult,
    entropic_outer_bound,
    polymatroid_vs_entropic_gap,
)
from repro.bounds.polymatroid import (
    BoundResult,
    LogConstraint,
    PolymatroidProgram,
    constraints_to_log,
    edge_dominated_constraints,
    log_size_bound,
    vertex_dominated_constraints,
)

__all__ = [
    "BoundResult",
    "GapResult",
    "LogConstraint",
    "PolymatroidProgram",
    "agm_bound",
    "agm_log_bound",
    "constraints_to_log",
    "edge_dominated_constraints",
    "entropic_outer_bound",
    "fractional_edge_cover",
    "fractional_edge_cover_number",
    "integral_edge_cover_log_bound",
    "log_size_bound",
    "polymatroid_vs_entropic_gap",
    "vertex_dominated_constraints",
    "vertex_log_bound",
]
