"""Output-size bounds: edge covers, polymatroid LPs, entropic outer bounds."""

from repro.bounds.edge_covers import (
    agm_bound,
    agm_log_bound,
    fractional_edge_cover,
    fractional_edge_cover_number,
    integral_edge_cover_log_bound,
    vertex_log_bound,
)
from repro.bounds.entropic import (
    GapResult,
    entropic_outer_bound,
    polymatroid_vs_entropic_gap,
)
from repro.bounds.polymatroid import (
    BoundResult,
    LogConstraint,
    PolymatroidProgram,
    constraints_to_log,
    edge_dominated_constraints,
    log_size_bound,
    vertex_dominated_constraints,
)

__all__ = [
    "BoundResult",
    "GapResult",
    "LogConstraint",
    "PolymatroidProgram",
    "agm_bound",
    "agm_log_bound",
    "constraints_to_log",
    "edge_dominated_constraints",
    "entropic_outer_bound",
    "fractional_edge_cover",
    "fractional_edge_cover_number",
    "integral_edge_cover_log_bound",
    "log_size_bound",
    "polymatroid_vs_entropic_gap",
    "vertex_dominated_constraints",
    "vertex_log_bound",
]
