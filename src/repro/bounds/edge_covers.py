"""Edge-cover output-size bounds (§2.1.1, Eqs. 28–35).

The classic hierarchy for a natural join query ``Q`` with relation sizes
``N_F``:

    |Q| <= VB(Q) = N^n                          (vertex bound)
    |Q| <= 2^{ρ(Q, N)}                          (integral edge cover)
    |Q| <= AGM(Q, N) = 2^{ρ*(Q, N)}             (fractional edge cover / AGM)

``ρ*`` is a small LP over one λ-variable per edge; ``ρ`` is its integer
version, computed by brute force over multiplicity vectors (query-complexity
is allowed to be exponential, Prop. 3.2's discussion).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from repro.core.constraints import log2_fraction
from repro.core.hypergraph import Hypergraph
from repro.exceptions import LPError, QueryError
from repro.lp import LPModel

__all__ = [
    "fractional_edge_cover",
    "fractional_edge_cover_number",
    "integral_edge_cover_log_bound",
    "agm_log_bound",
    "agm_bound",
    "vertex_log_bound",
]


def _edge_log_sizes(
    hypergraph: Hypergraph, sizes: Mapping[frozenset, int] | None
) -> list[Fraction]:
    """Per-edge ``log2 N_F``; ``sizes=None`` means all edges have size 2 (log 1)."""
    logs = []
    for edge in hypergraph.edges:
        if sizes is None:
            logs.append(Fraction(1))
        else:
            try:
                logs.append(log2_fraction(sizes[edge]))
            except KeyError:
                raise QueryError(f"no size given for edge {sorted(edge)}") from None
    return logs


def fractional_edge_cover(
    hypergraph: Hypergraph,
    sizes: Mapping[frozenset, int] | None = None,
    backend: str = "exact",
) -> tuple[Fraction, dict[int, Fraction]]:
    """Minimize ``sum_F λ_F log N_F`` over fractional edge covers (Eq. 33).

    Returns:
        ``(ρ*(Q, N), λ)`` where λ maps *edge index* (atom position) to weight.
        With ``sizes=None`` this is the normalized cover number ρ*(Q) (Eq. 35).
    """
    logs = _edge_log_sizes(hypergraph, sizes)
    # Minimize via max of the negation: max -sum λ_F n_F s.t. -sum_{F∋v} λ_F <= -1.
    model = LPModel()
    edge_masks = hypergraph.edge_masks()
    for idx in range(len(edge_masks)):
        model.add_variable(("λ", idx), objective=-logs[idx])
    for bit, v in enumerate(hypergraph.vertices):
        coeffs = {
            ("λ", idx): -1
            for idx, edge_mask in enumerate(edge_masks)
            if edge_mask >> bit & 1
        }
        if not coeffs:
            raise QueryError(f"vertex {v!r} is covered by no edge")
        model.add_le_constraint(("cover", v), coeffs, Fraction(-1))
    solution = model.maximize(backend=backend)
    cover = {
        idx: solution.values[("λ", idx)]
        for idx in range(len(hypergraph.edges))
        if solution.values[("λ", idx)]
    }
    return -solution.objective, cover


def fractional_edge_cover_number(
    hypergraph: Hypergraph, backend: str = "exact"
) -> Fraction:
    """``ρ*(Q)`` of Eq. (35): the size-independent fractional cover number."""
    value, _ = fractional_edge_cover(hypergraph, sizes=None, backend=backend)
    return value


def integral_edge_cover_log_bound(
    hypergraph: Hypergraph, sizes: Mapping[frozenset, int] | None = None
) -> Fraction:
    """``ρ(Q, N)`` of Eq. (32): best integral edge cover, brute force.

    Edge multiplicities beyond 1 never help an integral cover (all copies of
    a hyperedge have the same size), so the search is over subsets of
    *distinct* edge masks — enumerated with a one-step DP so each selector
    costs one union and one addition instead of a full re-scan.
    """
    all_logs = _edge_log_sizes(hypergraph, sizes)
    seen: dict[int, Fraction] = {}
    for idx, edge_mask in enumerate(hypergraph.edge_masks()):
        if edge_mask not in seen:
            seen[edge_mask] = all_logs[idx]
    edge_masks = list(seen)
    logs = list(seen.values())
    full = hypergraph.varmap.full_mask
    best: Fraction | None = Fraction(0) if full == 0 else None
    k = len(edge_masks)
    covered = [0] * (1 << k)
    total: list[Fraction] = [Fraction(0)] * (1 << k)
    for s in range(1, 1 << k):
        low = s & -s
        idx = low.bit_length() - 1
        prev = s ^ low
        covered[s] = covered[prev] | edge_masks[idx]
        total[s] = total[prev] + logs[idx]
        if covered[s] == full and (best is None or total[s] < best):
            best = total[s]
    if best is None:
        raise LPError("hypergraph has no integral edge cover")
    return best


def agm_log_bound(
    hypergraph: Hypergraph,
    sizes: Mapping[frozenset, int],
    backend: str = "exact",
) -> Fraction:
    """``log2 AGM(Q, (N_F))`` (Eq. 30) = ρ*(Q, (N_F))."""
    value, _ = fractional_edge_cover(hypergraph, sizes, backend=backend)
    return value


def agm_bound(
    hypergraph: Hypergraph,
    sizes: Mapping[frozenset, int],
    backend: str = "exact",
) -> float:
    """The AGM bound itself, ``2^{ρ*}``."""
    return 2.0 ** float(agm_log_bound(hypergraph, sizes, backend=backend))  # reprolint: allow(RL-EXACT) -- presentation: float AGM value; exact callers use agm_log_bound


def vertex_log_bound(hypergraph: Hypergraph, domain_size: int) -> Fraction:
    """``log2 VB(Q) = n · log2 N`` (Eq. 28)."""
    return Fraction(hypergraph.n) * log2_fraction(domain_size)
