"""Outer bounds on the entropic region and the Theorem 1.3 / Lemma 4.5 gaps.

The true entropic bound ``LogSizeBound_{cl(Γ*n) ∩ H_DC}`` is not computable —
``cl(Γ*n)`` needs infinitely many non-Shannon inequalities [41] — but it is
sandwiched:

    (anything entropic achieves)  <=  entropic bound  <=  ZY-outer bound
                                                      <=  polymatroid bound.

The *ZY-outer bound* adds every Zhang–Yeung instantiation to the polymatroid
LP, exactly as the paper does to prove the polymatroid bound non-tight.  This
module packages those comparisons, including the paper's two showcase gaps:

* the **Zhang–Yeung query** (Eq. 49): polymatroid = 4·logN, ZY-outer
  <= 43/11·logN (Theorem 1.3);
* the **15-target disjunctive rule** (Eq. 65): polymatroid >= 4·logN,
  entropic <= 330/85·logN (Lemma 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

from repro.bounds.polymatroid import BoundResult, log_size_bound
from repro.core.constraints import ConstraintSet, DegreeConstraint

__all__ = ["GapResult", "entropic_outer_bound", "polymatroid_vs_entropic_gap"]


@dataclass(frozen=True)
class GapResult:
    """Side-by-side polymatroid vs ZY-tightened bounds.

    Attributes:
        polymatroid: the Γn ∩ H_DC bound result.
        zy_outer: the (Γn ∩ ZY) ∩ H_DC bound result.
        log_gap: ``polymatroid.log_value - zy_outer.log_value`` (>= 0).
    """

    polymatroid: BoundResult
    zy_outer: BoundResult

    @property
    def log_gap(self) -> Fraction:
        return self.polymatroid.log_value - self.zy_outer.log_value

    @property
    def has_gap(self) -> bool:
        """True when the polymatroid bound is *provably* not tight."""
        return self.log_gap > 0


def entropic_outer_bound(
    universe: Sequence[str],
    targets: Sequence[frozenset] | frozenset,
    constraints: ConstraintSet | Iterable[DegreeConstraint],
    backend: str = "exact",
) -> BoundResult:
    """``LogSizeBound`` over Γn tightened with all ZY instantiations."""
    return log_size_bound(
        universe, targets, constraints, function_class="polymatroid+zy", backend=backend
    )


def polymatroid_vs_entropic_gap(
    universe: Sequence[str],
    targets: Sequence[frozenset] | frozenset,
    constraints: ConstraintSet | Iterable[DegreeConstraint],
    backend: str = "exact",
) -> GapResult:
    """Compute both bounds and report the (Theorem 1.3-style) gap."""
    poly = log_size_bound(
        universe, targets, constraints, function_class="polymatroid", backend=backend
    )
    zy = entropic_outer_bound(universe, targets, constraints, backend=backend)
    return GapResult(polymatroid=poly, zy_outer=zy)
