"""Datalog layer: conjunctive queries and single disjunctive datalog rules."""

from repro.datalog.atoms import Atom
from repro.datalog.conjunctive import ConjunctiveQuery
from repro.datalog.parser import parse_atom, parse_query, parse_rule
from repro.datalog.rule import DisjunctiveRule, TargetModel

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "DisjunctiveRule",
    "TargetModel",
    "parse_atom",
    "parse_query",
    "parse_rule",
]
