"""Datalog layer (layer 5 of 12 — see ``docs/architecture.md``).

Conjunctive queries, disjunctive datalog rules (the paper's §8 front end),
and — new in the recursive subsystem — stratified datalog programs
evaluated to fixpoint semi-naïvely on the IVM machinery
(:mod:`repro.datalog.fixpoint`, :mod:`repro.datalog.engine`).

Contract: evaluation is **exact** and **deterministic** — fixpoint results
are canonical sorted relations, bit-identical across every driver,
execution backend, and worker count, and bit-identical to naive
re-evaluation (:func:`~repro.datalog.fixpoint.evaluate_program_naive`).
Program syntax and semantics are documented in ``docs/datalog.md``.
"""

from repro.datalog.atoms import Atom
from repro.datalog.conjunctive import ConjunctiveQuery
from repro.datalog.engine import DatalogEngine, DatalogResult
from repro.datalog.fixpoint import (
    DatalogProgram,
    DatalogRule,
    Stratum,
    evaluate_program_naive,
)
from repro.datalog.parser import (
    parse_atom,
    parse_datalog_rule,
    parse_program,
    parse_query,
    parse_rule,
)
from repro.datalog.rule import DisjunctiveRule, TargetModel

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "DatalogEngine",
    "DatalogProgram",
    "DatalogResult",
    "DatalogRule",
    "DisjunctiveRule",
    "Stratum",
    "TargetModel",
    "evaluate_program_naive",
    "parse_atom",
    "parse_datalog_rule",
    "parse_program",
    "parse_query",
    "parse_rule",
]
