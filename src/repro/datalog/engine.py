""":class:`DatalogEngine` — recursive programs as a maintained database.

The :class:`~repro.planner.QueryEngine`-shaped facade over
:mod:`repro.datalog.fixpoint`: construct it from a
:class:`~repro.datalog.fixpoint.DatalogProgram` (or program text),
``execute(database)`` once to stratify and run the semi-naïve fixpoint,
then ``insert``/``delete`` EDB facts and ``refresh()`` instead of
re-executing — only the strata affected by a batch re-run, and when the
batch is monotone for them (insert-only, no negation on a changed
predicate) they *continue* from their current fixpoint by seeding the
delta rounds with the batch itself, never touching the accumulated
derivations.

Rule bodies plan through the shared :class:`~repro.planner.Planner` with
power-of-two-pinned cardinality constraints, so each body plans exactly
once per isomorphism class and round-0 evaluations across refreshes are
cache hits (``cache_stats``).  With ``workers > 1`` the delta-rule terms
of each round fan out over the :mod:`repro.parallel` worker pool using the
same resident-base protocol as the incremental engine: bases ship once per
compaction epoch, rounds ship only their (tiny) delta runs.

The engine's contract is the repo-wide one: results are bit-identical to
:func:`~repro.datalog.fixpoint.evaluate_program_naive` for every driver,
execution backend, and worker count.  See ``docs/datalog.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.constraints import ConstraintSet, DegreeConstraint
from repro.datalog.conjunctive import ConjunctiveQuery
from repro.datalog.fixpoint import (
    DatalogProgram,
    DatalogRule,
    FixpointStats,
    PredicateStore,
    Stratum,
    TermJob,
    execute_jobs_serial,
    run_stratum,
)
from repro.exceptions import DatalogError, IncrementalError, QueryError
from repro.incremental.delta import SignedDelta
from repro.incremental.ivm import execute_delta_term
from repro.relational.database import Database
from repro.relational.relation import Relation

__all__ = ["DatalogEngine", "DatalogResult"]


def _next_power_of_two(n: int) -> int:
    return 1 << max(0, n - 1).bit_length()


@dataclass(frozen=True, eq=False)
class DatalogResult:
    """The fixpoint: one canonical relation per derived predicate.

    Relations carry sorted distinct code rows over the predicate's
    canonical schema — the same rows for every driver, backend, and worker
    count, and bit-identical to the naive oracle's.
    """

    relations: Mapping[str, Relation]

    def __getitem__(self, name: str) -> Relation:
        relation = self.relations.get(name)
        if relation is None:
            raise DatalogError(f"{name} is not a derived predicate")
        return relation

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self.relations))

    def __iter__(self):
        return iter(self.names)


class DatalogEngine:
    """Evaluate and incrementally maintain a stratified datalog program.

    Example:
        >>> engine = DatalogEngine(parse_program(text))    # doctest: +SKIP
        >>> result = engine.execute(database)  # stratify + fixpoint
        >>> engine.insert("edge", [("d", "e")])
        >>> result = engine.refresh()          # only affected strata re-run
        >>> result["path"]                     # canonical Relation

    The program is stratified at construction, so a non-stratifiable
    program fails before any data is touched.  ``insert``/``delete`` only
    accept base (EDB) predicates — derived content is the program's job.
    """

    DRIVERS = ("generic", "leapfrog", "yannakakis", "panda")

    def __init__(
        self,
        program: DatalogProgram | str,
        constraints: ConstraintSet | None = None,
        backend: str = "exact",
        planner=None,
        workers: int = 1,
        execution_backend: str | None = None,
    ) -> None:
        from repro.planner import Planner

        if isinstance(program, str):
            from repro.datalog.parser import parse_program

            program = parse_program(program)
        self.program = program
        self.strata: tuple[Stratum, ...] = program.stratify()
        self.constraints = constraints
        self.backend = backend
        if execution_backend is not None:
            from repro.relational.backend import resolve_backend

            resolve_backend(execution_backend)  # fail fast on a typo
        self.execution_backend = execution_backend
        self.planner = planner if planner is not None else Planner()
        self.workers = max(1, workers)
        self.stats = FixpointStats()
        self._store: PredicateStore | None = None
        self._source = None
        self._pending: dict[str, tuple[list, list]] = {}
        self._materialized = False
        self._driver = "generic"
        self._rule_engines: dict[DatalogRule, object] = {}
        self._rule_pinned: dict[DatalogRule, ConstraintSet] = {}
        self._pool = None

    # -- lifecycle ---------------------------------------------------------------

    @property
    def cache_stats(self):
        """The shared planner's cache statistics (hit-rate contract)."""
        return self.planner.stats

    def close(self) -> None:
        """Shut down the worker pool and per-rule engines (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        for engine in self._rule_engines.values():
            engine.close()
        self._rule_engines = {}

    def __enter__(self) -> "DatalogEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- binding -----------------------------------------------------------------

    def bind(self, database: Database) -> None:
        """Adopt ``database`` as the EDB (resets any previous binding)."""
        self.close()
        arities: dict[str, int] = {}
        for rule in self.program.rules:
            for atom in (rule.head,) + rule.body + rule.negated:
                arities[atom.name] = atom.arity
        for name in self.program.edb_predicates:
            if name not in database:
                raise DatalogError(
                    f"base predicate {name} is missing from the database"
                )
            relation = database[name]
            if len(relation.schema) != arities[name]:
                raise DatalogError(
                    f"base predicate {name} has arity {len(relation.schema)} "
                    f"in the database but {arities[name]} in the program"
                )
        for name in self.program.idb_predicates:
            if name in database:
                raise DatalogError(
                    f"derived predicate {name} is already a database "
                    f"relation — rename one of them"
                )
        store = PredicateStore()
        for name in self.program.edb_predicates:
            store.adopt(database[name])
        for name in self.program.idb_predicates:
            store.adopt(
                Relation.from_codes(name, self.program.schema(name), [])
            )
        self._register_atoms(store)
        self._store = store
        self._source = database
        self._pending = {}
        self._materialized = False
        self._rule_pinned = {}
        self.stats = FixpointStats()

    def _register_atoms(self, store: PredicateStore) -> None:
        for rule in self.program.rules:
            for atom in rule.body + rule.negated:
                store.register(atom)

    def _require_bound(self) -> PredicateStore:
        if self._store is None:
            raise IncrementalError(
                "engine is not bound — call execute(database) first"
            )
        return self._store

    def relation(self, name: str) -> Relation:
        """The current version of any predicate (EDB or IDB)."""
        store = self._require_bound()
        if name not in store:
            raise DatalogError(f"unknown predicate {name}")
        return store.relation(name)

    # -- changes -----------------------------------------------------------------

    def insert(self, name: str, rows: Iterable[tuple]) -> None:
        """Buffer EDB fact inserts (applied on the next refresh)."""
        self._buffer(name, rows, 0)

    def delete(self, name: str, rows: Iterable[tuple]) -> None:
        """Buffer EDB fact deletes (applied on the next refresh)."""
        self._buffer(name, rows, 1)

    def _buffer(self, name: str, rows: Iterable[tuple], side: int) -> None:
        self._require_bound()
        if name not in self.program.edb_predicates:
            raise IncrementalError(
                f"{name!r} is not a base (EDB) predicate — derived facts "
                f"are the program's job"
            )
        entry = self._pending.setdefault(name, ([], []))
        entry[side].extend(tuple(row) for row in rows)

    @property
    def has_pending_changes(self) -> bool:
        return any(ins or dels for ins, dels in self._pending.values())

    def discard_pending(self) -> None:
        """Drop the buffered (uncommitted) changes.

        A batch that fails validation on refresh stays buffered — nothing
        was applied — so the caller can fix or discard it wholesale.
        """
        self._pending = {}

    # -- execution ---------------------------------------------------------------

    def execute(
        self, database: Database | None = None, driver: str = "generic"
    ) -> DatalogResult:
        """Bind (first call) or refresh; returns a :class:`DatalogResult`.

        Passing a *different* database re-binds from scratch; passing the
        bound database (or ``None``) applies any pending EDB changes
        through the affected strata and serves the maintained fixpoint.
        ``driver`` selects how round-0 rule bodies evaluate; delta rounds
        are driver-independent and the result is bit-identical regardless.
        """
        if driver not in self.DRIVERS:
            raise QueryError(
                f"unknown driver {driver!r}; pick from {self.DRIVERS}"
            )
        if database is not None and database is not self._source:
            self.bind(database)
        self._require_bound()
        self._driver = driver
        from repro.relational.backend import scoped_backend

        with scoped_backend(self.execution_backend):
            if not self._materialized:
                self._initial_run()
                self._materialized = True
            else:
                self._commit()
        return self._result()

    def refresh(self, driver: str = "generic") -> DatalogResult:
        """Apply pending EDB changes and return the maintained fixpoint."""
        return self.execute(None, driver)

    def recompute(self, driver: str = "generic") -> DatalogResult:
        """A from-scratch fixpoint on the current data (fallback/oracle path).

        Applies any pending changes first, resets every derived predicate,
        and re-runs all strata.  Shares the planner and pinned constraints,
        so repeated recomputes stay plan-warm; tests use this to pin the
        continuation path's bit-identity.
        """
        if driver not in self.DRIVERS:
            raise QueryError(
                f"unknown driver {driver!r}; pick from {self.DRIVERS}"
            )
        store = self._require_bound()
        self._driver = driver
        from repro.relational.backend import scoped_backend

        with scoped_backend(self.execution_backend):
            deltas = self._drain_pending()
            for name in sorted(deltas):
                store.apply(name, deltas[name])
            self._reset_predicates(self.program.idb_predicates)
            for stratum in self.strata:
                run_stratum(
                    stratum, self.program, store, self.stats,
                    evaluate_rule=self._evaluate_rule,
                    executor=self._executor(),
                )
            self.stats.compactions += store.compact(sorted(deltas))
        self._materialized = True
        self.stats.recomputes += 1
        return self._result()

    def annotated(self, name: str, semiring, weight=None):
        """The fixpoint of one predicate lifted into ``semiring``.

        Set semantics throughout: each derived tuple is annotated once
        (via ``weight``, default the semiring's unit lifting), not once
        per derivation — derivation counting diverges on cyclic data.
        Lifted results inherit the bit-identity contract because the
        underlying relation does.
        """
        from repro.faq.annotated import AnnotatedRelation

        store = self._require_bound()
        if name not in self.program.idb_predicates:
            raise DatalogError(f"{name} is not a derived predicate")
        if not self._materialized:
            raise IncrementalError(
                "no fixpoint yet — call execute(database) first"
            )
        return AnnotatedRelation.from_relation(
            store.relation(name), semiring, weight
        )

    def _result(self) -> DatalogResult:
        store = self._require_bound()
        return DatalogResult(
            {
                name: store.relation(name)
                for name in self.program.idb_predicates
            }
        )

    # -- the fixpoint paths ----------------------------------------------------------

    def _initial_run(self) -> None:
        store = self._require_bound()
        for stratum in self.strata:
            run_stratum(
                stratum, self.program, store, self.stats,
                evaluate_rule=self._evaluate_rule,
                executor=self._executor(),
            )

    def _drain_pending(self) -> dict[str, SignedDelta]:
        """Validate and return the pending batch as per-relation deltas.

        Validation happens before anything mutates: a
        :class:`~repro.exceptions.DeltaError` leaves every predicate
        untouched with the batch still buffered.
        """
        store = self._require_bound()
        deltas: dict[str, SignedDelta] = {}
        for name in sorted(self._pending):
            inserts, deletes = self._pending[name]
            delta = SignedDelta.from_changes(
                store.relation(name), inserts, deletes
            )
            if not delta.is_empty:
                deltas[name] = delta
        self._pending = {}
        return deltas

    def _commit(self) -> bool:
        """Apply one EDB batch through the affected strata; True if changed."""
        store = self._require_bound()
        deltas = self._drain_pending()
        if not deltas:
            return False
        self.stats.batches += 1
        affected = self._affected_strata(frozenset(deltas))
        insert_only = all(
            min(delta.signs) > 0 for delta in deltas.values()
        )
        changed = set(deltas)
        for stratum in affected:
            changed.update(stratum.predicates)
        negation_hit = any(
            atom.name in changed
            for stratum in affected
            for rule in stratum.rules
            for atom in rule.negated
        )
        if insert_only and not negation_hit:
            # Monotone for every affected stratum: the current fixpoints
            # are valid under-approximations, so the batch seeds their
            # delta rounds directly — no derived tuple is recomputed.
            self._continue_strata(deltas, affected)
            self.stats.continuations += 1
        else:
            # Deletes (or negation over a changed predicate) can retract
            # derived tuples; affected strata reset and re-run.  The
            # affected set is downward-closed, so everything else keeps
            # its fixpoint untouched.
            self._recompute_strata(deltas, affected)
            self.stats.recomputes += 1
        self.stats.compactions += store.compact(sorted(deltas))
        return True

    def _affected_strata(self, changed: frozenset) -> list[Stratum]:
        """The strata reading a changed predicate, downward-closed, in order."""
        affected = []
        dirty = set(changed)
        for stratum in self.strata:
            if any(
                name in dirty
                for rule in stratum.rules
                for name in rule.body_predicates
            ):
                affected.append(stratum)
                dirty.update(stratum.predicates)
        return affected

    def _continue_strata(
        self, deltas: dict[str, SignedDelta], affected: list[Stratum]
    ) -> None:
        store = self._require_bound()
        # Announcements: changed predicate -> (net insert delta, the
        # pre-change binding relations).  Downstream strata consume them as
        # seed rounds; snapshots stay valid because a predicate is
        # quiescent between its announcement and every consumption.
        announced: dict[str, tuple[SignedDelta, dict]] = {}
        for name in sorted(deltas):
            snapshot = {
                key: store.binding_by_key(key).current
                for key in store.binding_keys(name)
            }
            store.apply(name, deltas[name])
            announced[name] = (deltas[name], snapshot)
        for stratum in affected:
            referenced = {
                name
                for rule in stratum.rules
                for name in rule.body_predicates
            }
            seeds: dict[str, SignedDelta] = {}
            seed_old: dict[tuple, Relation] = {}
            for name in sorted(announced):
                if name in referenced:
                    delta, snapshot = announced[name]
                    seeds[name] = delta
                    seed_old.update(snapshot)
            if not seeds:
                continue
            pre: dict[str, dict] = {
                name: {
                    key: store.binding_by_key(key).current
                    for key in store.binding_keys(name)
                }
                for name in stratum.predicates
            }
            fresh = run_stratum(
                stratum, self.program, store, self.stats,
                evaluate_rule=self._evaluate_rule,
                executor=self._executor(),
                seeds=seeds,
                seed_old=seed_old,
            )
            for name in sorted(fresh):
                rows = sorted(fresh[name])
                announced[name] = (
                    SignedDelta(
                        self.program.schema(name), rows, [1] * len(rows)
                    ),
                    pre[name],
                )

    def _recompute_strata(
        self, deltas: dict[str, SignedDelta], affected: list[Stratum]
    ) -> None:
        store = self._require_bound()
        for name in sorted(deltas):
            store.apply(name, deltas[name])
        reset = sorted(
            {name for stratum in affected for name in stratum.predicates}
        )
        self._reset_predicates(reset)
        for stratum in affected:
            run_stratum(
                stratum, self.program, store, self.stats,
                evaluate_rule=self._evaluate_rule,
                executor=self._executor(),
            )

    def _reset_predicates(self, names: Sequence[str]) -> None:
        store = self._require_bound()
        for name in names:
            store.adopt(
                Relation.from_codes(name, self.program.schema(name), [])
            )
        # adopt() drops the name's binding logs; re-register every atom so
        # the delta rounds find their bindings (a no-op for live ones).
        self._register_atoms(store)

    # -- round-0 rule evaluation (planner path) ----------------------------------------

    def _evaluate_rule(self, state) -> list:
        """One rule's full positive body join on the current data.

        Empty inputs shortcut to the empty join — a recursive rule whose
        stratum predicate is still empty at round 0 never reaches the
        planner, so plans are built only for joins that can produce rows.
        """
        store = self._require_bound()
        rule = state.rule
        current: dict[str, Relation] = {}
        for atom in rule.body:
            current.setdefault(atom.name, store.relation(atom.name))
        if any(relation.is_empty() for relation in current.values()):
            return []
        engine = self._rule_engine(rule)
        result = engine.execute(
            Database(tuple(current.values())),
            driver=self._driver,
            constraints=self._pinned_for(rule),
        )
        return result.relation.code_rows

    def _rule_engine(self, rule: DatalogRule):
        engine = self._rule_engines.get(rule)
        if engine is None:
            from repro.parallel import ParallelQueryEngine

            engine = ParallelQueryEngine(
                ConjunctiveQuery.full(rule.body, name=rule.head.name),
                backend=self.backend,
                planner=self.planner,
                workers=1,
                execution_backend=self.execution_backend,
            )
            self._rule_engines[rule] = engine
        return engine

    def _pinned_for(self, rule: DatalogRule) -> ConstraintSet:
        """Power-of-two-rounded per-rule cardinalities: stable plan keys.

        Mirrors the incremental engine's pinning: the same data-independent
        plan serves while relation sizes drift within a factor of two, and
        a predicate outgrowing its bound re-pins (``stats.replans``) —
        which is what makes round-0 evaluations across refreshes planner
        cache hits instead of fresh plans.
        """
        if self.constraints is not None:
            return self.constraints
        store = self._require_bound()
        bindings = [
            (atom, store.binding(atom).current) for atom in rule.body
        ]
        pinned = self._rule_pinned.get(rule)
        if pinned is not None:
            by_key: dict[tuple, int] = {}
            for c in pinned:
                bound = by_key.get(c.y_key)
                by_key[c.y_key] = (
                    c.bound if bound is None else min(bound, c.bound)
                )
            stale = any(
                len(relation) > by_key[tuple(sorted(atom.variables))]
                for atom, relation in bindings
            )
            if not stale:
                return pinned
            self.stats.replans += 1
        constraints = []
        seen = set()
        for atom, relation in bindings:
            y = tuple(sorted(atom.variables))
            bound = _next_power_of_two(max(1, len(relation)))
            if (y, bound) not in seen:
                seen.add((y, bound))
                constraints.append(DegreeConstraint.make((), y, bound))
        pinned = ConstraintSet(constraints)
        self._rule_pinned[rule] = pinned
        return pinned

    # -- pooled delta terms ----------------------------------------------------------

    def _executor(self):
        if self.workers <= 1:
            return execute_jobs_serial
        return self._execute_jobs_pooled

    def _execute_jobs_pooled(self, jobs: Sequence[TermJob]) -> list:
        """Fan a round's delta-rule terms out over the worker pool.

        The binding-level *base* relations are resident in the workers
        under content-digest tokens (shipped once per compaction epoch);
        each term task carries only the signed runs lifting a base to the
        version its side of the delta rule needs, plus the term's (tiny)
        delta rows.  Jobs without version lifts — seed rounds consuming
        announcement snapshots — run in-process alongside.
        """
        from repro.parallel.pool import (
            WorkerPool,
            pack_output_rows,
            run_delta_term_task,
            unpack_columns,
        )
        from repro.relational.backend import current_backend
        from repro.relational.operators import current_counter

        store = self._require_bound()
        pooled = [
            (position, job)
            for position, job in enumerate(jobs)
            if job.versions is not None
        ]
        if len(pooled) <= 1:
            return execute_jobs_serial(jobs)

        logs = {}
        for _, job in pooled:
            for key in job.keys:
                if key not in logs:
                    logs[key] = store.binding_by_key(key)
        token_of = {}
        tokens = []
        entries = []
        for key in sorted(logs):
            log = logs[key]
            token = f"{key[0]}|{'.'.join(key[1])}"
            token_of[key] = token
            column_set = log.base.column_set(log.base.schema)
            digest = column_set.content_digest()
            tokens.append((token, digest))
            entries.append((token, log.base.schema, log.base, digest))
        tokens = tuple(tokens)
        if self._pool is None:
            self._pool = WorkerPool(self.workers)
        self._pool.ensure_database(tokens, entries)

        packed_runs: dict[tuple, tuple | None] = {}

        def runs_payload(key, version):
            log = logs[key]
            if version == log.base_version:
                return None
            cache_key = (key, version)
            if cache_key not in packed_runs:
                arity = len(log.base.schema)
                packed_runs[cache_key] = tuple(
                    (pack_output_rows(run.rows, arity), run.signs.tobytes())
                    for run in log.runs[: version - log.base_version]
                )
            return packed_runs[cache_key]

        # Resolved under the engine's ``scoped_backend`` (see ``execute``),
        # so workers run each term under the same backend as the serial path.
        exec_backend = current_backend()
        tasks = []
        for _, job in pooled:
            specs = []
            for j, key in enumerate(job.keys):
                token = token_of[key]
                if j == job.index:
                    buffer = pack_output_rows(job.delta_rows, len(key[1]))
                    specs.append(("delta", token, buffer))
                    continue
                payload = runs_payload(key, job.versions[j])
                if payload is None:
                    specs.append(("resident", token))
                else:
                    specs.append(
                        ("version", token, job.versions[j], payload)
                    )
            tasks.append(
                (tokens, job.state.order, tuple(specs), exec_backend)
            )

        outputs = self._pool.map(run_delta_term_task, tasks)
        self.stats.pooled_rounds += 1
        counter = current_counter()
        results: list = [None] * len(jobs)
        for (position, job), (buffer, counts) in zip(pooled, outputs):
            counter.absorb(counts)
            rows, _ = unpack_columns(buffer, len(job.state.order))
            results[position] = rows
        for position, job in enumerate(jobs):
            if results[position] is None:
                results[position] = execute_delta_term(
                    job.relations, job.state.order, job.index
                )
        return results
