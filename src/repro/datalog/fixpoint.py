"""Recursive Datalog: stratification + semi-naïve fixpoint on the IVM kernels.

A :class:`DatalogProgram` is a set of rules ``head :- body`` (single-atom
heads, optionally negated body atoms).  Evaluation proceeds in two layers,
both documented in ``docs/datalog.md``:

* **Stratification** (:meth:`DatalogProgram.stratify`): the predicate
  dependency graph is condensed into strongly connected components
  (iterative Tarjan over sorted adjacency — deterministic), each SCC
  becomes one :class:`Stratum`, strata are ordered topologically, and a
  negated dependency *inside* an SCC (a negative cycle) is rejected with
  :class:`~repro.exceptions.DatalogError` — the classic stratified-negation
  condition: by the time a stratum runs, every negated predicate is final.

* **Semi-naïve fixpoint** (:func:`run_stratum`): the PR 5 delta rule

      d(R₁ ⋈ … ⋈ Rₖ) = Σᵢ R₁' ⋈ … ⋈ dRᵢ ⋈ … ⋈ Rₖ

  *is* semi-naïve evaluation's inner step.  Each round's newly derived
  tuples become an insert-only :class:`~repro.incremental.delta.SignedDelta`
  applied to the predicate's log-structured
  :class:`~repro.incremental.delta.VersionedRelation`; every rule whose body
  references a changed predicate re-fires only through
  :func:`~repro.incremental.ivm.execute_delta_term` — delta-first variable
  orders, delta-scoped trie-root bounds, probe intersections — so a round
  costs what the round *derived*, not the accumulated database.  Because
  within-stratum deltas are insert-only over set relations, the delta-rule
  terms telescope to exactly the new body-join rows, each derived once.

:func:`evaluate_program_naive` is the independent oracle: full re-join of
every rule body per round until nothing changes.  The engine's bit-identity
contract (``tests/test_datalog_fixpoint.py``) pins semi-naïve == naive for
every driver and execution backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.datalog.atoms import Atom
from repro.exceptions import DatalogError
from repro.incremental.delta import SignedDelta, VersionedRelation
from repro.incremental.ivm import execute_delta_term
from repro.relational.columns import Dictionary
from repro.relational.database import Database
from repro.relational.relation import Relation

__all__ = [
    "DatalogProgram",
    "DatalogRule",
    "FixpointStats",
    "PredicateStore",
    "Stratum",
    "TermJob",
    "evaluate_program_naive",
    "run_stratum",
]


@dataclass(frozen=True)
class DatalogRule:
    """One rule ``head :- body, !negated`` (single-atom head).

    Attributes:
        head: the derived atom; its predicate becomes an IDB predicate.
        body: the positive body atoms (at least one; exact duplicates
            collapse — they cannot change the join).
        negated: negated body atoms; stratified semantics (the negated
            predicate must be final before the rule's stratum runs).

    Safety: every head variable and every negated-atom variable must occur
    in some positive body atom, so the rule's bindings always come from the
    positive join and negation is a per-row filter.
    """

    head: Atom
    body: tuple[Atom, ...]
    negated: tuple[Atom, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(dict.fromkeys(self.body)))
        object.__setattr__(self, "negated", tuple(dict.fromkeys(self.negated)))
        if not self.body:
            raise DatalogError(
                f"rule for {self.head} needs at least one positive body atom"
            )
        positive = frozenset(
            v for atom in self.body for v in atom.variables
        )
        unsafe = [v for v in self.head.variables if v not in positive]
        if unsafe:
            raise DatalogError(
                f"unsafe rule {self}: head variable(s) {unsafe} do not occur "
                f"in any positive body atom"
            )
        for atom in self.negated:
            unsafe = [v for v in atom.variables if v not in positive]
            if unsafe:
                raise DatalogError(
                    f"unsafe rule {self}: negated atom {atom} binds {unsafe} "
                    f"outside the positive body"
                )

    @property
    def variable_order(self) -> tuple[str, ...]:
        """The canonical (sorted) order over the positive body variables."""
        return tuple(sorted({v for atom in self.body for v in atom.variables}))

    @property
    def body_predicates(self) -> tuple[str, ...]:
        """Distinct predicate names the body references (positive + negated)."""
        names = [a.name for a in self.body] + [a.name for a in self.negated]
        return tuple(dict.fromkeys(names))

    def __str__(self) -> str:
        parts = [str(atom) for atom in self.body]
        parts += [f"!{atom}" for atom in self.negated]
        return f"{self.head} :- {', '.join(parts)}"


@dataclass(frozen=True)
class Stratum:
    """One evaluation unit: an SCC of the predicate dependency graph.

    Attributes:
        index: position in the topological stratum order.
        predicates: the stratum's IDB predicates, sorted.
        rules: the rules deriving them, in program order.
        recursive: whether any rule's body references a stratum predicate
            (mutual recursion makes ``len(predicates) > 1``).
    """

    index: int
    predicates: tuple[str, ...]
    rules: tuple[DatalogRule, ...]
    recursive: bool

    @property
    def depends_on(self) -> tuple[str, ...]:
        """Predicates the stratum reads that it does not derive (sorted)."""
        inside = frozenset(self.predicates)
        names = {
            name
            for rule in self.rules
            for name in rule.body_predicates
            if name not in inside
        }
        return tuple(sorted(names))


@dataclass(frozen=True)
class DatalogProgram:
    """A validated rule set with consistent arities and named IDB schemas."""

    rules: tuple[DatalogRule, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(dict.fromkeys(self.rules)))
        if not self.rules:
            raise DatalogError("a datalog program needs at least one rule")
        arities: dict[str, int] = {}
        for rule in self.rules:
            for atom in (rule.head,) + rule.body + rule.negated:
                known = arities.get(atom.name)
                if known is None:
                    arities[atom.name] = atom.arity
                elif known != atom.arity:
                    raise DatalogError(
                        f"predicate {atom.name} used with arity {atom.arity} "
                        f"and {known} — arities must be consistent"
                    )

    @property
    def idb_predicates(self) -> tuple[str, ...]:
        """The derived (head) predicates, sorted."""
        return tuple(sorted({rule.head.name for rule in self.rules}))

    @property
    def edb_predicates(self) -> tuple[str, ...]:
        """The base predicates — referenced but never derived, sorted."""
        idb = frozenset(self.idb_predicates)
        names = {
            name
            for rule in self.rules
            for name in rule.body_predicates
            if name not in idb
        }
        return tuple(sorted(names))

    def schema(self, predicate: str) -> tuple[str, ...]:
        """The canonical attribute names of one IDB predicate.

        The first head occurrence (program order) names the columns; every
        other occurrence realigns by positional code translation, exactly
        like atom binding against a stored relation.
        """
        for rule in self.rules:
            if rule.head.name == predicate:
                return rule.head.variables
        raise DatalogError(f"{predicate} is not a derived predicate")

    def stratify(self) -> tuple[Stratum, ...]:
        """SCC-condense the dependency graph into topologically ordered strata.

        Raises :class:`DatalogError` when a negated dependency closes a
        cycle (the program is not stratifiable).
        """
        idb = frozenset(self.idb_predicates)
        successors: dict[str, list[str]] = {name: [] for name in sorted(idb)}
        for rule in self.rules:
            for name in rule.body_predicates:
                if name in idb and rule.head.name not in successors[name]:
                    successors[name].append(rule.head.name)
        components = _tarjan_components(successors)
        component_of = {
            name: index
            for index, component in enumerate(components)
            for name in component
        }
        for rule in self.rules:
            for atom in rule.negated:
                if atom.name not in idb:
                    continue
                if component_of[atom.name] == component_of[rule.head.name]:
                    cycle = ", ".join(
                        components[component_of[rule.head.name]]
                    )
                    raise DatalogError(
                        f"program is not stratifiable: {rule.head.name} "
                        f"depends on !{atom.name} inside the recursive "
                        f"component {{{cycle}}} (negative cycle)"
                    )
        strata = []
        for index, component in enumerate(components):
            inside = frozenset(component)
            rules = tuple(
                rule for rule in self.rules if rule.head.name in inside
            )
            recursive = any(
                name in inside
                for rule in rules
                for name in rule.body_predicates
            )
            strata.append(
                Stratum(
                    index=index,
                    predicates=component,
                    rules=rules,
                    recursive=recursive,
                )
            )
        return tuple(strata)

    def __str__(self) -> str:
        # Valid program text: ``parse_program(str(program))`` round-trips.
        return "\n".join(f"{rule}." for rule in self.rules)


def _tarjan_components(
    successors: Mapping[str, Sequence[str]]
) -> tuple[tuple[str, ...], ...]:
    """SCCs of a directed graph, in topological order of the condensation.

    Iterative Tarjan (no recursion-depth limit on deep derivation chains)
    over sorted roots and sorted adjacency, so the component order — and
    hence the stratum order — is a pure function of the program text.
    Tarjan emits each component after all components it reaches, i.e. in
    reverse topological order; reversing gives sources (dependencies)
    first, which is the evaluation order.
    """
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: dict[str, bool] = {}
    stack: list[str] = []
    emitted: list[tuple[str, ...]] = []
    counter = 0
    for root in sorted(successors):
        if root in index_of:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index_of[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            children = sorted(successors[node])
            advanced = False
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in index_of:
                    work.append((node, position + 1))
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack.get(child):
                    low[node] = min(low[node], index_of[child])
            if advanced:
                continue
            if low[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                emitted.append(tuple(sorted(component)))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return tuple(reversed(emitted))


@dataclass
class FixpointStats:
    """Counters describing the fixpoint work performed so far.

    ``rounds`` counts delta rounds (a round that derives nothing terminates
    its stratum); ``full_evaluations`` counts round-0 rule joins (the only
    database-sized joins — everything after is delta-sized);
    ``delta_terms`` counts executed delta-rule terms; ``derived_rows`` the
    fresh IDB tuples.  ``continuations`` vs ``recomputes`` records how each
    refresh ran (monotone continuation vs per-stratum re-evaluation).
    """

    strata: int = 0
    rounds: int = 0
    full_evaluations: int = 0
    delta_terms: int = 0
    derived_rows: int = 0
    pooled_rounds: int = 0
    batches: int = 0
    continuations: int = 0
    recomputes: int = 0
    replans: int = 0
    compactions: int = 0
    extras: dict = field(default_factory=dict)


class PredicateStore:
    """Versioned storage for every predicate: name-level + per-binding logs.

    Mirrors the incremental engine's layout: one
    :class:`~repro.incremental.delta.VersionedRelation` per predicate name
    and one per distinct ``(predicate, variables)`` binding — a binding
    whose variables equal the stored schema shares the name-level log
    outright.  :meth:`apply` advances the name log and every binding log by
    one relabeled delta, so the delta-first sort orders each binding has
    materialized carry across rounds by C-level splices.
    """

    def __init__(self) -> None:
        self._names: dict[str, VersionedRelation] = {}
        self._bindings: dict[tuple[str, tuple[str, ...]], VersionedRelation] = {}

    @staticmethod
    def binding_key(atom: Atom) -> tuple[str, tuple[str, ...]]:
        return (atom.name, atom.variables)

    def adopt(self, relation: Relation) -> None:
        """(Re)install ``relation`` as the current version of its name."""
        self._names[relation.name] = VersionedRelation(relation)
        stale = [
            key for key in sorted(self._bindings) if key[0] == relation.name
        ]
        for key in stale:
            del self._bindings[key]

    def register(self, atom: Atom) -> VersionedRelation:
        """Ensure a binding log exists for ``atom``; returns it."""
        key = self.binding_key(atom)
        found = self._bindings.get(key)
        if found is None:
            name_log = self._names[atom.name]
            if atom.variables == name_log.schema:
                found = name_log
            else:
                found = VersionedRelation(
                    name_log.current.relabeled(atom.name, atom.variables)
                )
            self._bindings[key] = found
        return found

    def versioned(self, name: str) -> VersionedRelation:
        return self._names[name]

    def relation(self, name: str) -> Relation:
        return self._names[name].current

    def binding(self, atom: Atom) -> VersionedRelation:
        return self._bindings[self.binding_key(atom)]

    def binding_by_key(
        self, key: tuple[str, tuple[str, ...]]
    ) -> VersionedRelation:
        return self._bindings[key]

    def binding_keys(self, name: str) -> list[tuple[str, tuple[str, ...]]]:
        return [key for key in sorted(self._bindings) if key[0] == name]

    def __contains__(self, name: str) -> bool:
        return name in self._names

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._names))

    def apply(self, name: str, delta: SignedDelta) -> dict[tuple, SignedDelta]:
        """Advance the name log and every binding log by one delta.

        Compaction is deferred (``compact=False``) so pooled delta terms
        can replay this round's runs against the bases workers hold
        resident; call :meth:`compact` at a safe boundary.  Returns the
        per-binding relabeled deltas (keyed by binding key) for the
        delta-rule terms.
        """
        name_log = self._names[name]
        name_log.apply(delta, compact=False)
        relabeled: dict[tuple, SignedDelta] = {}
        for key in self.binding_keys(name):
            log = self._bindings[key]
            if log is name_log:
                relabeled[key] = delta
                continue
            binding_delta = delta.relabeled(key[1])
            log.apply(binding_delta, compact=False)
            relabeled[key] = binding_delta
        return relabeled

    def compact(self, names: Iterable[str] | None = None) -> int:
        """Threshold-compact the logs of ``names`` (default: all); count them."""
        selected = self.names() if names is None else tuple(sorted(set(names)))
        compacted = 0
        seen: set[int] = set()
        for name in selected:
            logs = [self._names[name]] + [
                self._bindings[key] for key in self.binding_keys(name)
            ]
            for log in logs:
                if id(log) in seen:
                    continue
                seen.add(id(log))
                if log.should_compact:
                    log.compact()
                    compacted += 1
        return compacted


class _RuleState:
    """Per-rule evaluation state: orders, projections, negation filters."""

    __slots__ = (
        "rule", "order", "head_positions", "head_schema", "negation",
    )

    def __init__(self, rule: DatalogRule, program: DatalogProgram) -> None:
        self.rule = rule
        self.order = rule.variable_order
        self.head_positions = tuple(
            self.order.index(v) for v in rule.head.variables
        )
        self.head_schema = program.schema(rule.head.name)
        #: per negated atom: positions of its variables in ``order`` (the
        #: membership sets are resolved per stratum run — lower strata are
        #: final by then, so one key_set per atom serves every round).
        self.negation: tuple[tuple[Atom, tuple[int, ...]], ...] = tuple(
            (atom, tuple(self.order.index(v) for v in atom.variables))
            for atom in rule.negated
        )

    def negation_filter(
        self, store: PredicateStore
    ) -> Callable[[list], list] | None:
        """The per-row stratified-negation filter, or ``None`` if trivial."""
        if not self.negation:
            return None
        probes = []
        for atom, positions in self.negation:
            present = store.binding(atom).current.key_set(atom.variables)
            probes.append((positions, present))

        def apply(rows: list) -> list:
            out = rows
            for positions, present in probes:
                out = [
                    row
                    for row in out
                    if tuple(row[p] for p in positions) not in present
                ]
            return out

        return apply

    def head_rows(self, rows: list) -> list:
        """Project join rows onto the head and translate into the predicate schema.

        Rows arrive coded under the rule's variables; column ``i`` is
        translated from ``head.variables[i]``'s dictionary into
        ``head_schema[i]``'s (identity when the names coincide — the first
        head occurrence defines the schema, so its own rules pay nothing).
        """
        positions = self.head_positions
        projected = [tuple(row[p] for p in positions) for row in rows]
        translators = []
        identity = True
        for source, target in zip(self.rule.head.variables, self.head_schema):
            if source == target:
                translators.append(None)
            else:
                identity = False
                translators.append(
                    (Dictionary.of(source).values, Dictionary.of(target).encode)
                )
        if identity:
            return projected
        out = []
        for row in projected:
            coded = []
            for translator, code in zip(translators, row):
                if translator is None:
                    coded.append(code)
                else:
                    values, encode = translator
                    coded.append(encode(values[code]))
            out.append(tuple(coded))
        return out


@dataclass
class TermJob:
    """One delta-rule term, ready for serial or pooled execution.

    ``relations`` is the in-process input list (new versions left of the
    delta, old versions right — the :func:`iter_delta_terms` layout);
    ``keys``/``versions`` describe the same inputs for the worker pool's
    resident-base protocol (``versions[index]`` is ``None`` at the delta
    position; a ``versions`` of ``None`` marks a term that must run
    in-process, e.g. when the old side is a retained snapshot with no
    version lift available).
    """

    state: _RuleState
    index: int
    relations: list
    delta_rows: list
    keys: tuple
    versions: tuple | None


def execute_jobs_serial(jobs: Sequence[TermJob]) -> list[list]:
    """The in-process term executor: one :func:`execute_delta_term` per job."""
    return [
        execute_delta_term(job.relations, job.state.order, job.index)
        for job in jobs
    ]


def _fresh_deltas(
    candidates: dict[str, set],
    known: dict[str, set],
    schemas: dict[str, tuple[str, ...]],
    totals: dict[str, list],
    stats: FixpointStats,
) -> dict[str, SignedDelta]:
    """Turn a round's candidate head rows into next round's insert deltas."""
    deltas: dict[str, SignedDelta] = {}
    for name in sorted(candidates):
        fresh = sorted(candidates[name] - known[name])
        if not fresh:
            continue
        known[name].update(fresh)
        totals[name].extend(fresh)
        stats.derived_rows += len(fresh)
        deltas[name] = SignedDelta(schemas[name], fresh, [1] * len(fresh))
    return deltas


def run_stratum(
    stratum: Stratum,
    program: DatalogProgram,
    store: PredicateStore,
    stats: FixpointStats,
    evaluate_rule: Callable[[_RuleState], list] | None = None,
    executor: Callable[[Sequence[TermJob]], list] | None = None,
    seeds: Mapping[str, SignedDelta] | None = None,
    seed_old: Mapping[tuple, Relation] | None = None,
) -> dict[str, list]:
    """Evaluate one stratum to fixpoint; returns the net new rows per predicate.

    Two entry modes:

    * **initial** (``seeds is None``): round 0 evaluates every rule's full
      positive body join via ``evaluate_rule`` (the engine routes this
      through the shared planner); the derivations seed the delta rounds.
    * **continuation** (``seeds`` given): the incoming deltas — EDB inserts
      or fresh tuples announced by lower strata, already applied to the
      store — seed the rounds directly, with ``seed_old`` providing the
      pre-delta binding relations for the delta rule's old side.  Sound
      exactly when the stratum is monotone in the changed predicates
      (insert-only, no affected negation): the current content is a valid
      under-approximation and the fixpoint continues from it.

    Every subsequent round applies the previous round's fresh tuples as an
    insert-only :class:`SignedDelta` (old side snapshotted just before),
    fires only the delta-rule terms of rules whose bodies changed, and
    terminates the moment a round derives nothing new.
    """
    states = [_RuleState(rule, program) for rule in stratum.rules]
    if executor is None:
        executor = execute_jobs_serial
    schemas = {name: program.schema(name) for name in stratum.predicates}
    known = {
        name: set(store.relation(name).code_rows)
        for name in stratum.predicates
    }
    totals: dict[str, list] = {name: [] for name in stratum.predicates}
    stats.strata += 1

    if seeds is None:
        candidates: dict[str, set] = {}
        for state in states:
            if evaluate_rule is None:
                rows = _evaluate_rule_inline(state, store)
            else:
                rows = evaluate_rule(state)
            stats.full_evaluations += 1
            negation = state.negation_filter(store)
            if negation is not None:
                rows = negation(rows)
            bucket = candidates.setdefault(state.rule.head.name, set())
            bucket.update(state.head_rows(rows))
        pending = _fresh_deltas(candidates, known, schemas, totals, stats)
        external_old: Mapping[tuple, Relation] = {}
    else:
        pending = {
            name: delta
            for name, delta in sorted(seeds.items())
            if not delta.is_empty
        }
        external_old = dict(seed_old or {})

    while pending:
        stats.rounds += 1
        pending = _run_round(
            states, store, pending, external_old, known, schemas,
            totals, stats, executor,
        )
        external_old = {}
        stats.compactions += store.compact(stratum.predicates)
    return {name: totals[name] for name in sorted(totals) if totals[name]}


def _evaluate_rule_inline(state: _RuleState, store: PredicateStore) -> list:
    """Planner-free round-0 evaluation (library fallback): one Generic Join."""
    from repro.relational.wcoj import generic_join

    relations = [store.binding(atom).current for atom in state.rule.body]
    if any(relation.is_empty() for relation in relations):
        return []
    return generic_join(relations, state.order).code_rows


def _run_round(
    states: Sequence[_RuleState],
    store: PredicateStore,
    deltas: Mapping[str, SignedDelta],
    external_old: Mapping[tuple, Relation],
    known: dict[str, set],
    schemas: dict[str, tuple[str, ...]],
    totals: dict[str, list],
    stats: FixpointStats,
    executor: Callable[[Sequence[TermJob]], list],
) -> dict[str, SignedDelta]:
    """One delta round: apply the incoming deltas, fire the affected terms."""
    changed = sorted(deltas)
    old_relations: dict[tuple, Relation] = {}
    old_versions: dict[tuple, int | None] = {}
    binding_deltas: dict[tuple, SignedDelta] = {}
    for name in changed:
        keys = store.binding_keys(name)
        if any(key in external_old for key in keys):
            # Announced delta: already applied upstream; the old side comes
            # from the retained snapshots (no version lift — serial terms).
            for key in keys:
                old_relations[key] = external_old[key]
                old_versions[key] = None
                binding_deltas[key] = (
                    deltas[name]
                    if key[1] == deltas[name].attrs
                    else deltas[name].relabeled(key[1])
                )
            continue
        for key in keys:
            log = store.binding_by_key(key)
            old_relations[key] = log.current
            old_versions[key] = log.version
        binding_deltas.update(store.apply(name, deltas[name]))

    jobs: list[TermJob] = []
    job_states: list[tuple[_RuleState, Callable | None]] = []
    for state in states:
        body = state.rule.body
        if not any(atom.name in deltas for atom in body):
            continue
        keys = tuple(PredicateStore.binding_key(atom) for atom in body)
        new_bindings = [store.binding(atom).current for atom in body]
        old_bindings = [
            old_relations.get(key, relation)
            for key, relation in zip(keys, new_bindings)
        ]
        negation = state.negation_filter(store)
        for i, atom in enumerate(body):
            delta = binding_deltas.get(keys[i])
            if delta is None or delta.is_empty:
                continue
            delta_relation = delta.relation(1, f"d{atom.name}")
            if delta_relation.is_empty():
                continue
            relations = list(new_bindings[:i])
            relations.append(delta_relation)
            relations.extend(old_bindings[i + 1:])
            # The delta rule: new versions left of the delta, old versions
            # right.  ``versions`` mirrors ``relations`` for the pool's
            # resident-base protocol; a ``None`` in any non-delta slot
            # (a retained announcement snapshot with no version lift)
            # forces the whole term in-process.
            slots: list[int | None] = []
            pool_ok = True
            for j in range(len(body)):
                if j == i:
                    slots.append(None)
                    continue
                if j < i:
                    slots.append(store.binding(body[j]).version)
                    continue
                old_version = old_versions.get(
                    keys[j], store.binding(body[j]).version
                )
                if old_version is None:
                    pool_ok = False
                slots.append(old_version)
            versions = tuple(slots) if pool_ok else None
            jobs.append(
                TermJob(
                    state=state,
                    index=i,
                    relations=relations,
                    delta_rows=delta.rows,
                    keys=keys,
                    versions=versions,
                )
            )
            job_states.append((state, negation))

    stats.delta_terms += len(jobs)
    candidates: dict[str, set] = {}
    for (state, negation), rows in zip(job_states, executor(jobs)):
        if negation is not None:
            rows = negation(rows)
        bucket = candidates.setdefault(state.rule.head.name, set())
        bucket.update(state.head_rows(rows))
    return _fresh_deltas(candidates, known, schemas, totals, stats)


# -- the naive oracle ---------------------------------------------------------------


def evaluate_program_naive(
    program: DatalogProgram, database: Database
) -> dict[str, Relation]:
    """Naive stratified evaluation: re-join every rule body until fixpoint.

    The independent oracle the bit-identity tests (and the benchmark's
    baseline arm) compare against: no deltas, no planner, no versioned
    storage — per round, every rule's full positive body join runs through
    Generic Join, negation filters, the head projection unions, and the
    stratum repeats while anything changed.  Results are canonical sorted
    code rows per predicate, exactly the semi-naïve engine's shape.
    """
    idb = frozenset(program.idb_predicates)
    for name in program.edb_predicates:
        if name not in database:
            raise DatalogError(
                f"base predicate {name} is missing from the database"
            )
    for name in program.idb_predicates:
        if name in database:
            raise DatalogError(
                f"derived predicate {name} is already a database relation"
            )
    current: dict[str, list] = {
        name: [] for name in program.idb_predicates
    }
    for stratum in program.stratify():
        states = [_RuleState(rule, program) for rule in stratum.rules]
        changed = True
        while changed:
            changed = False
            for state in states:
                rows = _naive_rule_rows(state, program, database, current, idb)
                known = set(current[state.rule.head.name])
                fresh = sorted(set(state.head_rows(rows)) - known)
                if fresh:
                    changed = True
                    merged = sorted(known.union(fresh))
                    current[state.rule.head.name] = merged
    return {
        name: Relation.from_codes(
            name, program.schema(name), rows, presorted=True, distinct=True
        )
        for name, rows in sorted(current.items())
    }


def _naive_rule_rows(
    state: _RuleState,
    program: DatalogProgram,
    database: Database,
    current: dict[str, list],
    idb: frozenset,
) -> list:
    """One rule's full positive body join + negation filter (oracle path)."""
    from repro.relational.wcoj import generic_join

    def bound(atom: Atom) -> Relation:
        if atom.name in idb:
            relation = Relation.from_codes(
                atom.name, program.schema(atom.name), current[atom.name],
                presorted=True, distinct=True,
            )
        else:
            relation = database[atom.name]
        if relation.schema == atom.variables:
            return relation
        return relation.relabeled(atom.name, atom.variables)

    relations = [bound(atom) for atom in state.rule.body]
    if any(relation.is_empty() for relation in relations):
        return []
    rows = generic_join(relations, state.order).code_rows
    for atom, positions in state.negation:
        present = bound(atom).key_set(atom.variables)
        rows = [
            row
            for row in rows
            if tuple(row[p] for p in positions) not in present
        ]
    return rows
