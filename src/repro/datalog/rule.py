"""Disjunctive datalog rules (Eq. 4) and their models (Eq. 5).

A rule ``P : \\/_{B in B} T_B(A_B)  <-  /\\_{F in E} R_F(A_F)`` maps a database
``D`` to *models*: tuples of target tables ``T = (T_B)`` such that every
body-satisfying tuple ``t`` lands in some target, ``Π_B(t) ∈ T_B``.  The
*output size* ``|P(D)|`` is the minimum over models of ``max_B |T_B|``.

This module provides model checking, the trivial model, the greedy scan model
used in the entropic-bound proof (Lemma 4.1) — whose targets all have the
same size ``|T|`` with ``log |T| = h(B)`` for the scan entropy ``h`` — and a
brute-force minimal model size for small instances (used only in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.hypergraph import Hypergraph
from repro.datalog.atoms import Atom
from repro.exceptions import QueryError
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.wcoj import generic_join

__all__ = ["DisjunctiveRule", "TargetModel"]


@dataclass(frozen=True)
class TargetModel:
    """A candidate model: one relation per target variable-set."""

    tables: tuple[Relation, ...]

    def by_attributes(self) -> dict[frozenset, Relation]:
        return {t.attributes: t for t in self.tables}

    @property
    def max_size(self) -> int:
        """The model's size ``max_B |T_B|`` (Eq. 5)."""
        return max((len(t) for t in self.tables), default=0)

    def total_size(self) -> int:
        return sum(len(t) for t in self.tables)


@dataclass(frozen=True)
class DisjunctiveRule:
    """A single disjunctive datalog rule.

    Attributes:
        targets: the head variable-sets ``B`` (each a frozenset), in order.
        body: the body atoms.
        name: display name.
    """

    targets: tuple[frozenset, ...]
    body: tuple[Atom, ...]
    name: str = "P"

    def __post_init__(self) -> None:
        if not self.targets:
            raise QueryError("disjunctive rule needs at least one target")
        if not self.body:
            raise QueryError("disjunctive rule needs at least one body atom")
        body_vars = self.variable_set
        for target in self.targets:
            if not target <= body_vars:
                raise QueryError(
                    f"target {sorted(target)} uses variables outside the body"
                )

    @classmethod
    def single_target(
        cls, head: Iterable[str], body: Iterable[Atom], name: str = "P"
    ) -> "DisjunctiveRule":
        """The single-target rule of a conjunctive query."""
        return cls((frozenset(head),), tuple(body), name)

    @property
    def variable_set(self) -> frozenset:
        out: set[str] = set()
        for atom in self.body:
            out |= atom.variable_set
        return frozenset(out)

    def hypergraph(self) -> Hypergraph:
        return Hypergraph(
            tuple(sorted(self.variable_set)),
            tuple(atom.variable_set for atom in self.body),
        )

    # -- semantics -----------------------------------------------------------------

    def body_join(self, database: Database) -> Relation:
        """All tuples satisfying the body (the set ``T`` of Lemma 4.1)."""
        return generic_join(
            [atom.bind(database) for atom in self.body], name=f"body({self.name})"
        )

    def is_model(self, model: TargetModel, database: Database) -> bool:
        """Check ``T |= P``: every body tuple is covered by some target table."""
        tables = model.by_attributes()
        for target in self.targets:
            if target not in tables:
                return False
        body = self.body_join(database)
        target_attrs = [
            (tuple(sorted(target)), tables[target]) for target in self.targets
        ]
        for row in body:
            covered = False
            for attrs, table in target_attrs:
                projected = body.key_of(row, attrs)
                if projected in table.index_on(attrs):
                    covered = True
                    break
            if not covered:
                return False
        return True

    def trivial_model(self, database: Database) -> TargetModel:
        """The cross-product-of-active-domains model (always valid)."""
        domains: dict[str, set] = {v: set() for v in self.variable_set}
        for atom in self.body:
            relation = atom.bind(database)
            atom_domains = [domains[var] for var in atom.variables]
            for row in relation:
                for value, domain in zip(row, atom_domains):
                    domain.add(value)
        tables = []
        for target in self.targets:
            attrs = tuple(sorted(target))
            rows = [()]
            for var in attrs:
                rows = [r + (v,) for r in rows for v in sorted(domains[var], key=repr)]
            tables.append(Relation(f"T_{''.join(attrs)}", attrs, rows))
        return TargetModel(tuple(tables))

    def scan_model(self, database: Database) -> TargetModel:
        """The Lemma 4.1 greedy scan model.

        Scans body tuples; a tuple is *kept* iff none of its target projections
        is already present, in which case all its projections are added.  The
        resulting tables all have size ``|T|`` (the number of kept tuples) and
        the uniform distribution over kept tuples has ``h(B) = log |T|`` for
        every target ``B`` — the construction behind the entropic upper bound.
        """
        body = self.body_join(database)
        target_attrs = [tuple(sorted(t)) for t in self.targets]
        seen: list[set] = [set() for _ in self.targets]
        kept: list[tuple] = []
        for row in sorted(body.tuples, key=repr):
            projections = [body.key_of(row, attrs) for attrs in target_attrs]
            if any(p in s for p, s in zip(projections, seen)):
                continue
            kept.append(row)
            for p, s in zip(projections, seen):
                s.add(p)
        tables = tuple(
            Relation(f"T_{''.join(attrs)}", attrs, s)
            for attrs, s in zip(target_attrs, seen)
        )
        return TargetModel(tables)

    def minimal_model_size(self, database: Database, limit: int = 1 << 16) -> int:
        """Exact ``|P(D)|`` by brute force (tests/tiny instances only).

        Exhaustively assigns every body tuple to one of its target
        projections and takes the assignment minimizing the largest target
        table — ``|targets|^|body join|`` assignments, so only feasible for
        tiny instances.

        Raises:
            QueryError: if the search space exceeds ``limit``.
        """
        body = self.body_join(database)
        rows = sorted(body.tuples, key=repr)
        target_attrs = [tuple(sorted(t)) for t in self.targets]
        if not rows:
            return 0
        # Each body tuple can be covered by any of its |targets| projections:
        # minimizing max table size is a covering problem.  Brute force over
        # assignments of tuples to targets, with memoized projections.
        projections = [
            [body.key_of(row, attrs) for attrs in target_attrs] for row in rows
        ]
        n_targets = len(self.targets)
        if n_targets ** len(rows) > limit:
            raise QueryError(
                f"minimal_model_size: {n_targets}^{len(rows)} assignments exceed limit"
            )
        best = len(rows)
        from itertools import product as iproduct

        for assignment in iproduct(range(n_targets), repeat=len(rows)):
            sizes = [set() for _ in range(n_targets)]
            for row_idx, t_idx in enumerate(assignment):
                sizes[t_idx].add(projections[row_idx][t_idx])
            best = min(best, max(len(s) for s in sizes))
        return best

    def __str__(self) -> str:
        head = " ∨ ".join(
            f"T{''.join(sorted(t))}({','.join(sorted(t))})" for t in self.targets
        )
        body = ", ".join(str(a) for a in self.body)
        return f"{self.name}: {head} :- {body}"
