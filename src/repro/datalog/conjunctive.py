"""Conjunctive queries (Eq. 1): full, Boolean, and proper.

``Q(A_H) <- /\\_F R_F(A_F)`` with head variables ``H``:

* *full*    — ``H`` = all body variables (a natural join);
* *Boolean* — ``H = ∅`` (existence check);
* *proper*  — anything in between (§8; supported for evaluation via its full
  core plus a final projection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.hypergraph import Hypergraph
from repro.datalog.atoms import Atom
from repro.exceptions import QueryError
from repro.relational.database import Database
from repro.relational.operators import project
from repro.relational.relation import Relation
from repro.relational.wcoj import generic_join

__all__ = ["ConjunctiveQuery"]


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query with explicit head variables.

    Attributes:
        head: ordered head (free) variables; empty tuple means Boolean.
        body: the body atoms.
        name: display name for the output relation.
    """

    head: tuple[str, ...]
    body: tuple[Atom, ...]
    name: str = "Q"

    def __post_init__(self) -> None:
        if not self.body:
            raise QueryError("conjunctive query needs at least one body atom")
        body_vars = self.variable_set
        missing = frozenset(self.head) - body_vars
        if missing:
            raise QueryError(
                f"head variables {sorted(missing)} do not occur in the body"
            )
        if len(set(self.head)) != len(self.head):
            raise QueryError(f"duplicate head variables in {self.head}")

    @classmethod
    def full(cls, body: Iterable[Atom], name: str = "Q") -> "ConjunctiveQuery":
        """The full CQ over the given atoms (head = all variables, sorted)."""
        atoms = tuple(body)
        all_vars: set[str] = set()
        for atom in atoms:
            all_vars |= atom.variable_set
        return cls(tuple(sorted(all_vars)), atoms, name)

    @classmethod
    def boolean(cls, body: Iterable[Atom], name: str = "Q") -> "ConjunctiveQuery":
        """The Boolean CQ over the given atoms."""
        return cls((), tuple(body), name)

    # -- structure ----------------------------------------------------------------

    @property
    def variable_set(self) -> frozenset:
        out: set[str] = set()
        for atom in self.body:
            out |= atom.variable_set
        return frozenset(out)

    @property
    def is_full(self) -> bool:
        return frozenset(self.head) == self.variable_set

    @property
    def is_boolean(self) -> bool:
        return not self.head

    def hypergraph(self) -> Hypergraph:
        """The query's multi-hypergraph (vertex order: sorted variables)."""
        return Hypergraph(
            tuple(sorted(self.variable_set)),
            tuple(atom.variable_set for atom in self.body),
        )

    # -- naive evaluation (the test oracle) ------------------------------------------

    def evaluate_naive(self, database: Database) -> Relation:
        """Reference evaluation: Generic Join of the body, then project.

        This is the semantics oracle the optimized plans are tested against;
        for Boolean queries the result has the empty schema and is non-empty
        iff the query is true.
        """
        body_join = generic_join(
            [atom.bind(database) for atom in self.body], name=self.name
        )
        if self.is_full:
            return body_join
        if self.is_boolean:
            rows = [()] if len(body_join) else []
            return Relation(self.name, (), rows)
        return project(body_join, self.head, name=self.name)

    def __str__(self) -> str:
        head = ",".join(self.head)
        body = ", ".join(str(a) for a in self.body)
        return f"{self.name}({head}) :- {body}"
