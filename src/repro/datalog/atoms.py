"""Atoms: predicate symbols applied to variable tuples.

An :class:`Atom` ties a relation name to an ordered tuple of query variables.
When evaluated against a :class:`~repro.relational.database.Database`, the
stored relation's columns are realigned to the atom's variable names, so the
same base relation can be used under several variable bindings (e.g. the two
occurrences of an edge relation in a path query).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import QueryError, SchemaError
from repro.relational.database import Database
from repro.relational.relation import Relation

__all__ = ["Atom"]


@dataclass(frozen=True)
class Atom:
    """A predicate ``name(variables...)``.

    Attributes:
        name: the relation name this atom refers to.
        variables: ordered, distinct query variables.
    """

    name: str
    variables: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.variables)) != len(self.variables):
            raise QueryError(
                f"atom {self.name} repeats a variable: {self.variables}"
            )

    @property
    def variable_set(self) -> frozenset:
        return frozenset(self.variables)

    @property
    def arity(self) -> int:
        return len(self.variables)

    def bind(self, database: Database) -> Relation:
        """The database relation realigned to this atom's variable names."""
        relation = database[self.name]
        if len(relation.schema) != self.arity:
            raise SchemaError(
                f"atom {self} has arity {self.arity} but relation "
                f"{relation.name} has arity {len(relation.schema)}"
            )
        if relation.schema == self.variables:
            return relation
        # Positional rename: per-column code translation between the stored
        # attributes' dictionaries and the variables' dictionaries — no
        # decode/re-encode of whole tuples.
        return relation.relabeled(self.name, self.variables)

    def __str__(self) -> str:
        return f"{self.name}({','.join(self.variables)})"
