"""A small text syntax for conjunctive queries and disjunctive rules.

Grammar (whitespace-insensitive)::

    cq     :=  NAME '(' vars? ')' ':-' atoms
    rule   :=  head_disjunct ('|' head_disjunct)* ':-' atoms
    atoms  :=  atom (',' atom)*
    atom   :=  NAME '(' vars ')'
    vars   :=  VAR (',' VAR)*

Examples::

    parse_query("Q(A1,A2,A3,A4) :- R12(A1,A2), R23(A2,A3), R34(A3,A4), R41(A4,A1)")
    parse_rule("T123(A1,A2,A3) | T234(A2,A3,A4) :- R12(A1,A2), R23(A2,A3), R34(A3,A4)")

Boolean queries are written with an empty head: ``Q() :- ...``.
"""

from __future__ import annotations

import re

from repro.datalog.atoms import Atom
from repro.datalog.conjunctive import ConjunctiveQuery
from repro.datalog.rule import DisjunctiveRule
from repro.exceptions import QueryError

__all__ = ["parse_atom", "parse_query", "parse_rule"]

_ATOM_RE = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(([^()]*)\)\s*")


def parse_atom(text: str) -> Atom:
    """Parse a single atom like ``R12(A1, A2)``."""
    match = _ATOM_RE.fullmatch(text)
    if not match:
        raise QueryError(f"cannot parse atom: {text!r}")
    name, inner = match.group(1), match.group(2)
    variables = tuple(v.strip() for v in inner.split(",") if v.strip())
    return Atom(name, variables)


def _split_atoms(text: str) -> list[str]:
    """Split a comma-separated atom list (commas inside parens don't count)."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise QueryError(f"unbalanced parentheses in {text!r}")
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise QueryError(f"unbalanced parentheses in {text!r}")
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _split_head_body(text: str) -> tuple[str, str]:
    if ":-" not in text:
        raise QueryError(f"missing ':-' in {text!r}")
    head, body = text.split(":-", 1)
    if not body.strip():
        raise QueryError(f"empty body in {text!r}")
    return head.strip(), body.strip()


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a conjunctive query; the head atom's name becomes the query name."""
    head_text, body_text = _split_head_body(text)
    head_atoms = _split_atoms(head_text)
    if len(head_atoms) != 1:
        raise QueryError(f"conjunctive query needs exactly one head atom: {text!r}")
    match = _ATOM_RE.fullmatch(head_atoms[0])
    if not match:
        raise QueryError(f"cannot parse head: {head_atoms[0]!r}")
    name = match.group(1)
    head_vars = tuple(
        v.strip() for v in match.group(2).split(",") if v.strip()
    )
    body = tuple(parse_atom(part) for part in _split_atoms(body_text))
    return ConjunctiveQuery(head_vars, body, name)


def parse_rule(text: str, name: str = "P") -> DisjunctiveRule:
    """Parse a disjunctive rule; ``|`` (or ``∨``) separates head disjuncts."""
    head_text, body_text = _split_head_body(text)
    disjunct_texts = re.split(r"\||∨", head_text)
    targets = []
    for disjunct in disjunct_texts:
        atom = parse_atom(disjunct)
        targets.append(atom.variable_set)
    body = tuple(parse_atom(part) for part in _split_atoms(body_text))
    return DisjunctiveRule(tuple(targets), body, name)
