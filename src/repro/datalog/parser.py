"""A small text syntax for conjunctive queries, disjunctive rules, and programs.

Grammar (whitespace-insensitive)::

    cq      :=  NAME '(' vars? ')' ':-' atoms
    rule    :=  head_disjunct ('|' head_disjunct)* ':-' atoms
    atoms   :=  atom (',' atom)*
    atom    :=  NAME '(' vars ')'
    vars    :=  VAR (',' VAR)*
    program :=  clause ('.' clause)* '.'?
    clause  :=  atom ':-' literals          -- one datalog rule
    literals:=  literal (',' literal)*
    literal :=  atom | '!' atom | 'not' atom

Examples::

    parse_query("Q(A1,A2,A3,A4) :- R12(A1,A2), R23(A2,A3), R34(A3,A4), R41(A4,A1)")
    parse_rule("T123(A1,A2,A3) | T234(A2,A3,A4) :- R12(A1,A2), R23(A2,A3), R34(A3,A4)")
    parse_program('''
        # transitive closure (docs/datalog.md)
        path(x,y) :- edge(x,y).
        path(x,z) :- path(x,y), edge(y,z).
    ''')

Boolean queries are written with an empty head: ``Q() :- ...``.  Program
text may carry ``#`` or ``%`` line comments; rules end with ``.`` (the last
one may omit it).  Negated body atoms are written ``!reach(x,y)`` or
``not reach(x,y)`` and follow stratified semantics
(:meth:`~repro.datalog.fixpoint.DatalogProgram.stratify`).
"""

from __future__ import annotations

import re

from repro.datalog.atoms import Atom
from repro.datalog.conjunctive import ConjunctiveQuery
from repro.datalog.rule import DisjunctiveRule
from repro.exceptions import DatalogError, QueryError

__all__ = [
    "parse_atom",
    "parse_datalog_rule",
    "parse_program",
    "parse_query",
    "parse_rule",
]

_ATOM_RE = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(([^()]*)\)\s*")


def parse_atom(text: str) -> Atom:
    """Parse a single atom like ``R12(A1, A2)``."""
    match = _ATOM_RE.fullmatch(text)
    if not match:
        raise QueryError(f"cannot parse atom: {text!r}")
    name, inner = match.group(1), match.group(2)
    variables = tuple(v.strip() for v in inner.split(",") if v.strip())
    return Atom(name, variables)


def _split_atoms(text: str) -> list[str]:
    """Split a comma-separated atom list (commas inside parens don't count)."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise QueryError(f"unbalanced parentheses in {text!r}")
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise QueryError(f"unbalanced parentheses in {text!r}")
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _split_head_body(text: str) -> tuple[str, str]:
    if ":-" not in text:
        raise QueryError(f"missing ':-' in {text!r}")
    head, body = text.split(":-", 1)
    if not body.strip():
        raise QueryError(f"empty body in {text!r}")
    return head.strip(), body.strip()


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a conjunctive query; the head atom's name becomes the query name."""
    head_text, body_text = _split_head_body(text)
    head_atoms = _split_atoms(head_text)
    if len(head_atoms) != 1:
        raise QueryError(f"conjunctive query needs exactly one head atom: {text!r}")
    match = _ATOM_RE.fullmatch(head_atoms[0])
    if not match:
        raise QueryError(f"cannot parse head: {head_atoms[0]!r}")
    name = match.group(1)
    head_vars = tuple(
        v.strip() for v in match.group(2).split(",") if v.strip()
    )
    body = tuple(parse_atom(part) for part in _split_atoms(body_text))
    return ConjunctiveQuery(head_vars, body, name)


def parse_rule(text: str, name: str = "P") -> DisjunctiveRule:
    """Parse a disjunctive rule; ``|`` (or ``∨``) separates head disjuncts."""
    head_text, body_text = _split_head_body(text)
    disjunct_texts = re.split(r"\||∨", head_text)
    targets = []
    for disjunct in disjunct_texts:
        atom = parse_atom(disjunct)
        targets.append(atom.variable_set)
    body = tuple(parse_atom(part) for part in _split_atoms(body_text))
    return DisjunctiveRule(tuple(targets), body, name)


# -- recursive programs (docs/datalog.md) -------------------------------------------


def parse_datalog_rule(text: str):
    """Parse one datalog rule ``head :- literals`` (``!``/``not`` negate).

    Returns a :class:`~repro.datalog.fixpoint.DatalogRule`; safety (every
    head and negated variable bound by a positive atom) is validated by its
    constructor, so a bad rule fails here with a clear
    :class:`~repro.exceptions.DatalogError`.
    """
    from repro.datalog.fixpoint import DatalogRule

    head_text, body_text = _split_head_body(text)
    head_atoms = _split_atoms(head_text)
    if len(head_atoms) != 1:
        raise DatalogError(
            f"a datalog rule needs exactly one head atom: {text!r}"
        )
    head = parse_atom(head_atoms[0])
    positive: list[Atom] = []
    negated: list[Atom] = []
    for part in _split_atoms(body_text):
        literal = part.strip()
        if literal.startswith("!"):
            negated.append(parse_atom(literal[1:]))
        elif re.match(r"not\s*\(", literal) is None and literal.startswith(
            "not "
        ):
            negated.append(parse_atom(literal[4:]))
        else:
            positive.append(parse_atom(literal))
    return DatalogRule(head, tuple(positive), tuple(negated))


def _strip_comments(text: str) -> str:
    """Drop ``#`` and ``%`` line comments (no string literals to protect)."""
    lines = []
    for line in text.splitlines():
        cut = len(line)
        for marker in ("#", "%"):
            found = line.find(marker)
            if found != -1 and found < cut:
                cut = found
        lines.append(line[:cut])
    return "\n".join(lines)


def parse_program(text: str):
    """Parse a whole datalog program into a validated, stratifiable form.

    ``text`` is a sequence of rules separated by ``.`` (the final period is
    optional), with ``#``/``%`` line comments.  Returns a
    :class:`~repro.datalog.fixpoint.DatalogProgram`; exact duplicate rules
    collapse (idempotence), and arity consistency is validated across every
    predicate occurrence.
    """
    from repro.datalog.fixpoint import DatalogProgram

    rules = []
    for statement in _strip_comments(text).split("."):
        statement = statement.strip()
        if not statement:
            continue
        rules.append(parse_datalog_rule(statement))
    if not rules:
        raise DatalogError("the program text contains no rules")
    return DatalogProgram(tuple(rules))
