"""Signed, dictionary-encoded change batches and log-structured storage.

A :class:`SignedDelta` is one validated batch of changes against a relation:
ascending distinct code tuples with an aligned ``+1``/``-1`` multiplicity
per row.  Validation happens at construction (:meth:`SignedDelta.from_changes`):

* a delete of a row that is neither present nor inserted in the same batch
  is rejected (:class:`~repro.exceptions.DeltaError`);
* an insert of an already-present row is a no-op (set semantics);
* an insert and delete of the same row cancel to no change (present or
  absent — a batch is an unordered request set), so a batch that only
  shuffles a row in and out is *empty*;
* inserts may carry values never seen before — they are interned into the
  shared per-attribute dictionaries exactly like ingestion, so dictionary
  growth mid-stream is the ordinary code-append path.

A :class:`VersionedRelation` gives the storage layer a log-structured view:
an immutable base :class:`~repro.relational.relation.Relation` (whose column
set is what worker pools hold resident) plus the pending delta runs applied
since.  The *current* relation is materialized by the sorted-run merge
(:func:`~repro.relational.columns.apply_signed_rows`) — `restrict_range`,
trie caches, and every join algorithm work on it unchanged, because it is an
ordinary sorted column set.  Once the pending runs outgrow a size threshold
the log compacts: the merged relation becomes the new base and the runs
clear (pool baselines then recycle, exactly like a database rebind).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Iterable, Sequence

from repro.exceptions import DeltaError, IncrementalError
from repro.relational.columns import (
    ColumnSet,
    Dictionary,
    apply_plan_to_columns,
    apply_signed_rows,
    signed_merge_plan,
)
from repro.relational.relation import Relation

__all__ = ["SignedDelta", "VersionedRelation", "advance_relation"]


def advance_relation(
    previous: Relation,
    delta_rows: Sequence,
    signs: Sequence[int],
    name: str | None = None,
) -> Relation:
    """The relation one signed batch after ``previous``, orders carried.

    Builds the new version by the delta-sized sorted merge, and re-merges
    the same (permuted, re-sorted — the delta is tiny) batch into every
    *full-arity* sorted order the previous version had materialized, so the
    delta-first join orders of :mod:`repro.incremental.ivm` never pay a
    fresh O(N log N) sort per batch: each order is sorted once per relation
    lifetime and maintained by merges after that.  Materialized ``array``
    columns advance the same way — C-level splices along the merge plan —
    instead of a fresh O(N · arity) transpose per version.  Partial
    (projection) orders are not carried — their rows are multisets, outside
    the signed merge's distinct-row contract — and rebuild on demand.
    """
    schema = previous.schema
    merged = _advance_column_set(previous.column_set(schema), delta_rows, signs)
    advanced = Relation.from_codes(
        name or previous.name, schema, merged.rows,
        presorted=True, distinct=True,
    )
    if merged.materialized_columns is not None:
        advanced.column_set(schema).adopt_columns(merged.materialized_columns)
    for order, column_set in previous.cached_full_orders():
        positions = tuple(schema.index(a) for a in order)
        entries = sorted(
            (tuple(row[p] for p in positions), sign)
            for row, sign in zip(delta_rows, signs)
        )
        merged = _advance_column_set(
            column_set,
            [row for row, _ in entries],
            [sign for _, sign in entries],
        )
        advanced.install_sorted_order(order, merged.rows)
        if merged.materialized_columns is not None:
            advanced.column_set(order).adopt_columns(
                merged.materialized_columns
            )
    advanced.attach_store(previous.store)
    return advanced


def _advance_column_set(
    column_set: ColumnSet, delta_rows: Sequence, signs: Sequence[int]
) -> ColumnSet:
    """One column set advanced by a signed batch (rows + columns spliced)."""
    rows = column_set.rows
    if not isinstance(rows, list):
        rows = list(rows)
    plan = signed_merge_plan(rows, delta_rows, signs)
    advanced = ColumnSet(
        column_set.attrs,
        apply_signed_rows(rows, delta_rows, signs, plan=plan),
        presorted=True,
    )
    columns = column_set.materialized_columns
    if columns is not None:
        advanced.adopt_columns(apply_plan_to_columns(columns, plan))
    return advanced


def _row_present(sorted_rows: list, row: tuple) -> bool:
    """Membership in a sorted duplicate-free row list (binary search)."""
    pos = bisect_left(sorted_rows, row)
    return pos < len(sorted_rows) and sorted_rows[pos] == row


class SignedDelta:
    """One validated change batch: sorted code rows + ±1 multiplicities.

    Attributes:
        attrs: the attribute (or variable) names the code rows are encoded
            under — each column's codes live in ``Dictionary.of(attr)``.
        rows: ascending, duplicate-free code tuples.
        signs: aligned ``array('q')`` of ``+1`` (insert) / ``-1`` (delete).
    """

    __slots__ = ("attrs", "rows", "signs")

    def __init__(
        self,
        attrs: Sequence[str],
        rows: list,
        signs: Sequence[int],
    ) -> None:
        self.attrs: tuple[str, ...] = tuple(attrs)
        self.rows: list = rows
        self.signs: array = signs if isinstance(signs, array) else array("q", signs)
        if len(self.rows) != len(self.signs):
            raise IncrementalError(
                f"{len(self.rows)} delta rows vs {len(self.signs)} signs"
            )

    @classmethod
    def from_changes(
        cls,
        relation: Relation,
        inserts: Iterable[tuple] = (),
        deletes: Iterable[tuple] = (),
    ) -> "SignedDelta":
        """Encode and validate one batch of value-level changes.

        ``inserts``/``deletes`` are value tuples over ``relation.schema``.
        Inserts intern unseen values (the dictionary-growth path); deletes
        of rows that are neither present nor inserted in this same batch
        raise :class:`DeltaError`.  A row requested both inserted and
        deleted in one batch nets to **no change** whether it is currently
        present or absent (a batch is an unordered set of requests, not a
        sequence); inserting a present row alone is a no-op (set
        semantics); duplicate requests collapse.
        """
        schema = relation.schema
        arity = len(schema)
        encoders = tuple(d.encode for d in relation.dictionaries)
        existing = tuple(d.encode_existing for d in relation.dictionaries)
        base_rows = relation.code_rows

        inserted: set[tuple] = set()
        for row in inserts:
            row = tuple(row)
            if len(row) != arity:
                raise DeltaError(
                    f"insert {row} has arity {len(row)}, schema {schema} "
                    f"expects {arity}"
                )
            inserted.add(tuple(enc(v) for enc, v in zip(encoders, row)))

        removed: set[tuple] = set()
        for row in deletes:
            row = tuple(row)
            if len(row) != arity:
                raise DeltaError(
                    f"delete {row} has arity {len(row)}, schema {schema} "
                    f"expects {arity}"
                )
            coded = []
            for enc, value in zip(existing, row):
                code = enc(value)
                if code is None:
                    raise DeltaError(
                        f"delete of row {row} never inserted into "
                        f"{relation.name} (value {value!r} unseen)"
                    )
                coded.append(code)
            removed.add(tuple(coded))

        # Insert+delete of the same row cancels outright — the batch is an
        # unordered request set, so neither reading ("delete wins" vs
        # "re-insert wins") is privileged and net-zero is the only
        # presence-independent answer.
        cancelled = inserted & removed
        inserted -= cancelled
        removed -= cancelled

        entries: list[tuple[tuple, int]] = []
        for row in removed:
            if _row_present(base_rows, row):
                entries.append((row, -1))
            else:
                raise DeltaError(
                    f"delete of row never inserted into {relation.name}: "
                    f"{relation.decode_row(row)}"
                )
        for row in inserted:
            if not _row_present(base_rows, row):
                entries.append((row, +1))
        entries.sort()
        return cls(
            schema,
            [row for row, _ in entries],
            array("q", (sign for _, sign in entries)),
        )

    # -- protocol ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def is_empty(self) -> bool:
        return not self.rows

    def __repr__(self) -> str:
        pos = sum(1 for s in self.signs if s > 0)
        return (
            f"SignedDelta({self.attrs}: +{pos}/-{len(self.rows) - pos} rows)"
        )

    def column_set(self) -> ColumnSet:
        """The delta's rows as a sorted :class:`ColumnSet` (sign-blind)."""
        return ColumnSet(self.attrs, self.rows, presorted=True)

    def signed_rows(self, sign: int) -> list:
        """The rows carrying ``sign`` (ascending)."""
        return [row for row, s in zip(self.rows, self.signs) if s == sign]

    def relation(self, sign: int, name: str) -> Relation:
        """The rows of one sign as a (tiny) set relation — a delta-join input."""
        return Relation.from_codes(
            name, self.attrs, self.signed_rows(sign),
            presorted=True, distinct=True,
        )

    def relabeled(self, variables: Sequence[str]) -> "SignedDelta":
        """The same changes under positionally renamed attributes.

        Mirrors :meth:`Relation.relabeled` for atom binding: column ``i``'s
        codes are translated into ``variables[i]``'s dictionary (the delta is
        tiny, so the per-value translation cost is negligible).
        """
        variables = tuple(variables)
        if len(variables) != len(self.attrs):
            raise IncrementalError(
                f"relabel needs {len(self.attrs)} attributes, got {variables}"
            )
        if variables == self.attrs:
            return self
        old_values = tuple(Dictionary.of(a).values for a in self.attrs)
        encoders = tuple(Dictionary.of(v).encode for v in variables)
        translated = [
            tuple(
                enc(values[code])
                for enc, values, code in zip(encoders, old_values, row)
            )
            for row in self.rows
        ]
        entries = sorted(zip(translated, self.signs))
        return SignedDelta(
            variables,
            [row for row, _ in entries],
            array("q", (sign for _, sign in entries)),
        )

    def decoded(self) -> list[tuple[tuple, int]]:
        """``(value tuple, sign)`` pairs (boundary/debugging adapter)."""
        values = tuple(Dictionary.of(a).values for a in self.attrs)
        return [
            (tuple(col[c] for col, c in zip(values, row)), sign)
            for row, sign in zip(self.rows, self.signs)
        ]


class VersionedRelation:
    """A relation as a log: immutable base + pending signed delta runs.

    ``current`` is always materialized (maintenance needs it), incrementally:
    each :meth:`apply` merges the newest run into the previous current with
    one delta-sized sorted merge.  The *base* stays fixed between
    compactions — it is the version worker pools hold resident, so a pending
    run is exactly "what must ship" to bring a worker up to a given version
    (:mod:`repro.parallel.pool` caches the reconstructions by version).

    Attributes:
        name: the relation name.
        version: monotone version counter (0 = the relation as constructed).
        base_version: the version the base column set reflects.
    """

    #: Compact when pending delta rows exceed this fraction of the base size.
    COMPACT_RATIO = 0.25
    #: ... but never before this many pending rows (small logs are cheap).
    COMPACT_MIN = 64

    def __init__(
        self,
        relation: Relation,
        compact_ratio: float | None = None,
        compact_min: int | None = None,
    ) -> None:
        self.name = relation.name
        self.base: Relation = relation
        self.current: Relation = relation
        self.runs: list[SignedDelta] = []
        self.version = 0
        self.base_version = 0
        self.compact_ratio = (
            self.COMPACT_RATIO if compact_ratio is None else compact_ratio
        )
        self.compact_min = (
            self.COMPACT_MIN if compact_min is None else compact_min
        )
        # MVCC pinning (the serving layer's snapshot contract): pinned
        # versions stay answerable across compactions.  ``_pins`` counts
        # readers per version; ``_retained`` holds each pinned version's
        # materialized relation, captured at pin time, so ``compact()``
        # never has to reconstruct history and a pin after compaction is
        # a dict lookup, not a replay.
        self._pins: dict[int, int] = {}
        self._retained: dict[int, Relation] = {}

    @property
    def schema(self) -> tuple[str, ...]:
        return self.base.schema

    @property
    def pending_rows(self) -> int:
        """Total rows across the pending runs (the log length)."""
        return sum(len(run) for run in self.runs)

    def apply(self, delta: SignedDelta, compact: bool = True) -> Relation:
        """Append one run, materialize the new current, maybe compact.

        Returns the new current relation.  The merge is the delta-sized
        sorted-run merge of :func:`apply_signed_rows`; validation already
        happened in :meth:`SignedDelta.from_changes`, so a strict merge
        failure here is an internal inconsistency, not user error.

        ``compact=False`` defers the threshold check — the incremental
        engine compacts only after a batch's maintenance is done, so the
        pooled delta terms can still replay this batch's runs from the base
        the workers hold resident.
        """
        if delta.attrs != self.schema:
            raise IncrementalError(
                f"delta over {delta.attrs} applied to {self.name}"
                f"({', '.join(self.schema)})"
            )
        if delta.is_empty:
            return self.current
        self.current = advance_relation(
            self.current, delta.rows, delta.signs, name=self.name
        )
        self.runs.append(delta)
        self.version += 1
        if compact and self.should_compact:
            self.compact()
        return self.current

    @property
    def should_compact(self) -> bool:
        """Whether the pending log has outgrown its threshold."""
        return self.pending_rows >= max(
            self.compact_min, int(len(self.base) * self.compact_ratio)
        )

    def compact(self) -> None:
        """Promote the current relation to the new base; clear the log.

        Equivalent to rebuilding the relation from scratch at this version
        (same sorted distinct code rows — the compaction-equivalence tests
        pin this), but reached by the merges already paid.  Pool baselines
        keyed on the old base's content digest recycle on next bind.

        A base bound to a persisted column store writes the promoted
        relation as a fresh digest-named artifact in place — the old
        artifact stays (a live pool baseline may still map it), and the
        next pool bind ships the new base as a file reference instead of
        a buffer.

        Pinned versions (:meth:`pin`) survive compaction: their relations
        were retained at pin time, so dropping the old base here cannot
        invalidate a reader — the pinned object lives until :meth:`unpin`.
        """
        self.base = self.current
        self.runs = []
        self.base_version = self.version
        store = self.base.store
        if store is not None:
            store.ensure(self.base.column_set(self.base.schema))

    # -- MVCC pinning (serving snapshots) ----------------------------------------

    def pin(self, version: int | None = None) -> int:
        """Pin ``version`` (default: current) against compaction.

        While a version is pinned, :meth:`snapshot` keeps answering for it
        even after :meth:`compact` promotes a newer version to the base —
        the pinned relation object is retained until the matching
        :meth:`unpin` (the *compaction liveness* contract: a pinned base
        stays alive until its last reader drops).  Pinning the current or
        base version is zero-copy; pinning an interior logged version pays
        one delta-sized replay, once.

        Not thread-safe: call from the thread that owns the log (the
        serving layer funnels pin/unpin through its single writer thread).
        """
        if version is None:
            version = self.version
        retained = self._retained.get(version)
        if retained is None:
            retained = self.snapshot(version)
            self._retained[version] = retained
        self._pins[version] = self._pins.get(version, 0) + 1
        return version

    def unpin(self, version: int) -> None:
        """Drop one pin on ``version``; the last drop releases its retention."""
        count = self._pins.get(version)
        if count is None:
            raise IncrementalError(
                f"{self.name}: version {version} is not pinned"
            )
        if count > 1:
            self._pins[version] = count - 1
        else:
            del self._pins[version]
            del self._retained[version]

    def snapshot(self, version: int | None = None) -> Relation:
        """The immutable relation as of ``version`` — an MVCC read view.

        The current and base versions are served by reference (zero copy);
        a pinned version by its retained reference; any other version still
        inside the log ``[base_version, version]`` is reconstructed from
        ``(base, run-prefix)`` by delta-sized merges.  Versions compacted
        away without a pin raise :class:`IncrementalError`.  The returned
        relation is an ordinary immutable :class:`Relation` — every column,
        trie, and join contract holds on it unchanged, and it stays valid
        (bit-identical to a frozen copy at ``version``) no matter how far
        the log advances afterwards.
        """
        if version is None:
            version = self.version
        if version == self.version:
            return self.current
        retained = self._retained.get(version)
        if retained is not None:
            return retained
        if not self.base_version <= version <= self.version:
            raise IncrementalError(
                f"{self.name}: version {version} compacted away unpinned "
                f"(retained log [{self.base_version}, {self.version}])"
            )
        relation = self.base
        for run in self.runs[: version - self.base_version]:
            relation = advance_relation(
                relation, run.rows, run.signs, name=self.name
            )
        return relation

    @property
    def pinned_versions(self) -> tuple[int, ...]:
        """The distinct pinned versions, ascending (introspection/tests)."""
        return tuple(sorted(self._pins))

    def runs_since(self, version: int) -> list[SignedDelta]:
        """The pending runs that lift ``version`` to the current version.

        ``version`` must be between ``base_version`` and ``version``; runs
        older than the base were already compacted away and cannot be
        replayed.
        """
        if not self.base_version <= version <= self.version:
            raise IncrementalError(
                f"{self.name}: version {version} outside the retained log "
                f"[{self.base_version}, {self.version}]"
            )
        return self.runs[version - self.base_version :]

    def __repr__(self) -> str:
        return (
            f"VersionedRelation({self.name}: v{self.version}, "
            f"{len(self.current)} rows, {self.pending_rows} pending)"
        )
