"""Incremental view maintenance (IVM) over the columnar engine.

Every lower layer assumes a static database: one inserted tuple invalidates
content digests and forces a full recompute of every join and FAQ result.
This subsystem — architecture layer 8, see ``docs/architecture.md`` —
keeps materialized results *exact* under tuple inserts and deletes at
delta-sized cost (and is the inner loop of recursive datalog's
semi-naïve fixpoint, ``docs/datalog.md``):

* :mod:`repro.incremental.delta` — a change batch as a signed,
  dictionary-encoded delta (sorted code rows + ±multiplicity) and the
  log-structured :class:`VersionedRelation` (base column set + pending delta
  runs, merged by the sorted-run machinery, compacted past a threshold);
* :mod:`repro.incremental.ivm` — the delta-rule expansion
  d(R₁⋈…⋈Rₖ) = Σᵢ R₁'⋈…⋈dRᵢ⋈…⋈Rₖ, each term executed through the shared
  :func:`~repro.relational.execution.execute_join` driver with the delta's
  (tiny) key range as trie-root bounds, plus signed ⊕-folds maintaining FAQ
  annotations in ⊕-invertible semirings (non-invertible ones recompute);
* :mod:`repro.incremental.engine` — :class:`IncrementalQueryEngine`, the
  :class:`repro.planner.QueryEngine`-shaped facade with
  ``insert``/``delete``/``refresh``, planner-cached plans reused across
  versions, and optional fan-out of delta terms over the
  :mod:`repro.parallel` worker pool (only changed buffers ship).

Hard contract: after every batch, every maintained result is *bit-identical*
to a from-scratch recompute on the current data — the same canonical sorted
code rows, the same exact ``Fraction`` annotations.
"""

from repro.incremental.delta import SignedDelta, VersionedRelation
from repro.incremental.engine import IncrementalQueryEngine
from repro.incremental.ivm import (
    delta_factor,
    maintain_faq,
    maintain_join_rows,
    signed_join_delta,
)

__all__ = [
    "IncrementalQueryEngine",
    "SignedDelta",
    "VersionedRelation",
    "delta_factor",
    "maintain_faq",
    "maintain_join_rows",
    "signed_join_delta",
]
