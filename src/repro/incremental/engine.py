""":class:`IncrementalQueryEngine` — maintain query results as data changes.

The :class:`repro.planner.QueryEngine`-shaped facade of the IVM subsystem:
construct it per query, ``execute(database)`` once to bind and materialize,
then ``insert``/``delete``/``refresh`` instead of re-executing.  Between
refreshes the engine holds

* one log-structured :class:`~repro.incremental.delta.VersionedRelation`
  per base relation *and* per query atom (atom-coded, so self-joins each
  maintain their own binding);
* the materialized join view (canonical sorted code rows over the sorted
  global variable order — the same rows every driver produces);
* any registered FAQ views (⊕⊗ over the atoms' lifted factors).

A refresh commits the pending changes as one validated
:class:`~repro.incremental.delta.SignedDelta` batch per relation, then
maintains every view by the delta rule (:mod:`repro.incremental.ivm`) —
cost scales with the batch, not the database.  Plans stay warm across
versions: the engine pins power-of-two-rounded cardinality constraints, so
the planner's canonical-signature cache keeps serving the same
:class:`~repro.planner.PandaPlan` while sizes drift within a factor of two
(the plan is data-independent; only its guards re-resolve per database),
and re-pins — rebuilding plans — only when a relation outgrows its bound.

With ``workers > 1`` the delta-rule terms fan out over the
:mod:`repro.parallel` worker pool: the atom-level *base* relations ship
once per compaction epoch (per-relation content-digest tokens), and each
term task carries only the pending delta runs it needs — tiny, signed,
version-tagged buffers the workers merge and cache — never the whole
database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce
from typing import Callable, Iterable, Sequence

from repro.core.constraints import ConstraintSet, DegreeConstraint
from repro.exceptions import IncrementalError, QueryError
from repro.faq.annotated import AnnotatedRelation
from repro.faq.semiring import Semiring
from repro.incremental.delta import SignedDelta, VersionedRelation
from repro.incremental.ivm import (
    delta_factor,
    iter_delta_terms,
    maintain_faq,
    maintain_join_rows,
    signed_join_delta,
    term_variable_order,
)
from repro.relational.operators import current_counter
from repro.relational.relation import Relation

__all__ = ["IncrementalQueryEngine", "MaintenanceStats"]


def _next_power_of_two(n: int) -> int:
    return 1 << max(0, n - 1).bit_length()


@dataclass
class MaintenanceStats:
    """Counters describing the maintenance work performed so far."""

    batches: int = 0
    join_terms: int = 0
    delta_rows: int = 0
    faq_recomputes: int = 0
    compactions: int = 0
    pooled_batches: int = 0
    replans: int = 0
    view_rows_changed: int = 0
    extras: dict = field(default_factory=dict)


class _FaqView:
    """One registered FAQ view: factors + maintained result, versioned."""

    __slots__ = ("semiring", "free", "weights", "factors", "result")

    def __init__(self, semiring, free, weights, factors, result) -> None:
        self.semiring = semiring
        self.free = free
        self.weights = weights
        self.factors = factors
        self.result = result


class IncrementalQueryEngine:
    """Keep a query's results exact under inserts and deletes.

    Example:
        >>> engine = IncrementalQueryEngine(triangle_query())   # doctest: +SKIP
        >>> first = engine.execute(database)       # bind + materialize
        >>> engine.insert("R", [(7, 8)])
        >>> engine.delete("S", [(1, 2)])
        >>> second = engine.refresh()              # delta-sized maintenance
        >>> second.relation == dasubw_plan(...).relation   # bit-identical

    Restrictions match :class:`repro.parallel.ParallelQueryEngine`: the
    query must be a full or Boolean conjunctive query (the maintained view
    is the full join over the canonical sorted variable order — exactly the
    rows every driver emits, which is what makes one maintained view serve
    all of them).
    """

    DRIVERS = ("generic", "leapfrog", "yannakakis", "panda")

    def __init__(
        self,
        query,
        constraints: ConstraintSet | None = None,
        backend: str = "exact",
        planner=None,
        workers: int = 1,
        compact_ratio: float | None = None,
        compact_min: int | None = None,
        execution_backend: str | None = None,
    ) -> None:
        from repro.planner import Planner

        if not (query.is_full or query.is_boolean):
            raise QueryError(
                "the incremental engine maintains full and Boolean "
                "conjunctive queries; project the full result instead"
            )
        self.query = query
        self.constraints = constraints
        self.backend = backend
        # LP solver choice vs execution-kernel choice, as on the other
        # engines; ``None`` defers to ``REPRO_BACKEND`` / auto-detection.
        if execution_backend is not None:
            from repro.relational.backend import resolve_backend

            resolve_backend(execution_backend)  # fail fast on a typo
        self.execution_backend = execution_backend
        self.planner = planner if planner is not None else Planner()
        self.workers = max(1, workers)
        self.stats = MaintenanceStats()
        self._compact_ratio = compact_ratio
        self._compact_min = compact_min
        self._order = tuple(sorted(query.variable_set))

        self._source = None  # the Database the engine was bound to
        self._database = None  # the current (post-batch) Database
        self._names: dict[str, VersionedRelation] = {}
        self._atoms: list[VersionedRelation] = []
        self._pending: dict[str, tuple[list, list]] = {}
        self._view_rows: list | None = None
        self._view_relation: Relation | None = None
        self._faq_views: dict = {}
        self._pinned: ConstraintSet | None = None
        self._scratch = None  # lazy ParallelQueryEngine(workers=1)
        self._pool = None

    # -- lifecycle ---------------------------------------------------------------

    @property
    def version(self) -> int:
        """Number of committed batches since binding."""
        return self.stats.batches

    @property
    def cache_stats(self):
        return self.planner.stats

    def close(self) -> None:
        """Shut down the worker pool and the scratch engine (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._scratch is not None:
            self._scratch.close()
            self._scratch = None

    def __enter__(self) -> "IncrementalQueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- binding -----------------------------------------------------------------

    def bind(self, database) -> None:
        """Adopt ``database`` as version 0 (resets any previous binding)."""
        self.close()
        names: dict[str, VersionedRelation] = {}
        for atom in self.query.body:
            if atom.name not in names:
                names[atom.name] = VersionedRelation(
                    database[atom.name],
                    compact_ratio=self._compact_ratio,
                    compact_min=self._compact_min,
                )
        self._names = names
        # Atom-level logs: an atom whose binding *is* the stored relation
        # (schema == variables, the common case) shares the name-level log
        # outright — one merge per batch, not two copies of the same data.
        self._atoms = []
        for atom in self.query.body:
            binding = atom.bind(database)
            if binding is database[atom.name]:
                self._atoms.append(names[atom.name])
            else:
                self._atoms.append(
                    VersionedRelation(
                        binding,
                        compact_ratio=self._compact_ratio,
                        compact_min=self._compact_min,
                    )
                )
        self._source = database
        self._database = database
        self._pending = {}
        self._view_rows = None
        self._view_relation = None
        self._faq_views = {}
        self._pinned = None
        self.stats = MaintenanceStats()

    def database(self):
        """The current :class:`~repro.relational.database.Database` view."""
        self._require_bound()
        return self._database

    def relation(self, name: str) -> Relation:
        """The current version of one base relation."""
        self._require_bound()
        return self._names[name].current

    @property
    def relation_names(self) -> tuple[str, ...]:
        """The base relation names the query references (atom order)."""
        self._require_bound()
        return tuple(self._names)

    def relation_log(self, name: str) -> VersionedRelation:
        """The name-level log of one base relation.

        The serving layer's snapshot registry pins versions on these logs
        (:meth:`VersionedRelation.pin`) from its writer thread; everything
        else should treat the log as read-only and go through
        :meth:`insert`/:meth:`delete`/:meth:`refresh`.
        """
        self._require_bound()
        return self._names[name]

    def _require_bound(self) -> None:
        if self._database is None:
            raise IncrementalError(
                "engine is not bound — call execute(database) first"
            )

    # -- changes -----------------------------------------------------------------

    def insert(self, name: str, rows: Iterable[tuple]) -> None:
        """Buffer tuple inserts against relation ``name`` (applied on refresh)."""
        self._buffer(name, rows, 0)

    def delete(self, name: str, rows: Iterable[tuple]) -> None:
        """Buffer tuple deletes against relation ``name`` (applied on refresh)."""
        self._buffer(name, rows, 1)

    def _buffer(self, name: str, rows: Iterable[tuple], side: int) -> None:
        self._require_bound()
        if name not in self._names:
            raise IncrementalError(
                f"relation {name!r} is not referenced by {self.query.name}"
            )
        entry = self._pending.setdefault(name, ([], []))
        entry[side].extend(tuple(row) for row in rows)

    @property
    def has_pending_changes(self) -> bool:
        return any(ins or dels for ins, dels in self._pending.values())

    def discard_pending(self) -> None:
        """Drop the buffered (uncommitted) changes.

        A batch that fails validation on :meth:`refresh` (e.g. a delete of
        an absent row) stays buffered — nothing was applied — so the caller
        can either fix it with compensating ``insert``/``delete`` calls or
        discard it wholesale here.
        """
        self._pending = {}

    # -- execution ---------------------------------------------------------------

    def execute(self, database=None, driver: str = "generic"):
        """Bind (first call) or refresh; returns a ``PlanResult``.

        Passing a *different* database re-binds from scratch; passing the
        bound database (or ``None``) applies any pending changes and serves
        the maintained view.
        """
        if driver not in self.DRIVERS:
            raise QueryError(
                f"unknown driver {driver!r}; pick from {self.DRIVERS}"
            )
        if database is not None and database not in (self._source, self._database):
            self.bind(database)
        elif self._database is None:
            if database is None:
                self._require_bound()
            self.bind(database)
        return self.refresh(driver=driver)

    def refresh(self, driver: str = "generic"):
        """Apply pending changes and return the (maintained) query result.

        The first call materializes the view with ``driver``; later calls
        maintain it by the delta rule, so the driver only determines how a
        recompute-from-scratch *would* run — the maintained rows are
        bit-identical for every driver by the engine contract.
        """
        from repro.core.query_plans import PlanResult

        self._require_bound()
        self._commit()
        if self._view_rows is None:
            self._materialize(driver)
        rows = self._view_rows
        if self.query.is_boolean:
            relation = Relation(self.query.name, (), [()] if rows else [])
            return PlanResult(relation=relation, boolean=bool(rows))
        return PlanResult(
            relation=self._view_relation, boolean=bool(rows)
        )

    # -- FAQ views ---------------------------------------------------------------

    def faq(
        self,
        semiring: Semiring,
        free: Sequence[str] = (),
        weights: Sequence[Callable[[tuple], object] | None] | None = None,
    ) -> AnnotatedRelation:
        """The maintained FAQ result ``⊕_{bound} ⊗ᵢ lift(Rᵢ)``.

        ``weights`` (aligned with the query atoms, fixed at first call)
        lift each atom's tuples to annotations; the default is the unit
        lifting.  Invertible-⊕ semirings (counting, Fraction) maintain by
        signed folds; the rest (Boolean, min-plus, max-product) recompute
        per batch — visible in ``stats.faq_recomputes``.
        """
        self._require_bound()
        self._commit()
        free = tuple(free)
        unknown = set(free) - set(self._order)
        if unknown:
            raise QueryError(
                f"free variables {sorted(unknown)} not in the query"
            )
        key = (semiring.name, free)
        view = self._faq_views.get(key)
        if view is None:
            if weights is not None and len(weights) != len(self.query.body):
                raise QueryError(
                    f"weights must align with the {len(self.query.body)} "
                    f"query atoms"
                )
            factors = self._lift_factors(semiring, weights)
            result = self._evaluate_faq(factors, free)
            view = _FaqView(semiring, free, weights, factors, result)
            self._faq_views[key] = view
        elif weights is not None and (
            view.weights is None or list(weights) != list(view.weights)
        ):
            # Weights are part of the view's definition and fixed at
            # registration; silently serving the old weighting would be a
            # wrong answer, not a cache hit.
            raise QueryError(
                f"FAQ view ({semiring.name}, free={free}) is already "
                f"registered with different weights — weights are fixed at "
                f"the first faq() call"
            )
        return view.result

    def _lift_factors(self, semiring, weights):
        bindings = [vr.current for vr in self._atoms]
        factors = []
        for i, relation in enumerate(bindings):
            weight = weights[i] if weights else None
            factors.append(
                AnnotatedRelation.from_relation(relation, semiring, weight)
            )
        return factors

    @staticmethod
    def _evaluate_faq(factors, free):
        product = reduce(lambda a, b: a.multiply(b), factors)
        return product.marginalize(free)

    # -- the commit path -----------------------------------------------------------

    def _commit(self) -> bool:
        """Validate, apply, and maintain one batch; True if data changed.

        Validation happens before anything mutates: a
        :class:`~repro.exceptions.DeltaError` leaves every relation and
        view untouched with the batch still buffered (fix it or
        :meth:`discard_pending`).
        """
        if not self.has_pending_changes:
            self._pending = {}
            return False
        deltas: dict[str, SignedDelta] = {}
        for name, (inserts, deletes) in self._pending.items():
            delta = SignedDelta.from_changes(
                self._names[name].current, inserts, deletes
            )
            if not delta.is_empty:
                deltas[name] = delta
        self._pending = {}
        if not deltas:
            return False

        # Apply name-level; compaction waits until maintenance is done so
        # the pooled path can still replay this batch's runs from the base.
        old_atom_versions = [vr.version for vr in self._atoms]
        old_bindings = [vr.current for vr in self._atoms]
        for name, delta in deltas.items():
            self._names[name].apply(delta, compact=False)
        atom_deltas: list[SignedDelta | None] = []
        for atom, vr in zip(self.query.body, self._atoms):
            delta = deltas.get(atom.name)
            if delta is None:
                atom_deltas.append(None)
                continue
            if vr is self._names[atom.name]:
                # Shared log: the name-level apply above already advanced it,
                # and the delta is already coded under the atom's variables.
                atom_deltas.append(delta)
                continue
            relabeled = delta.relabeled(atom.variables)
            vr.apply(relabeled, compact=False)
            atom_deltas.append(relabeled)
        new_bindings = [vr.current for vr in self._atoms]
        self._database = self._database.updated(
            [self._names[name].current for name in deltas]
        )

        self.stats.batches += 1
        self.stats.delta_rows += sum(len(d) for d in deltas.values())

        if self._view_rows is not None:
            from repro.relational.backend import scoped_backend

            with scoped_backend(self.execution_backend):
                if self.workers > 1:
                    net = self._pooled_net(
                        old_atom_versions, old_bindings, atom_deltas
                    )
                else:
                    net, executed = signed_join_delta(
                        old_bindings, new_bindings, atom_deltas, self._order
                    )
                    self.stats.join_terms += executed
            rows = maintain_join_rows(self._view_rows, net)
            self.stats.view_rows_changed += len(net)
            self._install_view(rows)

        for view in self._faq_views.values():
            self._maintain_faq_view(view, atom_deltas)

        seen_logs: set[int] = set()
        for vr in list(self._names.values()) + self._atoms:
            if id(vr) in seen_logs:
                continue  # atom logs may share the name-level log
            seen_logs.add(id(vr))
            if self._maybe_compact(vr):
                self.stats.compactions += 1
        return True

    @staticmethod
    def _maybe_compact(vr: VersionedRelation) -> bool:
        if vr.should_compact:
            vr.compact()
            return True
        return False

    def _install_view(self, rows: list) -> None:
        self._view_rows = rows
        if not self.query.is_boolean:
            self._view_relation = Relation.from_codes(
                self.query.name, self._order, rows,
                presorted=True, distinct=True,
            )

    def _maintain_faq_view(self, view, atom_deltas) -> None:
        semiring = view.semiring
        if semiring.invertible:
            delta_factors = []
            new_factors = []
            for i, (factor, delta) in enumerate(zip(view.factors, atom_deltas)):
                if delta is None or delta.is_empty:
                    delta_factors.append(None)
                    new_factors.append(factor)
                    continue
                weight = view.weights[i] if view.weights else None
                dF = delta_factor(delta, semiring, weight, name=f"d{factor.name}")
                delta_factors.append(dF)
                # lift(new) == lift(old) ⊕ dF: the weight function only runs
                # on delta rows, never on the unchanged bulk.
                new_factors.append(factor.combine(dF, name=factor.name))
            maintained = maintain_faq(
                view.result, view.factors, new_factors, delta_factors, view.free
            )
            view.factors = new_factors
            view.result = maintained
        else:
            view.factors = self._lift_factors(semiring, view.weights)
            view.result = self._evaluate_faq(view.factors, view.free)
            self.stats.faq_recomputes += 1

    # -- from-scratch runs ----------------------------------------------------------

    def _pinned_constraints(self) -> ConstraintSet:
        """Power-of-two-rounded cardinalities: stable plan keys under churn.

        An explicit engine-level constraint set wins; otherwise the pinned
        set re-rounds only when some relation outgrew its bound (a replan —
        counted in ``stats.replans``), so the planner's cache serves the
        same data-independent plans across version bumps and only the
        guards re-resolve.
        """
        if self.constraints is not None:
            return self.constraints
        pinned = self._pinned
        if pinned is not None:
            by_key: dict[tuple, int] = {}
            for c in pinned:
                bound = by_key.get(c.y_key)
                by_key[c.y_key] = c.bound if bound is None else min(bound, c.bound)
            stale = any(
                len(vr.current) > by_key[tuple(sorted(atom.variables))]
                for atom, vr in zip(self.query.body, self._atoms)
            )
            if not stale:
                return pinned
            self.stats.replans += 1
        constraints = []
        seen = set()
        for atom, vr in zip(self.query.body, self._atoms):
            y = tuple(sorted(atom.variables))
            bound = _next_power_of_two(max(1, len(vr.current)))
            if (y, bound) not in seen:
                seen.add((y, bound))
                constraints.append(DegreeConstraint.make((), y, bound))
        self._pinned = ConstraintSet(constraints)
        return self._pinned

    def _scratch_engine(self):
        if self._scratch is None:
            from repro.parallel import ParallelQueryEngine

            self._scratch = ParallelQueryEngine(
                self.query,
                backend=self.backend,
                planner=self.planner,
                workers=1,
                execution_backend=self.execution_backend,
            )
        return self._scratch

    def _materialize(self, driver: str) -> None:
        """First materialization of the join view, with ``driver``."""
        if self.query.is_boolean:
            # Boolean drivers don't return rows; maintain the full join.
            from repro.relational.backend import scoped_backend
            from repro.relational.wcoj import generic_join

            with scoped_backend(self.execution_backend):
                joined = generic_join(
                    [vr.current for vr in self._atoms], self._order
                )
            self._install_view(joined.code_rows)
        else:
            result = self._scratch_engine().execute(
                self._database, driver=driver,
                constraints=self._pinned_constraints(),
            )
            self._view_relation = result.relation
            self._view_rows = result.relation.code_rows
        self._prewarm_term_orders()

    def _prewarm_term_orders(self) -> None:
        """Sort each binding under every delta-first term order, once.

        The delta-rule terms resolve the changed atom's variables first
        (:func:`term_variable_order`), which needs the *other* relations
        sorted under permuted orders.  Sorting here — at materialization,
        part of the one-time cost — means every later batch only pays the
        delta-sized merges that carry these orders forward
        (:func:`~repro.incremental.delta.advance_relation`), keeping
        steady-state maintenance free of O(N log N) work.
        """
        bindings = [vr.current for vr in self._atoms]
        for i, atom in enumerate(self.query.body):
            t_order = term_variable_order(self._order, atom.variables)
            for j, relation in enumerate(bindings):
                if j == i:
                    continue
                attrs = tuple(v for v in t_order if v in relation.attributes)
                # Force the columns too: advance_relation only splices
                # columns that exist, and an order used exclusively on the
                # "old" side of the delta rule would otherwise re-transpose
                # from scratch every batch.
                relation.column_set(attrs).columns

    def recompute(self, driver: str = "generic"):
        """A from-scratch run on the current data (oracle / fallback path).

        Shares the engine's planner and pinned constraints, so repeated
        recomputes stay plan-warm; used by tests to pin the bit-identity
        contract and by callers that want to double-check a maintained view.
        """
        self._require_bound()
        self._commit()
        return self._scratch_engine().execute(
            self._database, driver=driver,
            constraints=self._pinned_constraints(),
        )

    # -- pooled maintenance ----------------------------------------------------------

    def _pooled_net(self, old_versions, old_bindings, atom_deltas):
        """Fan the delta-rule terms out over the worker pool.

        The atom-level *base* relations are resident in the workers under
        per-relation content-digest tokens (shipped once per compaction
        epoch); each term task carries only the pending runs lifting a base
        to the old/new version it needs, plus the term's (tiny) sign-split
        delta rows.  Results come home as sorted row buffers and merge into
        one net signed map.
        """
        from repro.parallel.pool import (
            WorkerPool,
            pack_output_rows,
            run_delta_term_task,
            unpack_columns,
        )

        new_bindings = [vr.current for vr in self._atoms]
        terms = list(
            iter_delta_terms(old_bindings, new_bindings, atom_deltas)
        )
        if len(terms) <= 1 or self.workers <= 1:
            net, executed = signed_join_delta(
                old_bindings, new_bindings, atom_deltas, self._order
            )
            self.stats.join_terms += executed
            return net

        keys = [f"{atom.name}#{i}" for i, atom in enumerate(self.query.body)]
        entries = []
        tokens = []
        for key, vr in zip(keys, self._atoms):
            column_set = vr.base.column_set(vr.base.schema)
            digest = column_set.content_digest()
            tokens.append((key, digest))
            entries.append((key, vr.base.schema, vr.base, digest))
        tokens = tuple(tokens)
        if self._pool is None:
            self._pool = WorkerPool(self.workers)
        # A compaction moves some bases; the pool's per-relation digest diff
        # decides reship-vs-recycle (compacting everything at once trips its
        # update-size threshold and re-forks; a lone compaction rides along
        # as updates until the traffic bound).
        self._pool.ensure_database(tokens, entries)

        packed_runs: dict[tuple, tuple] = {}

        def runs_payload(index: int, version: int):
            vr = self._atoms[index]
            if version == vr.base_version:
                return None
            cache_key = (index, version)
            cached = packed_runs.get(cache_key)
            if cached is None:
                runs = vr.runs[: version - vr.base_version]
                arity = len(vr.base.schema)
                cached = tuple(
                    (
                        pack_output_rows(run.rows, arity),
                        run.signs.tobytes(),
                    )
                    for run in runs
                )
                packed_runs[cache_key] = cached
            return cached

        from repro.relational.backend import current_backend

        # Resolved under the engine's ``scoped_backend`` (see ``_commit``),
        # so workers run each term under the same backend as the serial path.
        exec_backend = current_backend()
        tasks = []
        signs = []
        for i, sign, relations in terms:
            specs = []
            for j, key in enumerate(keys):
                vr = self._atoms[j]
                if j == i:
                    arity = len(vr.base.schema)
                    buffer = pack_output_rows(
                        atom_deltas[j].signed_rows(sign), arity
                    )
                    specs.append(("delta", key, buffer))
                    continue
                version = vr.version if j < i else old_versions[j]
                payload = runs_payload(j, version)
                if payload is None:
                    specs.append(("resident", key))
                else:
                    specs.append(("version", key, version, payload))
            tasks.append((tokens, self._order, tuple(specs), exec_backend))
            signs.append(sign)

        results = self._pool.map(run_delta_term_task, tasks)
        self.stats.join_terms += len(tasks)
        self.stats.pooled_batches += 1
        counter = current_counter()
        net: dict[tuple, int] = {}
        arity = len(self._order)
        for sign, (buffer, counts) in zip(signs, results):
            counter.absorb(counts)
            rows, _ = unpack_columns(buffer, arity)
            for row in rows:
                count = net.get(row, 0) + sign
                if count:
                    net[row] = count
                else:
                    del net[row]
        return net
