"""The delta-rule maintenance kernels (joins and FAQ ⊕-folds).

Join maintenance uses the classic delta-rule expansion over the signed
relational algebra: with ``Rⱼ' = Rⱼ + dRⱼ``,

    d(R₁ ⋈ … ⋈ Rₖ)  =  Σᵢ  R₁' ⋈ … ⋈ Rᵢ₋₁' ⋈ dRᵢ ⋈ Rᵢ₊₁ ⋈ … ⋈ Rₖ

— new versions left of the delta, old versions right of it, so the terms
telescope exactly.  Every relation here is a *set* relation and the result
is a **full** join, so each output row has exactly one derivation (its
projections onto the atom schemas), every term contributes each row with
multiplicity ±1, and the net signed count per row over all terms is
``+1`` (row enters), ``-1`` (row leaves) or ``0`` — which is what lets
:func:`maintain_join_rows` apply the net to the old sorted rows with one
delta-sized merge and a strict consistency check.

Each term runs through the ordinary
:func:`~repro.relational.execution.execute_join` driver with the delta's
sign-split rows as one input and the delta's (tiny) first-variable code span
as trie-root bounds for the other relations
(:func:`~repro.relational.execution.delta_root_ranges`), so term cost scales
with the delta, not the database.

FAQ maintenance is the same expansion in the annotation semiring: the delta
factor ``dFᵢ`` carries inserted mass positively and deleted mass ⊕-inverted,
each term ⊗-multiplies through and ⊕-marginalizes, and the old result
absorbs the terms by signed ⊕-folds
(:meth:`~repro.faq.annotated.AnnotatedRelation.combine`).  That requires ⊕
to be a group operation — ``semiring.subtract`` — which the counting and
Fraction semirings have; min/max/or do not, and
:func:`maintain_faq` returns ``None`` so the caller recomputes instead.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.exceptions import IncrementalError
from repro.faq.annotated import AnnotatedRelation
from repro.faq.semiring import Semiring
from repro.incremental.delta import SignedDelta
from repro.relational.columns import apply_signed_rows
from repro.relational.execution import (
    delta_root_ranges,
    execute_join,
    register_vectorizable,
)
from repro.relational.relation import Relation

__all__ = [
    "delta_factor",
    "execute_delta_term",
    "iter_delta_terms",
    "maintain_faq",
    "maintain_join_rows",
    "probe_intersection",
    "signed_join_delta",
    "term_variable_order",
]


@register_vectorizable
def probe_intersection(active: list, counter) -> list[int]:
    """Inner-level intersection by probing, sized to the *smallest* node.

    Generic Join's hash intersection materializes every active node's key
    set, and the leapfrog walks every active key list — fine when the join
    touches each node a few times, but a delta term visits a big relation's
    nodes once, anchored on a tiny delta, so materializing a
    database-sized root key set to intersect it with five delta keys would
    dominate the whole maintenance batch.  Here only the node with the
    smallest *row span* (an O(1) bound) materializes its key list; every
    other node answers membership by one binary search on its sorted
    column (:meth:`~repro.relational.trie.SortedTrieIterator.contains_child`).
    The charged cost is the candidate count — the same smallest-set
    charging argument as Generic Join.
    """
    driver = active[0]
    best = driver.child_span()
    for iterator in active[1:]:
        span = iterator.child_span()
        if span < best:
            driver, best = iterator, span
    candidates = driver.child_keys()
    counter.tuples_scanned += len(candidates)
    if len(active) == 2:
        other = active[1] if driver is active[0] else active[0]
        contains = other.contains_child
        return [code for code in candidates if contains(code)]
    out = []
    for code in candidates:
        for iterator in active:
            if iterator is not driver and not iterator.contains_child(code):
                break
        else:
            out.append(code)
    return out


def term_variable_order(
    order: tuple[str, ...], delta_attrs
) -> tuple[str, ...]:
    """The delta-first variable order of one delta-rule term.

    Resolving the delta's attributes *first* is what makes a term's cost
    delta-sized: the top trie levels then enumerate the delta's (tiny) key
    sets, and every other relation only ever extends bindings the delta
    admits.  Under the canonical order a delta not containing the first
    variable would instead enumerate the full first-level candidate set —
    database-sized work for a one-row change.  Both halves keep the
    canonical (sorted) relative order, so term orders are deterministic;
    the term's output rows are permuted back to the canonical order before
    they meet the maintained view.
    """
    inside = frozenset(delta_attrs)
    first = tuple(v for v in order if v in inside)
    return first + tuple(v for v in order if v not in inside)


def iter_delta_terms(
    old_bindings: Sequence[Relation],
    new_bindings: Sequence[Relation],
    atom_deltas: Sequence[SignedDelta | None],
) -> Iterator[tuple[int, int, list[Relation]]]:
    """Yield the non-empty delta-rule terms as ``(i, sign, relations)``.

    ``relations`` is the term's input list: new bindings before position
    ``i``, the sign-split delta relation at ``i``, old bindings after.  Terms
    whose delta side is empty are skipped — an unchanged atom contributes
    nothing.
    """
    for i, delta in enumerate(atom_deltas):
        if delta is None or delta.is_empty:
            continue
        for sign in (1, -1):
            delta_relation = delta.relation(sign, f"d{new_bindings[i].name}")
            if delta_relation.is_empty():
                continue
            relations = (
                list(new_bindings[:i])
                + [delta_relation]
                + list(old_bindings[i + 1 :])
            )
            yield i, sign, relations


def execute_delta_term(
    relations: Sequence[Relation],
    order: tuple[str, ...],
    delta_index: int,
) -> list:
    """Run one delta-rule term; rows come back in the canonical ``order``.

    The single term protocol both the serial path (:func:`signed_join_delta`)
    and the pooled workers (:func:`repro.parallel.pool.run_delta_term_task`)
    execute — one definition, so serial and pooled maintenance cannot drift
    apart: the delta-first variable order, the delta-scoped trie-root
    ranges, the probe intersection at every level, and the permutation back
    to the canonical order all live here.
    """
    delta_attrs = relations[delta_index].schema
    t_order = term_variable_order(order, delta_attrs)
    ranges = delta_root_ranges(relations, t_order, delta_index)
    term = execute_join(
        relations, t_order, "dQ", probe_intersection, ranges,
        leaf_intersect=probe_intersection,
    )
    rows = term.code_rows
    if t_order != order:
        permutation = tuple(t_order.index(v) for v in order)
        rows = [tuple(row[p] for p in permutation) for row in rows]
    return rows


def signed_join_delta(
    old_bindings: Sequence[Relation],
    new_bindings: Sequence[Relation],
    atom_deltas: Sequence[SignedDelta | None],
    order: tuple[str, ...],
) -> tuple[dict[tuple, int], int]:
    """The net signed change of the full join, plus the term count.

    Executes every delta-rule term serially (:func:`execute_delta_term`)
    and sums the signed contributions; rows whose contributions cancel
    across terms are dropped.  Returns ``(net, executed_terms)`` — the
    count only includes terms whose sign-split delta was non-empty, so the
    engine's ``stats.join_terms`` agrees between serial and pooled paths.
    """
    net: dict[tuple, int] = {}
    executed = 0
    for i, sign, relations in iter_delta_terms(
        old_bindings, new_bindings, atom_deltas
    ):
        executed += 1
        for row in execute_delta_term(relations, order, i):
            count = net.get(row, 0) + sign
            if count:
                net[row] = count
            else:
                del net[row]
    return net, executed


def maintain_join_rows(old_rows: list, net: dict[tuple, int]) -> list:
    """Apply a net signed change to the old sorted result rows.

    The delta rule over set relations guarantees every net count is ``±1``
    and consistent with the old rows (``+1`` only for absent rows, ``-1``
    only for present ones); anything else is a maintenance bug and raises
    :class:`IncrementalError` — via the strict merge — rather than silently
    corrupting the view.
    """
    if not net:
        return old_rows
    for row, count in net.items():
        if count not in (-1, 1):
            raise IncrementalError(
                f"net multiplicity {count} for row {row} — the delta rule "
                f"over set relations must telescope to ±1"
            )
    entries = sorted(net.items())
    try:
        return apply_signed_rows(
            old_rows,
            [row for row, _ in entries],
            [sign for _, sign in entries],
        )
    except Exception as error:  # strict merge: surface as an IVM bug
        raise IncrementalError(
            f"maintained join diverged from its delta: {error}"
        ) from error


# -- FAQ maintenance ----------------------------------------------------------------


def delta_factor(
    delta: SignedDelta,
    semiring: Semiring,
    weight: Callable[[tuple], object] | None = None,
    name: str = "dF",
) -> AnnotatedRelation:
    """The annotated delta factor ``dFᵢ``: inserted mass ⊕, deleted mass ⊖.

    ``weight`` maps a *decoded* value tuple to its annotation (defaults to
    ``semiring.one``, the unit lifting).  Requires an invertible ⊕ — deleted
    rows carry ``⊖weight`` so the ⊗/⊕ algebra telescopes exactly.
    """
    if not semiring.invertible:
        raise IncrementalError(
            f"semiring {semiring} has non-invertible ⊕; delta factors "
            f"need subtraction (recompute instead)"
        )
    zero = semiring.zero
    one = semiring.one
    data: dict[tuple, object] = {}
    if weight is None:
        negative_one = semiring.negate(one)
        for row, sign in zip(delta.rows, delta.signs):
            data[row] = one if sign > 0 else negative_one
    else:
        for row, (values, sign) in zip(delta.rows, delta.decoded()):
            value = weight(values)
            if sign < 0:
                value = semiring.negate(value)
            if value != zero:
                data[row] = value
    return AnnotatedRelation._from_codes(name, delta.attrs, semiring, data)


def maintain_faq(
    old_result: AnnotatedRelation,
    old_factors: Sequence[AnnotatedRelation],
    new_factors: Sequence[AnnotatedRelation],
    delta_factors: Sequence[AnnotatedRelation | None],
    free: tuple[str, ...],
) -> AnnotatedRelation | None:
    """Maintain ``⊕_{bound} ⊗ᵢ Fᵢ`` through one batch of factor deltas.

    Returns the maintained result — ``old ⊕ Σᵢ (F₁'⊗…⊗dFᵢ⊗…⊗Fₖ)
    marginalized to ``free`` — or ``None`` when ⊕ is not invertible, in
    which case the caller must recompute from the new factors.  Each term
    starts its ⊗-chain at the (tiny) delta factor so intermediates stay
    delta-bounded in row count.
    """
    semiring = old_result.semiring
    if not semiring.invertible:
        return None
    maintained = old_result
    for i, delta in enumerate(delta_factors):
        if delta is None or len(delta) == 0:
            continue
        term = delta
        # ⊗ is commutative in content; anchoring the chain on the delta
        # keeps every intermediate's support delta-sized.  combine()
        # realigns the term's schema onto the result's at the end.
        for j in range(i - 1, -1, -1):
            term = term.multiply(new_factors[j])
        for j in range(i + 1, len(old_factors)):
            term = term.multiply(old_factors[j])
        contribution = term.marginalize(free)
        maintained = maintain_annotations(maintained, contribution)
    return maintained


def maintain_annotations(
    result: AnnotatedRelation, contribution: AnnotatedRelation
) -> AnnotatedRelation:
    """Fold one signed contribution into a maintained result (⊕, drop zeros)."""
    if len(contribution) == 0:
        return result
    return result.combine(contribution, name=result.name)
