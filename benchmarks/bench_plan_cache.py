"""Plan-cache benchmark: cold-vs-warm ``dasubw_plan`` on cycle workloads.

Before the planner subsystem, every ``panda()`` call re-solved the exact
bound LP and rebuilt the proof sequence from scratch — per bag, per selector
image, per query — even though that work is data-independent (profiled at
~50–80 % of a ``dasubw_plan`` run).  This bench measures what the planner
buys on the ISSUE 3 repro workloads (4- and 5-cycle, ``(i, 3i mod 11)``
relations):

* ``scratch``      — planning disabled (``Planner(cache_plans=False)``): the
  pre-planner cost every evaluation used to pay;
* ``shared_cold``  — first evaluation with an empty cache: isomorphic
  selector images already share one plan build per isomorphism class;
* ``warm``         — steady-state repeated evaluation on a persistent
  :class:`~repro.planner.QueryEngine`.

Every output is cross-checked against the Generic Join oracle, and the
measurements are written to a JSON perf artifact under ``benchmarks/out/``
(env ``PLAN_CACHE_JSON`` overrides the path) so CI can archive the
trajectory, mirroring ``wcoj_engine_comparison.json``.  The CI gate asserts
``scratch / warm >= PLAN_CACHE_MIN_SPEEDUP`` (default 5).
"""

import json
import os
import time

from repro.core.query_plans import dasubw_plan
from repro.instances import cycle_query
from repro.planner import Planner, QueryEngine
from repro.relational import Database, Relation, generic_join

from _bench_utils import artifact_path, print_table

MIN_SPEEDUP = float(os.environ.get("PLAN_CACHE_MIN_SPEEDUP", "5.0"))
JSON_PATH = artifact_path(
    "plan_cache_benchmark.json", os.environ.get("PLAN_CACHE_JSON")
)
WARM_ROUNDS = 5


def modular_cycle_database(length, size=40, mod=11):
    query = cycle_query(length)
    relations = []
    for atom in query.body:
        pairs = [(i, (3 * i) % mod) for i in range(size)]
        relations.append(
            Relation.from_pairs(atom.name, atom.variables[0], atom.variables[1], pairs)
        )
    return Database(relations)


def normalized_rows(relation):
    return sorted(tuple(sorted(zip(relation.schema, row))) for row in relation.tuples)


def _measure(length):
    query = cycle_query(length)
    db = modular_cycle_database(length)
    oracle = normalized_rows(generic_join([a.bind(db) for a in query.body]))

    start = time.perf_counter()
    scratch_result = dasubw_plan(query, db, planner=Planner(cache_plans=False))
    scratch = time.perf_counter() - start
    assert normalized_rows(scratch_result.relation) == oracle

    engine = QueryEngine(query)
    start = time.perf_counter()
    cold_result = engine.execute(db)
    shared_cold = time.perf_counter() - start
    assert normalized_rows(cold_result.relation) == oracle

    warm_times = []
    for _ in range(WARM_ROUNDS):
        start = time.perf_counter()
        warm_result = engine.execute(db)
        warm_times.append(time.perf_counter() - start)
        assert normalized_rows(warm_result.relation) == oracle
    warm = min(warm_times)

    stats = engine.cache_stats
    return {
        "workload": f"{length}-cycle",
        "oracle_rows": len(oracle),
        "scratch_s": round(scratch, 6),
        "shared_cold_s": round(shared_cold, 6),
        "warm_s": round(warm, 6),
        "scratch_over_warm": round(scratch / warm, 2),
        "cold_over_warm": round(shared_cold / warm, 2),
        "cache": stats.as_dict(),
    }


def test_plan_cache_speedup(benchmark):
    """Gate: warm evaluation >= MIN_SPEEDUP x faster than scratch planning."""
    results = [_measure(length) for length in (4, 5)]

    print_table(
        "Plan cache: scratch vs shared-cold vs warm dasubw_plan",
        ["workload", "scratch ms", "cold ms", "warm ms", "scratch/warm", "hit rate"],
        [
            [
                r["workload"],
                round(r["scratch_s"] * 1000, 1),
                round(r["shared_cold_s"] * 1000, 1),
                round(r["warm_s"] * 1000, 1),
                r["scratch_over_warm"],
                r["cache"]["hit_rate"],
            ]
            for r in results
        ],
    )

    payload = {
        "benchmark": "plan_cache",
        "min_speedup_gate": MIN_SPEEDUP,
        "warm_rounds": WARM_ROUNDS,
        "results": results,
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {JSON_PATH}")

    for r in results:
        assert r["scratch_over_warm"] >= MIN_SPEEDUP, (
            f"{r['workload']}: scratch/warm {r['scratch_over_warm']}x "
            f"below the {MIN_SPEEDUP}x gate"
        )

    # One steady-state evaluation as the tracked benchmark body.
    query = cycle_query(4)
    db = modular_cycle_database(4)
    engine = QueryEngine(query)
    engine.execute(db)
    benchmark(lambda: engine.execute(db))
