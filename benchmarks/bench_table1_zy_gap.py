"""E5 — Table 1 (CC+FD rows), Theorem 1.3, Figure 5: the Zhang–Yeung gap.

Paper claims: on the Zhang–Yeung query (Eq. 49) with cardinality + FD
constraints the polymatroid bound is N^4 while the entropic bound is at most
N^{43/11} ≈ N^{3.909} — the polymatroid bound is NOT tight, and taking ``s``
variable-disjoint copies amplifies the gap to N^{s/11}.

The bench reproduces both numbers by exact LP (the ZY-outer LP optimizes
over *all* instantiations, so it may be slightly tighter than the paper's
single-certificate 43/11) and verifies the Figure 5 polymatroid witness.
"""

from fractions import Fraction

from repro.bounds import polymatroid_vs_entropic_gap
from repro.core.setfunctions import SetFunction
from repro.entropy import violates_zhang_yeung
from repro.instances import zhang_yeung_query

from _bench_utils import print_table


def _gap():
    query, constraints = zhang_yeung_query(2)  # logN = 1 units
    universe = tuple(sorted(query.variable_set))
    return polymatroid_vs_entropic_gap(universe, frozenset(universe), constraints)


def _figure5():
    f = frozenset
    closed = {
        f(("A", "B", "X", "Y", "C")): Fraction(4),
        f(("A", "X")): Fraction(3),
        f(("B", "X")): Fraction(3),
        f(("X", "Y")): Fraction(3),
        f(("A", "Y")): Fraction(3),
        f(("B", "Y")): Fraction(3),
        f(("X",)): Fraction(2),
        f(("A",)): Fraction(2),
        f(("B",)): Fraction(2),
        f(("Y",)): Fraction(2),
        f(("C",)): Fraction(2),
        f(()): Fraction(0),
    }
    return SetFunction.from_closure_table(("A", "B", "C", "X", "Y"), closed)


def test_theorem_1_3_zhang_yeung_gap(benchmark):
    gap = benchmark(_gap)
    print_table(
        "Theorem 1.3: polymatroid vs entropic bound on the ZY query (logN units)",
        ["bound", "paper", "measured"],
        [
            ["polymatroid", "4", str(gap.polymatroid.log_value)],
            ["entropic outer", "<= 43/11 ≈ 3.909",
             f"{gap.zy_outer.log_value} ≈ "
             f"{float(gap.zy_outer.log_value):.4f}"],
            ["gap", "> 0 (not tight!)", str(gap.log_gap)],
        ],
    )
    assert gap.polymatroid.log_value == 4
    assert gap.zy_outer.log_value <= Fraction(43, 11)
    assert gap.has_gap

    # The Figure 5 polymatroid achieves 4·logN and violates ZY — the witness
    # that the gap is real on the polymatroid side.
    h = _figure5()
    assert h.is_polymatroid()
    assert h(("A", "B", "C", "X", "Y")) == 4
    witness = violates_zhang_yeung(h)
    assert witness is not None
    print(f"Figure 5 polymatroid violates ZY at instantiation {witness}")

    # Gap amplification (Theorem 1.3): s disjoint copies multiply both
    # bounds, so the ratio grows like N^{s·gap}.
    s = 3
    amplified = s * gap.log_gap
    print(f"amplified gap for s={s} copies: N^{float(amplified):.3f}")
    assert amplified >= s * Fraction(1, 11) * Fraction(1, 2)
