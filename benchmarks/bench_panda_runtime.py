"""E13 — Theorem 1.7: PANDA's intermediates never exceed the budget 2^OBJ.

Paper claims: PANDA computes a model in O~(N + polylog·2^OBJ), where
OBJ = LogSizeBound_{Γn∩H_DC}.  The bench runs PANDA over a family of rules ×
instance shapes and asserts, for every run, (i) the model is valid, (ii) all
intermediate relations are within 2^OBJ, (iii) the model's tables stay within
polylog·2^OBJ.
"""

import math

from repro.core.constraints import ConstraintSet, DegreeConstraint
from repro.core.panda import panda
from repro.datalog import parse_rule
from repro.instances import instance_b_fullsize, path_rule
from repro.relational import Database, Relation

from _bench_utils import print_table


def _skew_db(n: int, pattern: str) -> Database:
    shapes = {
        "uniform": lambda: [(i, i % int(math.isqrt(n))) for i in range(n)],
        "star": lambda: [(i, 0) for i in range(n)],
        "costar": lambda: [(0, i) for i in range(n)],
    }
    maker = shapes[pattern]
    return Database(
        [
            Relation.from_pairs("R12", "A1", "A2", shapes["star"]()),
            Relation.from_pairs("R23", "A2", "A3", shapes["costar"]()),
            Relation.from_pairs("R34", "A3", "A4", maker()),
        ]
    )


def test_panda_budget_compliance(benchmark):
    rows = []
    rule = path_rule()
    for n in (32, 64, 128):
        for pattern in ("uniform", "star", "costar"):
            db = _skew_db(n, pattern)
            result = panda(rule, db)
            assert rule.is_model(result.model, db)
            assert result.stats.max_intermediate <= result.budget + 1e-9
            polylog = max(1.0, 2 * math.log2(n))
            assert result.model.max_size <= result.budget * polylog
            rows.append(
                [n, pattern, f"{result.budget:.0f}",
                 result.stats.max_intermediate, result.model.max_size,
                 result.stats.restarts]
            )
    print_table(
        "Theorem 1.7: PANDA budget compliance across instance shapes",
        ["N", "shape", "2^OBJ", "max intermediate", "model size", "restarts"],
        rows,
    )

    benchmark(lambda: panda(rule, _skew_db(64, "uniform")))


def test_panda_degree_constraints_shrink_budget(benchmark):
    """Degree constraints reduce OBJ and PANDA exploits them (Ex. 1.2(b)).

    ``R12`` is full-size (``|R12| = N``) but degree-``D``-bounded, so the
    degree constraints carry information the cardinalities do not: the bound
    drops from the AGM ``N**2`` to ``D*N^{3/2}`` (Example 1.2(b)).
    """
    n, d = 64, 2
    db = instance_b_fullsize(n, d)
    rule = parse_rule(
        "T(A1,A2,A3,A4) :- R12(A1,A2), R23(A2,A3), R34(A3,A4), R41(A4,A1)"
    )
    plain = panda(rule, db)
    with_dc = panda(
        rule,
        db,
        constraints=db.extract_cardinalities().with_constraints(
            [
                DegreeConstraint.make(("A1",), ("A1", "A2"), d),
                DegreeConstraint.make(("A2",), ("A1", "A2"), d),
            ]
        ),
    )
    print_table(
        "Degree constraints shrink the PANDA budget (instance (b), N=64, D=2)",
        ["constraints", "OBJ (log2)", "budget"],
        [
            ["cardinalities only", str(plain.bound.log_value), f"{plain.budget:.0f}"],
            ["+ degree bounds", str(with_dc.bound.log_value), f"{with_dc.budget:.0f}"],
        ],
    )
    assert with_dc.bound.log_value < plain.bound.log_value
    assert rule.is_model(with_dc.model, db)

    benchmark(lambda: panda(rule, db, constraints=db.extract_cardinalities()))
