"""Recursive datalog fixpoint: the semi-naïve vs naive gate.

The recursive subsystem's claim (``docs/datalog.md``) is that semi-naïve
evaluation does delta-sized work per round while naive re-evaluation
re-joins every rule body against the full accumulated IDB.  This bench
runs transitive closure on a 10^5-edge sparse random digraph —
vertex-disjoint random chains built from ``LAYERS`` node layers joined
by random perfect matchings, so the fixpoint depth (and the round count
both arms share) is ``LAYERS - 1`` and the closure size stays bounded —
and gates ``DatalogEngine`` at ``DATALOG_MIN_SPEEDUP`` (default 5x)
over ``evaluate_program_naive`` on total fixpoint wall-clock.  Both
arms run the same number of rounds to the same fixpoint, so the same
factor bounds the naive-over-semi-naïve per-round average.  The naive
arm is also the oracle: its rows are checked bit-identical against the
engine's before any timing is trusted.

A maintenance-shaped metric rides along: after the fixpoint, a
1%-sized batch of random bridge edges is inserted and ``refresh()`` —
a monotone continuation, no derived tuple recomputed — is gated at
``DATALOG_MIN_MAINT_SPEEDUP`` (default 2x) over a plan-warm
``recompute()`` on the post-batch data, cross-checked bit-identical
the same way (the recompute *is* the continuation's oracle, so its
wall-clock is measured on work the bench needs anyway).

Measurements go to a JSON perf artifact under ``benchmarks/out/`` (env
``DATALOG_BENCH_JSON`` overrides), which the perf-trajectory gate
(``benchmarks/perf_trajectory.py``) folds into ``perf_summary.json``
and compares against the committed baseline.
"""

import json
import os
import random
import time

from repro.datalog.engine import DatalogEngine
from repro.datalog.fixpoint import evaluate_program_naive
from repro.datalog.parser import parse_program
from repro.relational import Database, Relation

from _bench_utils import artifact_path, print_table

MIN_SPEEDUP = float(os.environ.get("DATALOG_MIN_SPEEDUP", "5.0"))
MIN_MAINT_SPEEDUP = float(os.environ.get("DATALOG_MIN_MAINT_SPEEDUP", "2.0"))
SCALE = int(os.environ.get("DATALOG_BENCH_SCALE", str(10**5)))
LAYERS = int(os.environ.get("DATALOG_BENCH_LAYERS", "26"))
DELTA_SHARE = float(os.environ.get("DATALOG_BENCH_DELTA", "0.01"))
JSON_PATH = artifact_path(
    "datalog_fixpoint.json", os.environ.get("DATALOG_BENCH_JSON")
)

TC_PROGRAM = parse_program(
    """
    path(x, y) :- edge(x, y).
    path(x, z) :- edge(x, y), path(y, z).
    """
)


def _matching_digraph(rng, width, layers):
    """Random sparse digraph of bounded depth: layered perfect matchings.

    ``layers`` layers of ``width`` nodes; consecutive layers are joined
    by an independently shuffled perfect matching, so the graph is a set
    of ``width`` vertex-disjoint random chains of length ``layers`` —
    out-degree <= 1 (sparse), ``width * (layers - 1)`` edges, and a
    transitive closure of exactly ``width * C(layers, 2)`` paths derived
    over exactly ``layers - 1`` semi-naïve rounds.
    """
    rows = []
    prev = list(range(width))
    for layer in range(1, layers):
        nxt = [layer * width + i for i in range(width)]
        rng.shuffle(nxt)
        rows.extend(zip(prev, nxt))
        prev = nxt
    return rows


def _bridge_batch(rng, width, layers, existing, count):
    """``count`` fresh random forward edges between consecutive layers.

    Bridges cross chains (a node acquires a second out-edge), so the
    continuation derives genuinely new cross-chain paths while the
    program stays monotone — exactly the insert-only shape ``refresh()``
    turns into a continuation instead of a recompute.
    """
    batch = set()
    while len(batch) < count:
        source = rng.randrange((layers - 1) * width)
        target = (source // width + 1) * width + rng.randrange(width)
        if (source, target) not in existing:
            batch.add((source, target))
    existing.update(batch)
    return sorted(batch)


def _measure(rng, width, layers):
    edges = _matching_digraph(rng, width, layers)
    database = Database([Relation("edge", ("x", "y"), edges)])

    engine = DatalogEngine(TC_PROGRAM)
    try:
        start = time.perf_counter()
        result = engine.execute(database)
        semi_s = time.perf_counter() - start
        rounds = engine.stats.rounds

        start = time.perf_counter()
        oracle = evaluate_program_naive(TC_PROGRAM, database)
        naive_s = time.perf_counter() - start
        assert result["path"].code_rows == oracle["path"].code_rows, (
            "semi-naïve fixpoint diverged from the naive oracle"
        )

        existing = set(edges)
        batch = _bridge_batch(
            rng, width, layers, existing, max(2, int(len(edges) * DELTA_SHARE))
        )
        engine.insert("edge", batch)
        start = time.perf_counter()
        maintained = engine.refresh()
        maintain_s = time.perf_counter() - start
        assert engine.stats.continuations == 1, (
            "insert-only bridge batch should continue, not recompute"
        )

        # The plan-warm recompute is the continuation's oracle.
        start = time.perf_counter()
        recomputed = engine.recompute()
        recompute_s = time.perf_counter() - start
        assert maintained["path"].code_rows == recomputed["path"].code_rows, (
            "continuation diverged from the from-scratch recompute"
        )
        stats = engine.stats
    finally:
        engine.close()

    return {
        "workload": f"tc/{layers}-layer-matching",
        "edges": len(edges),
        "paths": len(result["path"]),
        "rounds": rounds,
        "semi_naive_s": round(semi_s, 4),
        "naive_s": round(naive_s, 4),
        "semi_naive_per_round_s": round(semi_s / rounds, 4),
        "naive_per_round_s": round(naive_s / rounds, 4),
        "fixpoint_speedup": round(naive_s / semi_s, 2),
        "delta_edges": len(batch),
        "delta_paths": len(maintained["path"]) - len(result["path"]),
        "maintain_s": round(maintain_s, 4),
        "recompute_s": round(recompute_s, 4),
        "maintain_speedup": round(recompute_s / maintain_s, 2),
        "fixpoint": {
            "full_evaluations": stats.full_evaluations,
            "delta_terms": stats.delta_terms,
            "derived_rows": stats.derived_rows,
            "replans": stats.replans,
        },
    }


def test_datalog_fixpoint_speedup(benchmark):
    """Gate: semi-naïve fixpoint >= MIN_SPEEDUP x naive re-evaluation."""
    rng = random.Random(0xDA7A)
    width = max(2, SCALE // (LAYERS - 1))
    entry = _measure(rng, width, LAYERS)

    print_table(
        f"Semi-naïve vs naive transitive closure @ {entry['edges']} edges",
        ["workload", "paths", "rounds", "naive s", "semi s", "speedup"],
        [
            [
                entry["workload"],
                entry["paths"],
                entry["rounds"],
                entry["naive_s"],
                entry["semi_naive_s"],
                f"{entry['fixpoint_speedup']}x",
            ]
        ],
    )
    print_table(
        f"Continuation vs recompute @ {entry['delta_edges']} bridge edges",
        ["workload", "new paths", "recompute s", "maintain s", "speedup"],
        [
            [
                entry["workload"],
                entry["delta_paths"],
                entry["recompute_s"],
                entry["maintain_s"],
                f"{entry['maintain_speedup']}x",
            ]
        ],
    )

    payload = {
        "benchmark": "datalog_fixpoint",
        "min_speedup_gate": MIN_SPEEDUP,
        "min_maint_speedup_gate": MIN_MAINT_SPEEDUP,
        "scale": SCALE,
        "layers": LAYERS,
        "delta_share": DELTA_SHARE,
        "results": [entry],
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"perf artifact written to {JSON_PATH}")

    assert entry["fixpoint_speedup"] >= MIN_SPEEDUP, (
        f"{entry['workload']}: semi-naïve speedup "
        f"{entry['fixpoint_speedup']}x below the {MIN_SPEEDUP}x gate"
    )
    assert entry["maintain_speedup"] >= MIN_MAINT_SPEEDUP, (
        f"{entry['workload']}: continuation speedup "
        f"{entry['maintain_speedup']}x below the {MIN_MAINT_SPEEDUP}x gate"
    )

    # One steady-state continuation round as the tracked benchmark body.
    small_width = max(2, SCALE // 10 // (LAYERS - 1))
    edges = _matching_digraph(rng, small_width, LAYERS)
    existing = set(edges)
    engine = DatalogEngine(TC_PROGRAM)
    engine.execute(Database([Relation("edge", ("x", "y"), edges)]))

    def one_round():
        engine.insert(
            "edge", _bridge_batch(rng, small_width, LAYERS, existing, 50)
        )
        return engine.refresh()

    try:
        benchmark(one_round)
    finally:
        engine.close()
