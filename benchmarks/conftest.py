"""Benchmark-suite conftest (helpers live in :mod:`_bench_utils`)."""
