"""The perf-trajectory regression gate: merge, compare, fail on regression.

Every benchmark gate writes a JSON artifact under ``benchmarks/out/``; this
script folds them into one canonical ``perf_summary.json`` and compares the
extracted scalar metrics against the committed ``benchmarks/baseline.json``
with per-metric tolerance bands.  CI uploads the merged summary as the
canonical ``BENCH_*`` artifact and fails the workflow when any metric falls
outside its band — the start of the repository's performance trajectory.

Usage::

    python benchmarks/perf_trajectory.py                   # merge + compare
    python benchmarks/perf_trajectory.py --update-baseline # re-floor from now
    python benchmarks/perf_trajectory.py --strict          # missing = failure

Baseline format (``benchmarks/baseline.json``)::

    {"metrics": {"parallel_join.triangle/skew-hub.speedup_warm":
        {"floor": 2.0, "tolerance": 0.15, "note": "..."}}}

A metric regresses when ``value < floor * (1 - tolerance)`` (every tracked
metric is a speedup, so higher is better; a ``ceiling`` key with the same
tolerance semantics covers lower-is-better metrics if one is ever added).
Metrics present in the artifacts but absent from the baseline are reported
as *new* — commit them to start tracking; absent artifacts only fail under
``--strict`` (the quick CI smoke runs produce a subset).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
DEFAULT_ARTIFACTS = os.path.join(BENCH_DIR, "out")
DEFAULT_BASELINE = os.path.join(BENCH_DIR, "baseline.json")
DEFAULT_SUMMARY = os.path.join(DEFAULT_ARTIFACTS, "perf_summary.json")


def _metrics_wcoj(payload: dict) -> dict:
    metrics = {}
    for entry in payload.get("results", []):
        if not entry.get("gated", True):
            continue  # reported-only instances (e.g. the node-bound skew)
        instance = entry["instance"]
        for arm in ("generic_join", "leapfrog"):
            metrics[f"wcoj.{instance}.{arm}.speedup"] = entry[arm]["speedup"]
    return metrics


def _metrics_backend(payload: dict) -> dict:
    metrics = {}
    for entry in payload.get("results", []):
        if not entry.get("gated", True):
            continue
        instance = entry["instance"]
        for arm in ("generic_join", "leapfrog"):
            metrics[f"backend.{instance}.{arm}.speedup"] = entry[arm]["speedup"]
    return metrics


def _metrics_plan_cache(payload: dict) -> dict:
    return {
        f"plan_cache.{entry['workload']}.scratch_over_warm":
            entry["scratch_over_warm"]
        for entry in payload.get("results", [])
    }


def _metrics_parallel(payload: dict) -> dict:
    if payload.get("min_speedup_gate") is None:
        return {}  # host had fewer cores than workers; numbers not comparable
    return {
        f"parallel_join.{entry['workload']}.speedup_warm":
            entry["speedup_warm"]
        for entry in payload.get("results", [])
    }


def _metrics_incremental(payload: dict) -> dict:
    return {
        f"incremental.{entry['workload']}.best_speedup":
            entry["best_speedup"]
        for entry in payload.get("results", [])
    }


def _metrics_datalog(payload: dict) -> dict:
    metrics = {}
    for entry in payload.get("results", []):
        workload = entry["workload"]
        metrics[f"datalog.{workload}.fixpoint_speedup"] = (
            entry["fixpoint_speedup"]
        )
        metrics[f"datalog.{workload}.maintain_speedup"] = (
            entry["maintain_speedup"]
        )
    return metrics


def _metrics_out_of_core(payload: dict) -> dict:
    if not payload.get("ceiling_enforced"):
        return {}  # toy scale: the cap was below the interpreter baseline
    metrics = {}
    for entry in payload.get("results", []):
        workload = entry["workload"]
        metrics[f"out_of_core.{workload}.data_over_ceiling"] = (
            entry["data_over_ceiling"]
        )
        metrics[f"out_of_core.{workload}.rebind_column_bytes"] = (
            entry["rebind_column_bytes"]
        )
    return metrics


def _metrics_serving(payload: dict) -> dict:
    concurrent = next(
        (r for r in payload.get("results", []) if r.get("arm") == "concurrent"),
        None,
    )
    if concurrent is None:
        return {}
    return {
        "serving.triangle/90-10.throughput_vs_recompute":
            payload["throughput_ratio"],
        "serving.triangle/90-10.read_p99_s": concurrent["read_p99_s"],
    }


#: benchmark name (the artifact's ``"benchmark"`` field) -> metric extractor.
EXTRACTORS = {
    "wcoj_engine_comparison": _metrics_wcoj,
    "wcoj_backend_comparison": _metrics_backend,
    "plan_cache": _metrics_plan_cache,
    "parallel_join": _metrics_parallel,
    "incremental_maintenance": _metrics_incremental,
    "datalog_fixpoint": _metrics_datalog,
    "out_of_core": _metrics_out_of_core,
    "serving_mixed_traffic": _metrics_serving,
}


def merge_artifacts(directory: str) -> dict:
    """Fold every benchmark artifact in ``directory`` into one summary."""
    artifacts: dict = {}
    metrics: dict = {}
    if os.path.isdir(directory):
        for filename in sorted(os.listdir(directory)):
            if not filename.endswith(".json") or filename == "perf_summary.json":
                continue
            path = os.path.join(directory, filename)
            try:
                with open(path) as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError) as error:
                print(f"warning: skipping unreadable artifact {path}: {error}")
                continue
            name = payload.get("benchmark") or payload.get("bench")
            if not name:
                continue
            artifacts[filename] = payload
            extractor = EXTRACTORS.get(name)
            if extractor is not None:
                metrics.update(extractor(payload))
    return {"metrics": metrics, "artifacts": artifacts}


def compare(summary: dict, baseline: dict, strict: bool = False):
    """Compare summary metrics against the baseline bands.

    Returns ``(regressions, missing, fresh)`` — metric-name lists; a
    non-empty ``regressions`` (or, under ``strict``, ``missing``) fails the
    gate.
    """
    values = summary["metrics"]
    bands = baseline.get("metrics", {})
    regressions, missing, fresh = [], [], []
    for name, band in sorted(bands.items()):
        value = values.get(name)
        if value is None:
            missing.append(name)
            continue
        tolerance = float(band.get("tolerance", 0.0))
        floor = band.get("floor")
        ceiling = band.get("ceiling")
        if floor is not None and value < float(floor) * (1.0 - tolerance):
            regressions.append(
                f"{name}: {value} < floor {floor} (tolerance {tolerance:.0%})"
            )
        if ceiling is not None and value > float(ceiling) * (1.0 + tolerance):
            regressions.append(
                f"{name}: {value} > ceiling {ceiling} "
                f"(tolerance {tolerance:.0%})"
            )
    fresh = sorted(set(values) - set(bands))
    return regressions, missing, fresh


def update_baseline(summary: dict, baseline: dict) -> dict:
    """Re-floor every tracked (and new) metric from the current summary."""
    bands = dict(baseline.get("metrics", {}))
    for name, value in sorted(summary["metrics"].items()):
        band = dict(bands.get(name, {"tolerance": 0.2}))
        band["floor"] = value
        bands[name] = band
    return {"metrics": bands}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--artifacts", default=DEFAULT_ARTIFACTS,
                        help="directory of benchmark JSON artifacts")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed baseline file")
    parser.add_argument("--out", default=None,
                        help="merged summary path (default "
                             "<artifacts>/perf_summary.json)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline floors from this run")
    parser.add_argument("--strict", action="store_true",
                        help="fail when a tracked metric produced no value")
    args = parser.parse_args(argv)

    summary = merge_artifacts(args.artifacts)
    out_path = args.out or os.path.join(args.artifacts, "perf_summary.json")
    os.makedirs(os.path.dirname(out_path), exist_ok=True)
    with open(out_path, "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
    print(f"merged {len(summary['artifacts'])} artifact(s), "
          f"{len(summary['metrics'])} metric(s) -> {out_path}")

    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        baseline = {"metrics": {}}

    if args.update_baseline:
        refreshed = update_baseline(summary, baseline)
        with open(args.baseline, "w") as handle:
            json.dump(refreshed, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline re-floored: {len(refreshed['metrics'])} metric(s) "
              f"-> {args.baseline}")
        return 0

    regressions, missing, fresh = compare(summary, baseline,
                                          strict=args.strict)
    for name in fresh:
        print(f"new metric (not in baseline): {name} = "
              f"{summary['metrics'][name]}")
    for name in missing:
        print(f"{'MISSING' if args.strict else 'missing (skipped)'}: {name}")
    for line in regressions:
        print(f"REGRESSION: {line}")
    if regressions or (args.strict and missing):
        return 1
    checked = len(baseline.get("metrics", {})) - len(missing)
    print(f"perf trajectory OK: {checked} metric(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
