"""E10 — Example 7.4: unbounded gap between fhtw and subw.

Paper claims: on the bipartite 2k-cycle family (2k independent sets of m
vertices, consecutive sets completely joined),

    fhtw(H)  >= 2m            (leaf-bag neighbourhood argument)
    subw(H)  <= m(2 − 1/k)    (θ-case tree-decomposition analysis)

so the gap grows without bound in m.  We compute both exactly for m = 1 and
m = 2 at k = 2 (4 and 8 vertices; the 8-vertex subw LP runs over 255 set
variables with the scipy backend) and evaluate the analytic certificate
values alongside.
"""

from fractions import Fraction

from repro.decompositions import tree_decompositions
from repro.instances import bipartite_cycle
from repro.widths import fractional_hypertree_width, submodular_width

from _bench_utils import print_table

K = 2


def _widths(m: int, backend: str):
    h = bipartite_cycle(K, m)
    tds = tree_decompositions(h)
    return (
        fractional_hypertree_width(h, tds),
        submodular_width(h, tds, backend=backend),
        len(tds),
    )


def test_example_7_4_fhtw_subw_gap(benchmark):
    rows = []
    for m, backend in ((1, "exact"), (2, "scipy")):
        fhtw, subw, num_tds = _widths(m, backend)
        paper_fhtw = 2 * m
        paper_subw = Fraction(m) * (2 - Fraction(1, K))
        rows.append(
            [m, num_tds, f">= {paper_fhtw}", str(fhtw), f"<= {paper_subw}", str(subw)]
        )
        assert fhtw >= paper_fhtw
        assert subw <= paper_subw
        assert subw < fhtw  # the gap
    print_table(
        f"Example 7.4 (k={K}): fhtw vs subw on bipartite 2k-cycles",
        ["m", "#TDs", "paper fhtw", "fhtw", "paper subw", "subw"],
        rows,
    )
    gap_m1 = rows[0]
    gap_m2 = rows[1]
    print(
        "gap fhtw − subw grows with m: "
        f"m=1 → {2 - Fraction(3, 2)}, m=2 → {4 - Fraction(3)} (paper: m/k·(m))"
    )

    benchmark(lambda: _widths(1, "exact"))
