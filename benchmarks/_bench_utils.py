"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures/examples
(see DESIGN.md §3 for the experiment index) and *asserts the shape* the paper
reports — who wins, with what exponent, where the crossovers are — while
pytest-benchmark records the timing of the core computation.

These live outside ``conftest.py`` so benchmark modules can import them
unambiguously (``from _bench_utils import ...``) no matter which directories
pytest collected.
"""

from __future__ import annotations

import math
import os

__all__ = ["artifact_path", "loglog_slope", "print_table"]


def artifact_path(filename: str, override: str | None = None) -> str:
    """The home of a JSON perf artifact: ``benchmarks/out/<file>`` by default.

    ``override`` (an env-var value, possibly empty/None) wins when set; in
    either case the target directory is created on demand, so benchmark runs
    stop dropping artifacts into the repository root — and a fresh CI
    checkout (where the gitignored ``benchmarks/out/`` does not exist yet)
    can still write to it.
    """
    if override:
        parent = os.path.dirname(override)
        if parent:
            os.makedirs(parent, exist_ok=True)
        return override
    out_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")
    os.makedirs(out_dir, exist_ok=True)
    return os.path.join(out_dir, filename)


def loglog_slope(xs: list[float], ys: list[float]) -> float:
    """Least-squares slope of log(y) vs log(x): the empirical exponent."""
    lx = [math.log(x) for x in xs]
    ly = [math.log(max(y, 1e-12)) for y in ys]
    n = len(lx)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    num = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    den = sum((a - mean_x) ** 2 for a in lx)
    return num / den


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Uniform table output for the paper-vs-measured reports."""
    print(f"\n{title}")
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(v).rjust(w) for v, w in zip(row, widths)))
